#!/usr/bin/env python3
"""Latency-tolerance study: what does multithreading buy, and when?

Uses the application model's masking analysis (Eqs 3-4) and the combined
model to quantify how multiple hardware contexts trade context-switch
overhead against hidden communication latency — and how the limiting
per-hop latency (Eq 16) rises in proportion to the sustained number of
outstanding transactions.

Run:  python examples/latency_tolerance_study.py
"""

from repro.analysis.tables import render_table
from repro.core.application import ApplicationModel
from repro.experiments.alewife import alewife_system

# ----------------------------------------------------------------------
# 1. The masking regime (application model only): how much latency can
#    p contexts hide for a given grain?
# ----------------------------------------------------------------------
rows = []
for grain in (10.0, 50.0, 200.0):
    for contexts in (1, 2, 4, 8):
        application = ApplicationModel(
            grain=grain, contexts=contexts, switch_time=11.0
        )
        rows.append(
            (
                int(grain),
                contexts,
                round(application.masking_threshold, 0),
                round(application.min_issue_time, 0),
            )
        )
print(render_table(
    ["grain T_r", "contexts p", "maskable T_t (Eq 3)", "t_t floor (Eq 4)"],
    rows,
    title="How much transaction latency block multithreading can hide",
))
print()

# ----------------------------------------------------------------------
# 2. End performance on the calibrated machine: issue rates at a fixed
#    communication distance as contexts scale.
# ----------------------------------------------------------------------
DISTANCE = 8.0
rows = []
base_rate = None
for contexts in (1, 2, 4, 8):
    system = alewife_system(contexts=contexts)
    point = system.operating_point(DISTANCE)
    rate = point.transaction_rate
    if base_rate is None:
        base_rate = rate
    rows.append(
        (
            contexts,
            round(system.latency_sensitivity, 2),
            round(point.message_latency, 1),
            round(point.utilization, 3),
            f"{rate / base_rate:.2f}x",
        )
    )
print(render_table(
    ["p", "sensitivity s", "T_m (net cyc)", "rho", "throughput vs p=1"],
    rows,
    title=f"Combined-model throughput at d = {DISTANCE:.0f} hops",
))
print()

# ----------------------------------------------------------------------
# 3. The flip side (Section 4.1): more outstanding transactions raise
#    the limiting per-hop latency proportionally — tolerance loads the
#    network harder, it does not make contention free.
# ----------------------------------------------------------------------
rows = []
for contexts in (1, 2, 4, 8):
    system = alewife_system(contexts=contexts)
    rows.append(
        (
            contexts,
            round(system.latency_sensitivity, 2),
            round(system.limiting_per_hop_latency(), 1),
        )
    )
print(render_table(
    ["p", "s", "limiting T_h (Eq 16)"],
    rows,
    title="Latency tolerance raises the asymptotic per-hop latency",
))
print()
print(
    "Reading: multithreading buys real throughput (diminishing past the\n"
    "point where the network, not the processor, is the bottleneck), but\n"
    "the limiting per-hop latency grows with s — tolerant processors\n"
    "run their networks hotter, they do not escape the Section 4.1 bound."
)

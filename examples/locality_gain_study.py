#!/usr/bin/env python3
"""Architect's study: when is exploiting physical locality worth it?

Sweeps the calibrated Alewife-like system (Section 3 of the paper)
across machine sizes, network speeds, and network dimensionality, and
prints the expected gain from locality-aware thread placement in each
regime — the Figure 7 / Table 1 analysis as a reusable study.

Run:  python examples/locality_gain_study.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.sweeps import gain_curve, sweep_network_slowdowns
from repro.experiments.alewife import alewife_system

SIZES = np.logspace(1, 6, 11)

# ----------------------------------------------------------------------
# 1. Gain vs machine size, per multithreading level (Figure 7's sweep).
# ----------------------------------------------------------------------
curves = {
    contexts: gain_curve(alewife_system(contexts=contexts), SIZES)
    for contexts in (1, 2, 4)
}
rows = [
    (
        f"{int(round(size)):,}",
        round(curves[1].gains[i], 2),
        round(curves[2].gains[i], 2),
        round(curves[4].gains[i], 2),
    )
    for i, size in enumerate(SIZES)
]
print(render_table(
    ["machine size N", "gain p=1", "gain p=2", "gain p=4"],
    rows,
    title="Expected locality gain vs machine size (ideal vs random mapping)",
))
print()

# ----------------------------------------------------------------------
# 2. Gain vs relative network speed (Table 1's sweep): the slower the
#    network relative to the processors, the more locality matters.
# ----------------------------------------------------------------------
samples = sweep_network_slowdowns(
    alewife_system(contexts=1), slowdowns=[0.5, 1, 2, 4, 8], sizes=[1e3, 1e6]
)
rows = [
    (
        f"{sample.network_speedup:g}x processor clock",
        round(sample.gains_by_size[1e3], 2),
        round(sample.gains_by_size[1e6], 1),
    )
    for sample in samples
]
print(render_table(
    ["network clock", "gain @ 10^3", "gain @ 10^6"],
    rows,
    title="Expected locality gain vs relative network speed (p = 1)",
))
print()

# ----------------------------------------------------------------------
# 3. Gain vs network dimensionality: higher-dimensional networks shrink
#    random-mapping distances, leaving less for locality to save.
# ----------------------------------------------------------------------
rows = []
for dimensions in (2, 3, 4):
    system = alewife_system(contexts=1, dimensions=dimensions)
    result = system.expected_gain(65536)
    rows.append(
        (
            dimensions,
            round(result.random_distance, 1),
            round(result.gain, 2),
        )
    )
print(render_table(
    ["network dimension n", "d random @ 64K nodes", "gain"],
    rows,
    title="Expected locality gain vs network dimensionality",
))
print()

print(
    "Reading: locality-aware placement buys little below ~1,000 nodes,\n"
    "roughly 2x at 1,000, and its value then grows linearly in the\n"
    "distance reduction (Section 4.1's bound) — faster when networks\n"
    "are slow relative to processors, slower when they are rich."
)

#!/usr/bin/env python3
"""Quickstart: model an application on a mesh multiprocessor.

Builds the paper's three component models, composes them, and asks the
combined model the basic questions: how fast does the application run at
a given communication distance, and what is locality worth as the
machine scales?

Run:  python examples/quickstart.py
"""

from repro import (
    ALEWIFE_CLOCKS,
    ApplicationModel,
    SystemModel,
    TorusNetworkModel,
    TransactionModel,
    random_traffic_distance,
)

# ----------------------------------------------------------------------
# 1. Describe the application: computation grain T_r = 50 processor
#    cycles between communication transactions, two hardware contexts,
#    an 11-cycle context switch.
# ----------------------------------------------------------------------
application = ApplicationModel(grain=50.0, contexts=2.0, switch_time=11.0)

# 2. Describe the communication mechanism: request/reply coherence
#    transactions (c = 2 critical-path messages), 3.2 messages per
#    transaction, 40 processor cycles of fixed protocol overhead.
transaction = TransactionModel(
    critical_messages=2.0, messages_per_transaction=3.2, fixed_overhead=40.0
)

# 3. Describe the network: a 2-D torus with 12-flit messages, switches
#    clocked twice as fast as processors (the Alewife arrangement).
network = TorusNetworkModel(dimensions=2, message_size=12.0)

system = SystemModel(
    application=application,
    transaction=transaction,
    network=network,
    clocks=ALEWIFE_CLOCKS,
)

print(f"latency sensitivity s = p*g/c = {system.latency_sensitivity:.2f}")
print(f"limiting per-hop latency (Eq 16) = "
      f"{system.limiting_per_hop_latency():.2f} network cycles")
print()

# ----------------------------------------------------------------------
# Solve the combined model: the feedback fixed point where the node
# injects exactly as fast as the network's latency lets it.
# ----------------------------------------------------------------------
print(f"{'d (hops)':>9} {'T_m':>7} {'T_h':>6} {'rho':>6} "
      f"{'t_t (proc cyc)':>15}")
for distance in (1.0, 2.0, 4.0, 8.0, 16.0):
    point = system.operating_point(distance)
    print(
        f"{distance:9.1f} {point.message_latency:7.1f} "
        f"{point.per_hop_latency:6.2f} {point.utilization:6.3f} "
        f"{point.issue_time_processor(system.clocks):15.1f}"
    )
print()

# ----------------------------------------------------------------------
# What is exploiting physical locality worth?  Compare an ideal mapping
# (one hop per message) against a random mapping (Eq 17 distance).
# ----------------------------------------------------------------------
print(f"{'N':>10} {'d random':>9} {'expected gain':>14}")
for processors in (64, 1024, 16384, 262144):
    result = system.expected_gain(processors)
    print(
        f"{processors:>10,} {result.random_distance:9.1f} "
        f"{result.gain:14.2f}"
    )
print()
print(
    "64-node sanity check: Eq 17 gives d ="
    f" {random_traffic_distance(8, 2):.2f} hops for random traffic."
)

#!/usr/bin/env python3
"""Map a custom application onto a machine and predict the payoff.

Takes a 2-D stencil application (a non-wrapping grid communication
graph — deliberately *not* the same shape as the torus machine), tries a
spectrum of thread-to-processor mappings including a hill-climbed
optimized one, and uses the combined model to predict end performance
for each resulting communication distance.

Run:  python examples/mapping_explorer.py
"""

from repro.analysis.tables import render_table
from repro.experiments.alewife import alewife_system
from repro.mapping.evaluate import evaluate
from repro.mapping.optimize import maximize_distance, minimize_distance
from repro.mapping.strategies import (
    identity_mapping,
    random_mapping,
    stride_mapping,
)
from repro.topology.graphs import nearest_neighbor_grid_graph
from repro.topology.torus import Torus

MACHINE = Torus(radix=8, dimensions=2)
GRAPH = nearest_neighbor_grid_graph(8, 8)  # 64-thread stencil
SYSTEM = alewife_system(contexts=2)

candidates = [
    ("row-major", identity_mapping(64)),
    ("stride-9", stride_mapping(64, 9)),
    ("random", random_mapping(64, seed=7)),
]

print("Hill-climbing an optimized mapping (minimize distance) ...")
optimized = minimize_distance(
    GRAPH, MACHINE, random_mapping(64, seed=7), steps=6000, seed=1
)
candidates.append(("optimized", optimized.mapping))

print("Hill-climbing an adversarial mapping (maximize distance) ...")
adversarial = maximize_distance(
    GRAPH, MACHINE, random_mapping(64, seed=8), steps=6000, seed=2
)
candidates.append(("adversarial", adversarial.mapping))
print()

rows = []
baseline_rate = None
for name, mapping in candidates:
    summary = evaluate(GRAPH, mapping, MACHINE)
    point = SYSTEM.operating_point(max(summary.average, 1e-6))
    rate = point.transaction_rate
    if name == "row-major":
        baseline_rate = rate
    rows.append(
        (
            name,
            round(summary.average, 2),
            summary.maximum,
            round(point.message_latency, 1),
            round(rate * 1000, 3),
            f"{rate / baseline_rate:.2f}x",
        )
    )

print(render_table(
    [
        "mapping", "avg dist (hops)", "max dist",
        "predicted T_m", "r_t (txn/kcyc)", "vs row-major",
    ],
    rows,
    title="Stencil application on an 8x8 torus: mapping quality -> "
    "predicted performance",
))
print()
print(
    "The stencil's communication graph embeds almost perfectly in the\n"
    "torus (row-major is already near-optimal); the optimizer confirms\n"
    "it, and the adversarial mapping shows the full downside risk of\n"
    "locality-oblivious placement."
)

#!/usr/bin/env python3
"""Traffic atlas: where the flits actually go, per mapping.

Runs the synthetic application on the 64-node machine under three
mappings and renders per-link utilization heatmaps.  The pictures tell
the uniformity story behind the model's accuracy: an ideal mapping
loads every link identically, a random permutation creates hot links
(the model's uniform-traffic assumption starts to strain), and an
adversarial mapping runs the hottest links several times above the mean.

Run:  python examples/network_traffic_atlas.py     (~30 seconds)
"""

from repro.analysis.linkmap import link_utilization, render_link_heatmap
from repro.mapping.families import paper_mapping_suite
from repro.mapping.strategies import identity_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs

CONFIG = SimulationConfig(
    contexts=2,
    warmup_network_cycles=2000,
    measure_network_cycles=8000,
)
TORUS = Torus(radix=CONFIG.radix, dimensions=CONFIG.dimensions)
GRAPH = torus_neighbor_graph(CONFIG.radix, CONFIG.dimensions)

suite = paper_mapping_suite(TORUS, adversarial_steps=3000)
candidates = [
    ("ideal", identity_mapping(64)),
    ("random", next(nm.mapping for nm in suite if nm.name == "random-a")),
    ("adversarial", suite[-1].mapping),
]

for name, mapping in candidates:
    programs = build_programs(
        GRAPH, CONFIG.contexts, CONFIG.compute_cycles, CONFIG.compute_jitter
    )
    machine = Machine(CONFIG, mapping, programs)
    summary = machine.run()
    utilization = link_utilization(
        machine.fabric.link_flits,
        TORUS,
        machine.stats.window_cycles,
        baseline_flits=machine.stats.link_flits_at_reset,
    )
    print(f"=== {name} mapping "
          f"(d = {summary.mean_message_hops:.2f} hops, "
          f"T_m = {summary.mean_message_latency:.1f} cycles) ===")
    print(render_link_heatmap(utilization, TORUS))
    hottest = ", ".join(
        f"node {node} {'+x -x +y -y'.split()[dim * 2 + (0 if step > 0 else 1)]}"
        f" @ {value:.2f}"
        for (node, dim, step), value in utilization.hottest(3)
    )
    print(f"hottest links: {hottest}")
    print()

print(
    "Reading: the hot factor (peak/mean link load) grows from ~1 under\n"
    "the ideal mapping to several-fold under the adversarial one. The\n"
    "analytical model sees only the mean — which is exactly why its\n"
    "residual error concentrates on the permuted, high-distance runs\n"
    "(see ablation-uniformity and EXPERIMENTS.md)."
)

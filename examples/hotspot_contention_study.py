#!/usr/bin/env python3
"""Hot-spot contention: driving the simulator with custom workloads.

Shows the simulator as a general tool rather than a fixed validation
rig: a parametric hot-spot workload (a growing fraction of reads target
one thread's block — a lock, a reduction root) runs on the 64-node
machine, and the measurements expose the convergecast bottleneck that
no uniform-traffic model predicts: latency and controller queueing blow
up at the hot node long before average channel utilization looks scary.

Run:  python examples/hotspot_contention_study.py     (~1 minute)
"""

from repro.analysis.tables import render_table
from repro.mapping.strategies import identity_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.generators import HotSpotProgram

CONFIG = SimulationConfig(
    contexts=2,
    warmup_network_cycles=2000,
    measure_network_cycles=8000,
)
NODES = CONFIG.node_count
HOT_THREAD = 0


def build_hot_spot_programs(hot_fraction):
    return [
        [
            HotSpotProgram(
                instance=instance,
                thread=thread,
                threads=NODES,
                hot_thread=HOT_THREAD,
                hot_fraction=hot_fraction,
                compute_cycles_mean=CONFIG.compute_cycles,
                compute_jitter=CONFIG.compute_jitter,
            )
            for thread in range(NODES)
        ]
        for instance in range(CONFIG.contexts)
    ]


rows = []
for hot_fraction in (0.0, 0.1, 0.25, 0.5, 0.9):
    machine = Machine(
        CONFIG, identity_mapping(NODES), build_hot_spot_programs(hot_fraction)
    )
    summary = machine.run()
    hot_messages = machine.stats.per_node_messages.get(HOT_THREAD, 0)
    mean_messages = summary.messages_sent / NODES
    rows.append(
        (
            f"{hot_fraction:.0%}",
            round(summary.mean_message_latency, 1),
            round(summary.channel_utilization, 3),
            round(summary.mean_issue_interval, 0),
            round(hot_messages / mean_messages, 1),
        )
    )

print(render_table(
    [
        "hot fraction",
        "T_m (net cyc)",
        "mean channel rho",
        "t_t (net cyc)",
        "hot-node traffic vs mean",
    ],
    rows,
    title="Hot-spot sweep on the 64-node machine (p = 2): a growing "
    "fraction of reads converge on one thread's block",
))
print()
print(
    "Reading: average channel utilization stays modest while message\n"
    "latency and issue intervals degrade — the bottleneck is the hot\n"
    "node's ejection channel and controller, a *non-uniformity* that\n"
    "mean-field network models (the paper's included) do not see.\n"
    "This is the flip side of the uniform-traffic assumption that the\n"
    "ablation-uniformity experiment quantifies."
)

#!/usr/bin/env python3
"""Validate the analytical model against the cycle-level simulator.

Runs the paper's Section 3 experiment end to end at one context count:
simulate the synthetic torus-neighbor application on a 64-node machine
under a suite of thread-to-processor mappings, fit the measured
application message curve, solve the combined model at each mapping's
communication distance, and compare rates and latencies.

Run:  python examples/simulator_validation.py        (~1 minute)
"""

from repro.analysis.tables import render_table
from repro.analysis.validation import run_validation
from repro.mapping.families import paper_mapping_suite
from repro.sim.config import SimulationConfig
from repro.topology.torus import Torus

CONFIG = SimulationConfig(
    contexts=2,
    warmup_network_cycles=3000,
    measure_network_cycles=12000,
)

print("Building the mapping suite (ideal ... adversarial) ...")
torus = Torus(radix=CONFIG.radix, dimensions=CONFIG.dimensions)
mappings = paper_mapping_suite(torus)
print(f"  {len(mappings)} mappings, distances "
      f"{mappings[0].distance:.2f} .. {mappings[-1].distance:.2f} hops")

print(f"Simulating {len(mappings)} machine runs "
      f"({CONFIG.total_network_cycles:,} network cycles each) ...")
report = run_validation(CONFIG)

print()
print(f"fitted latency sensitivity s = {report.curve.sensitivity:.2f} "
      f"(R^2 = {report.curve.fit.r_squared:.4f})")
print(f"measured mean message size B = {report.message_size:.1f} flits "
      f"(paper: 12)")
print()

rows = [
    (
        row.name,
        round(row.distance, 2),
        round(row.simulated.message_rate * 1000, 2),
        round(row.predicted.message_rate * 1000, 2),
        f"{row.rate_error * 100:+.1f}%",
        round(row.simulated.mean_message_latency, 1),
        round(row.predicted.message_latency, 1),
    )
    for row in report.rows
]
print(render_table(
    [
        "mapping", "d", "sim r_m (msg/kcyc)", "model r_m", "err",
        "sim T_m", "model T_m",
    ],
    rows,
    title="Model vs simulation, two hardware contexts",
))
print()
print(f"mean |rate error| = {report.mean_rate_error:.1%}, "
      f"max |latency error| = {report.max_latency_error_cycles:.1f} "
      "network cycles")

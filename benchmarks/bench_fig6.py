"""Benchmark: regenerate Figure 6 (per-hop latency vs machine size)."""

import pytest

from repro.experiments import fig6


def test_figure6_per_hop_limit(run_once):
    result = run_once(fig6.run, quick=False)
    assert result.data["limit"] == pytest.approx(9.78, abs=0.05)
    assert 1000 < result.data["eighty_percent_size"] < 10000
    # Both grains approach the same limit, the coarse one more slowly.
    assert result.data["base"][-1] > 0.95 * result.data["limit"]
    assert result.data["coarse"][0] < result.data["base"][0]

"""Benchmark: regenerate Figure 4 (message rate vs distance, sim vs model)."""

from repro.experiments import fig4
from repro.experiments.validation_data import clear_cache


def test_figure4_rate_vs_distance(run_once):
    clear_cache()
    result = run_once(fig4.run, quick=True)
    reports = result.data["reports"]
    # Single-context predictions land within the paper's "few percent"
    # band on average.
    assert reports[1].mean_rate_error < 0.12
    for report in reports.values():
        rates = [row.simulated.message_rate for row in report.rows]
        assert rates[0] > rates[-1]  # feedback: rates fall with distance

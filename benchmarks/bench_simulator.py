"""Benchmarks: the array fabric kernel vs the object reference.

Two entry points, mirroring ``bench_mapping.py``:

* ``pytest benchmarks/bench_simulator.py --benchmark-only`` — timed runs
  of the machine-level simulator (both switch architectures), the
  Section 3.3 validation pipeline, and the fabric workload suite, each
  asserting cycle-exact parity between
  :class:`repro.sim.kernel.FabricKernel` and
  :class:`repro.sim.reference.ReferenceTorusFabric`.
* ``python benchmarks/bench_simulator.py [--quick] [--output FILE]
  [--workload NAME]`` — script mode for CI smoke: runs the workload
  suite (or just ``NAME``), checks parity, and writes a JSON artifact
  with ``{bench, config, wall_s, speedup_vs_reference}`` rows.

The telemetry-overhead row drives the kernel twice over the same
schedule — telemetry detached vs attached — and records ``on/off`` wall
as its speedup column, so ``repro-bench compare`` flags the
telemetry-off hot path getting slower (the tentpole promise: one
guarded branch per tick and per grant when detached).  Parity between
the two runs is always asserted: telemetry must never perturb
simulation results.

The machine rows (``machine_uniform_radix{8,16}``,
``machine_saturated_radix{8,16}``) time whole ``Machine.run`` calls —
processors, controllers, and fabric together — with the event-calendar
engine on vs the retained per-cycle loop, asserting bit-exact summary
parity.  The light-traffic uniform rows are the engine's headline
(>= 5x at radix-8 under ``REPRO_BENCH_STRICT=1``); the saturated rows
are reported for honesty — a fabric busy every cycle leaves nothing to
skip.

The headline row is ``tree_saturation``: every message targets a few
hot ejection ports, so blocked-channel trees grow across the fabric and
almost no channel changes hands per cycle — exactly where the kernel's
event-driven arbitration (touch only channels that can change) beats the
reference's full pending-list scan by an order of magnitude.  Uniform
light traffic is the kernel's *worst* regime (grants dominate both
implementations) and is reported alongside for honesty.

Timing assertions (the >= 5x floor on the headline workload) only fire
under ``REPRO_BENCH_STRICT=1`` so shared CI runners cannot flake the
suite; parity assertions always run.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.analysis.validation import run_validation
from repro.mapping.families import paper_mapping_suite
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.kernel import FabricKernel
from repro.sim.machine import Machine
from repro.sim.message import Message, MessageKind
from repro.sim.reference import ReferenceTorusFabric
from repro.sim.replicate import default_seeds, run_replications
from repro.sim.telemetry import TelemetryConfig
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs

SEED = 1992
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: Fabric workload suite: injection rate is mean messages per cycle
#: machine-wide; ``hot`` is the fraction of traffic aimed at the
#: ``hot_count`` lowest-numbered nodes; ``data`` switches to 24-flit
#: data replies.  A single hot node grows the deepest blocked-channel
#: trees — the canonical tree-saturation stress.
WORKLOADS = {
    "uniform": dict(rate=0.4, hot=0.0, hot_count=4, data=False),
    "saturated": dict(rate=2.0, hot=0.0, hot_count=4, data=False),
    "hotspot50": dict(rate=1.5, hot=0.5, hot_count=4, data=True),
    "tree_saturation": dict(rate=1.5, hot=1.0, hot_count=1, data=True),
}
HEADLINE = "tree_saturation"


def _schedule(radix, dimensions, cycles, spec, seed=SEED):
    """Pre-generated per-cycle injection lists (identical for both runs)."""
    rng = random.Random(seed)
    nodes = radix**dimensions
    hot_nodes = tuple(range(min(spec["hot_count"], nodes)))
    kind = MessageKind.DATA_REPLY if spec["data"] else MessageKind.READ_REQUEST
    whole, fractional = divmod(spec["rate"], 1)
    plan = []
    tag = 0
    for _ in range(cycles):
        injections = []
        attempts = int(whole) + (1 if rng.random() < fractional else 0)
        for _ in range(attempts):
            source = rng.randrange(nodes)
            if rng.random() < spec["hot"]:
                destination = rng.choice(hot_nodes)
            else:
                destination = rng.randrange(nodes)
            if source != destination:
                injections.append((kind, source, destination, tag))
                tag += 1
        plan.append(injections)
    return plan


def _drive(fabric_cls, radix, dimensions, plan, telemetry=None):
    """Run one fabric over a schedule; return (seconds, deliveries, flits)."""
    torus = Torus(radix=radix, dimensions=dimensions)
    delivered = []
    fabric = fabric_cls(torus, on_delivery=delivered.append)
    if telemetry is not None:
        instrumentation = fabric.attach_telemetry(telemetry)
    began = time.perf_counter()
    cycle = 0
    for cycle, injections in enumerate(plan):
        for kind, source, destination, tag in injections:
            fabric.inject(
                Message(kind, source, destination, (0, 0), tag), cycle
            )
        fabric.tick(cycle)
    while not fabric.quiescent():
        cycle += 1
        fabric.tick(cycle)
    seconds = time.perf_counter() - began
    if telemetry is not None:
        instrumentation.finalize(cycle + 1)
    deliveries = sorted(
        (
            worm.message.transaction,
            worm.message.injected_at,
            worm.message.delivered_at,
            worm.message.source,
            worm.message.destination,
            worm.hops,
            worm.source_wait,
        )
        for worm in delivered
    )
    return seconds, deliveries, fabric.link_flits


def measure_workload(name, radix=16, dimensions=2, cycles=1500, best_of=1):
    """Time kernel vs reference on one workload; verify exact parity.

    ``best_of`` takes the minimum wall clock of N alternating
    reference/kernel drives (parity checked on every round).  The
    quick-mode rows finish in single-digit milliseconds, where one-shot
    ratios carry ±20% scheduler jitter — the committed baselines are
    snapshotted best-of-N so the ``repro-bench compare`` gate watches
    the kernel, not the scheduler.
    """
    plan = _schedule(radix, dimensions, cycles, WORKLOADS[name])
    ref_seconds = kernel_seconds = float("inf")
    parity = True
    messages = 0
    for _ in range(max(1, best_of)):
        seconds, ref_deliveries, ref_flits = _drive(
            ReferenceTorusFabric, radix, dimensions, plan
        )
        ref_seconds = min(ref_seconds, seconds)
        seconds, kernel_deliveries, kernel_flits = _drive(
            FabricKernel, radix, dimensions, plan
        )
        kernel_seconds = min(kernel_seconds, seconds)
        parity = parity and (
            kernel_deliveries == ref_deliveries and kernel_flits == ref_flits
        )
        messages = len(kernel_deliveries)
    return {
        "bench": name,
        "config": f"radix-{radix} {dimensions}-D torus, {cycles} cycles",
        "wall_s": round(kernel_seconds, 4),
        "reference_wall_s": round(ref_seconds, 4),
        "speedup_vs_reference": round(ref_seconds / kernel_seconds, 2),
        "parity": parity,
        "messages": messages,
    }


def measure_suite(quick=False, best_of=1):
    """The full workload suite (smaller fabric/windows under ``quick``)."""
    radix = 8 if quick else 16
    cycles = 300 if quick else 1500
    return [
        measure_workload(name, radix=radix, cycles=cycles, best_of=best_of)
        for name in WORKLOADS
    ]


def measure_telemetry_overhead(quick=False, workload="uniform"):
    """Kernel wall time with telemetry detached vs attached, same plan.

    ``speedup_vs_reference`` is ``on_wall / off_wall`` — the attached
    run standing in for the "reference" — so a drop below the committed
    baseline means the *detached* hot path got slower, which is the
    regression the tentpole's zero-cost-when-off promise forbids.
    ``overhead_pct`` is the attached run's relative cost, informational.
    """
    radix = 8 if quick else 16
    cycles = 600 if quick else 1500
    plan = _schedule(radix, 2, cycles, WORKLOADS[workload])
    # A discarded warmup pair, then three alternating pairs with best-of
    # per side.  Telemetry's true attached cost is a few percent, which
    # single-shot millisecond-scale drives cannot resolve — an early
    # version of this row ran one pair and reported scheduler jitter
    # (±15% and worse) as telemetry overhead.
    _drive(FabricKernel, radix, 2, plan)
    _drive(FabricKernel, radix, 2, plan, telemetry=TelemetryConfig())
    off_seconds, off_deliveries, off_flits = _drive(
        FabricKernel, radix, 2, plan
    )
    on_seconds, on_deliveries, on_flits = _drive(
        FabricKernel, radix, 2, plan, telemetry=TelemetryConfig()
    )
    for _ in range(2):
        off_seconds = min(
            off_seconds, _drive(FabricKernel, radix, 2, plan)[0]
        )
        on_seconds = min(
            on_seconds,
            _drive(
                FabricKernel, radix, 2, plan, telemetry=TelemetryConfig()
            )[0],
        )
    return {
        "bench": f"{workload}_telemetry",
        "config": f"radix-{radix} 2-D torus, {cycles} cycles, off vs on",
        "wall_s": round(off_seconds, 4),
        "telemetry_wall_s": round(on_seconds, 4),
        "speedup_vs_reference": round(on_seconds / off_seconds, 2),
        "overhead_pct": round((on_seconds / off_seconds - 1.0) * 100, 1),
        "parity": (
            on_deliveries == off_deliveries and on_flits == off_flits
        ),
        "messages": len(off_deliveries),
    }


#: End-to-end machine operating points for the engine on/off rows.
#: ``machine_uniform`` is the paper's light-traffic regime — long
#: compute runs between accesses, the fabric quiescent most cycles —
#: which is exactly what the event-calendar engine exists for;
#: ``machine_saturated`` is the short-run default where the fabric is
#: busy nearly every cycle and the engine can only win the per-cycle
#: processor scan.
MACHINE_WORKLOADS = {
    "machine_uniform": dict(compute=1000, contexts=1),
    "machine_saturated": dict(compute=8, contexts=2),
}


def _whole_machine(radix, compute, contexts, engine):
    config = SimulationConfig(
        radix=radix,
        contexts=contexts,
        compute_cycles=compute,
        seed=SEED,
    )
    graph = torus_neighbor_graph(radix, 2)
    programs = build_programs(graph, contexts, compute, config.compute_jitter)
    return Machine(
        config, identity_mapping(radix * radix), programs, engine=engine
    )


def measure_machine_run(name, radix, quick=False):
    """One ``Machine.run`` row: per-cycle loop vs event-calendar engine.

    ``speedup_vs_reference`` is ``off_wall / on_wall`` — the retained
    per-cycle loop standing in for the reference — and ``parity``
    asserts the two summaries are bit-identical, the engine's whole
    contract.  Best-of-2 per side: the light-traffic engine runs are
    milliseconds, which single shots cannot time reliably.
    """
    spec = MACHINE_WORKLOADS[name]
    warmup, measure = (300, 1500) if quick else (500, 4000)

    def run(engine):
        machine = _whole_machine(
            radix, spec["compute"], spec["contexts"], engine
        )
        began = time.perf_counter()
        summary = machine.run(warmup=warmup, measure=measure)
        return time.perf_counter() - began, summary.as_dict()

    off_seconds, off_summary = run(False)
    on_seconds, on_summary = run(True)
    off_seconds = min(off_seconds, run(False)[0])
    on_seconds = min(on_seconds, run(True)[0])
    return {
        "bench": f"{name}_radix{radix}",
        "config": (
            f"radix-{radix} 2-D torus, contexts={spec['contexts']}, "
            f"compute={spec['compute']}, {warmup}+{measure} cycles, "
            "loop vs engine"
        ),
        "wall_s": round(on_seconds, 4),
        "loop_wall_s": round(off_seconds, 4),
        "speedup_vs_reference": round(off_seconds / on_seconds, 2),
        "parity": on_summary == off_summary,
        "messages": off_summary["messages_sent"],
    }


def measure_machine_suite(quick=False):
    """Engine on/off rows at radix-8 and radix-16, both operating points."""
    return [
        measure_machine_run(name, radix, quick=quick)
        for name in MACHINE_WORKLOADS
        for radix in (8, 16)
    ]


def measure_replication_scaling(quick=False):
    """Wall-clock for the same replication set, serial vs pooled."""
    config = SimulationConfig(
        radix=4 if quick else 8, contexts=2,
        warmup_network_cycles=300,
        measure_network_cycles=1500 if quick else 6000,
    )
    graph = torus_neighbor_graph(config.radix, 2)
    programs = build_programs(
        graph, 2, config.compute_cycles, config.compute_jitter
    )
    mapping = random_mapping(config.node_count, seed=SEED)
    seeds = default_seeds(config.seed, 2 if quick else 4)

    began = time.perf_counter()
    serial = run_replications(config, mapping, programs, seeds, jobs=1)
    serial_seconds = time.perf_counter() - began
    began = time.perf_counter()
    pooled = run_replications(
        config, mapping, programs, seeds, jobs=len(seeds)
    )
    pooled_seconds = time.perf_counter() - began
    return {
        "bench": "replication_scaling",
        "config": f"{len(seeds)} seeds, jobs=1 vs jobs={len(seeds)}",
        "wall_s": round(pooled_seconds, 4),
        "serial_wall_s": round(serial_seconds, 4),
        "speedup_vs_reference": round(serial_seconds / pooled_seconds, 2),
        "parity": [s.as_dict() for s in serial.summaries]
        == [s.as_dict() for s in pooled.summaries],
        "messages": None,
    }


# ----------------------------------------------------------------------
# pytest benchmarks.
# ----------------------------------------------------------------------


def _machine(switching: str, contexts: int = 2) -> Machine:
    config = SimulationConfig(
        contexts=contexts,
        switching=switching,
        warmup_network_cycles=0,
        measure_network_cycles=4000,
    )
    graph = torus_neighbor_graph(8, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    return Machine(config, identity_mapping(64), programs)


def test_cut_through_simulator_throughput(benchmark):
    """Network cycles per second, 64-node machine, buffered switches."""

    def run():
        machine = _machine("cut_through")
        return machine.run(warmup=500, measure=4000)

    summary = benchmark(run)
    assert summary.messages_sent > 0


def test_wormhole_simulator_throughput(benchmark):
    """Network cycles per second, 64-node machine, rigid worms."""

    def run():
        machine = _machine("wormhole")
        return machine.run(warmup=500, measure=4000)

    summary = benchmark(run)
    assert summary.messages_sent > 0


def test_validation_pipeline_single_context(benchmark):
    """End-to-end Section 3.3 validation at p = 1 (quick windows)."""
    torus = Torus(radix=8, dimensions=2)
    mappings = paper_mapping_suite(torus, adversarial_steps=1500)
    config = SimulationConfig(
        contexts=1, warmup_network_cycles=1000, measure_network_cycles=4000
    )

    report = benchmark.pedantic(
        run_validation, args=(config, mappings), rounds=1, iterations=1
    )
    assert report.mean_rate_error < 0.15


def test_fabric_kernel_speedup(bench_record):
    """The headline claim: >= 5x on the tree-saturation workload.

    Always checks cycle-exact parity on every workload; only enforces
    the timing floor under ``REPRO_BENCH_STRICT=1``.  Rows run best-of-3
    so the BENCH json this session leaves behind (the compare gate's
    input) is not a single-shot number.
    """
    rows = measure_suite(quick=not STRICT, best_of=3)
    for row in rows:
        assert row["parity"], f"kernel diverged from reference: {row}"
        bench_record(
            row["bench"], row["config"], row["wall_s"],
            row["speedup_vs_reference"],
        )
    if STRICT:
        headline = next(r for r in rows if r["bench"] == HEADLINE)
        assert headline["speedup_vs_reference"] >= 5.0, headline


def test_telemetry_overhead(bench_record):
    """Telemetry never perturbs results; detached cost is pinned.

    Parity between the detached and attached runs always runs; the
    ≤ 2% detached-overhead claim is enforced by ``repro-bench compare``
    against the committed ``uniform_telemetry`` baseline row, not by a
    wall-clock assert here (shared runners are too noisy for that).
    """
    row = measure_telemetry_overhead(quick=not STRICT)
    assert row["parity"], f"telemetry perturbed simulation results: {row}"
    bench_record(
        row["bench"], row["config"], row["wall_s"],
        row["speedup_vs_reference"],
    )


def test_machine_engine_speedup(bench_record):
    """End-to-end ``Machine.run``: event-calendar engine vs step loop.

    Always checks bit-exact summary parity on every row; the >= 5x
    floor on the light-traffic radix-8 row only fires under
    ``REPRO_BENCH_STRICT=1`` (shared runners are too noisy for
    unconditional wall-clock asserts).
    """
    rows = measure_machine_suite(quick=not STRICT)
    for row in rows:
        assert row["parity"], f"engine diverged from step loop: {row}"
        bench_record(
            row["bench"], row["config"], row["wall_s"],
            row["speedup_vs_reference"],
        )
    if STRICT:
        headline = next(
            r for r in rows if r["bench"] == "machine_uniform_radix8"
        )
        assert headline["speedup_vs_reference"] >= 5.0, headline


def test_replication_jobs_invariance(bench_record):
    """Pooled replication returns byte-identical summaries to serial."""
    row = measure_replication_scaling(quick=not STRICT)
    assert row["parity"], "pooled replication diverged from serial"
    bench_record(
        row["bench"], row["config"], row["wall_s"],
        row["speedup_vs_reference"],
    )


# ----------------------------------------------------------------------
# Script mode (CI smoke).
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fabric kernel speedup measurement (script mode)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small fabric (radix 8, 300 cycles) for CI smoke",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the measurements as JSON to FILE",
    )
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default=None,
        help="run a single workload (plus its telemetry-overhead row) "
        "instead of the full suite",
    )
    parser.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="take the best wall clock of N drives per workload row "
        "(default: 1)",
    )
    args = parser.parse_args(argv)
    if args.workload:
        radix = 8 if args.quick else 16
        cycles = 300 if args.quick else 1500
        rows = [
            measure_workload(
                args.workload, radix=radix, cycles=cycles,
                best_of=args.best_of,
            )
        ]
        rows.append(
            measure_telemetry_overhead(
                quick=args.quick, workload=args.workload
            )
        )
    else:
        rows = measure_suite(quick=args.quick, best_of=args.best_of)
        rows.append(measure_telemetry_overhead(quick=args.quick))
        rows.extend(measure_machine_suite(quick=args.quick))
        rows.append(measure_replication_scaling(quick=args.quick))
    for row in rows:
        print(
            f"{row['bench']:<20} {row['config']:<38} "
            f"kernel {row['wall_s']}s -> "
            f"{row['speedup_vs_reference']}x "
            f"(parity: {row['parity']})"
        )
    parity = all(row["parity"] for row in rows)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
        print(f"report written to {args.output}")
    return 0 if parity else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmarks: raw simulator throughput and the validation pipeline."""

from repro.analysis.validation import run_validation
from repro.mapping.families import paper_mapping_suite
from repro.mapping.strategies import identity_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs


def _machine(switching: str, contexts: int = 2) -> Machine:
    config = SimulationConfig(
        contexts=contexts,
        switching=switching,
        warmup_network_cycles=0,
        measure_network_cycles=4000,
    )
    graph = torus_neighbor_graph(8, 2)
    programs = build_programs(
        graph, contexts, config.compute_cycles, config.compute_jitter
    )
    return Machine(config, identity_mapping(64), programs)


def test_cut_through_simulator_throughput(benchmark):
    """Network cycles per second, 64-node machine, buffered switches."""

    def run():
        machine = _machine("cut_through")
        return machine.run(warmup=500, measure=4000)

    summary = benchmark(run)
    assert summary.messages_sent > 0


def test_wormhole_simulator_throughput(benchmark):
    """Network cycles per second, 64-node machine, rigid worms."""

    def run():
        machine = _machine("wormhole")
        return machine.run(warmup=500, measure=4000)

    summary = benchmark(run)
    assert summary.messages_sent > 0


def test_validation_pipeline_single_context(benchmark):
    """End-to-end Section 3.3 validation at p = 1 (quick windows)."""
    torus = Torus(radix=8, dimensions=2)
    mappings = paper_mapping_suite(torus, adversarial_steps=1500)
    config = SimulationConfig(
        contexts=1, warmup_network_cycles=1000, measure_network_cycles=4000
    )

    report = benchmark.pedantic(
        run_validation, args=(config, mappings), rounds=1, iterations=1
    )
    assert report.mean_rate_error < 0.15

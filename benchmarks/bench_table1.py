"""Benchmark: regenerate Table 1 (gain vs relative network speed)."""

import pytest

from repro.experiments import table1


def test_table1_network_speed_sweep(run_once):
    result = run_once(table1.run, quick=False)
    for factor, paper_thousand, paper_million in result.data["paper"]:
        ours_thousand, ours_million = result.data["reproduced"][factor]
        assert ours_thousand == pytest.approx(paper_thousand, rel=0.06)
        assert ours_million == pytest.approx(paper_million, rel=0.06)

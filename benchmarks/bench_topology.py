"""Benchmarks: Eq 17 geometry cross-checks and routing throughput."""

import pytest

from repro.topology.distance import (
    random_traffic_distance,
    random_traffic_distance_exact,
)
from repro.topology.torus import Torus


def test_eq17_closed_form_vs_enumeration(benchmark):
    """Footnote-2 cross-check: closed form equals exact enumeration."""

    def compare():
        worst = 0.0
        for radix in (2, 4, 8, 16, 32):
            closed = random_traffic_distance(radix, 2)
            exact = random_traffic_distance_exact(radix, 2)
            worst = max(worst, abs(closed - exact))
        return worst

    worst = benchmark(compare)
    assert worst < 1e-9


def test_paper_64_node_distance(benchmark):
    value = benchmark(random_traffic_distance, 8, 2)
    assert value == pytest.approx(1024 / 252)


def test_ecube_routing_throughput(benchmark):
    torus = Torus(radix=8, dimensions=2)

    def route_everything():
        hops = 0
        for src in torus.nodes():
            for dst in torus.nodes():
                if src != dst:
                    hops += len(torus.ecube_route(src, dst)) - 1
        return hops

    hops = benchmark(route_everything)
    # Total pairwise hop count = N * (N-1) * mean distance.
    assert hops == round(64 * 63 * (1024 / 252))

"""Benchmarks: the persistent warm worker pool vs serial execution.

Two entry points, mirroring ``bench_simulator.py``:

* ``pytest benchmarks/bench_pool.py`` — the jobs-scaling rows on the
  replication workload that used to run at 0.57x serial, plus a
  dispatch-overhead row, every row asserting byte-identical summaries
  between the serial and pooled paths.
* ``python benchmarks/bench_pool.py [--quick] [--best-of N]
  [--output FILE]`` — script mode for CI smoke: measures the same rows
  (best-of-N wall clock to shave scheduler noise) and writes the
  ``BENCH_pool.json`` artifact for ``repro-bench compare``.

Row catalogue:

* ``pool_scaling`` (one row per jobs level) — serial wall over pooled
  wall for the same seed list through a pre-warmed pool.  The tentpole
  floors — ``jobs=2 >= 1.3x`` and ``jobs=4 >= 2x`` — only assert under
  ``REPRO_BENCH_STRICT=1``: they need real cores, and the single-CPU
  containers this repo develops on cannot express them (there we verify
  determinism and record the honest number).  On multi-core machines
  the committed baseline plus the ``repro-bench compare`` >20%-drop
  gate catches the 0.57x regression class.
* ``pool_dispatch`` — serial wall over a jobs=1 warm pool's wall for
  the same replications.  No parallelism at all, so the ratio isolates
  pure dispatch cost (task messages + result ship-back) and is
  meaningful even on one core: per-task payload pickling creeping back
  in craters this row on any machine.

Parity is asserted on every row, always: the pool must return exactly
the summaries the serial path produces, whatever the timing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.pool import WorkerPool
from repro.mapping.strategies import random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.replicate import default_seeds, run_replications
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs

SEED = 1992
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: STRICT-mode speedup floors per jobs level (the tentpole claim).
SCALING_FLOORS = {2: 1.3, 4: 2.0}


def _workload(quick):
    """The replication-scaling workload from ``bench_simulator``."""
    config = SimulationConfig(
        radix=4 if quick else 8, contexts=2,
        warmup_network_cycles=300,
        measure_network_cycles=1500 if quick else 6000,
    )
    graph = torus_neighbor_graph(config.radix, 2)
    programs = build_programs(
        graph, 2, config.compute_cycles, config.compute_jitter
    )
    mapping = random_mapping(config.node_count, seed=SEED)
    seeds = default_seeds(config.seed, 4 if quick else 8)
    return config, mapping, programs, seeds


def _best_of(count, fn):
    """Minimum wall over ``count`` runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, count)):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def measure_pool_scaling(quick=False, jobs_levels=(2, 4), best_of=1):
    """Serial vs warmed-pool wall clock, one row per jobs level."""
    config, mapping, programs, seeds = _workload(quick)
    serial_seconds, serial = _best_of(
        best_of,
        lambda: run_replications(config, mapping, programs, seeds, jobs=1),
    )
    expected = [s.as_dict() for s in serial.summaries]
    rows = []
    for jobs in jobs_levels:
        with WorkerPool(jobs) as pool:
            pool.warm()
            pooled_seconds, pooled = _best_of(
                best_of,
                lambda: run_replications(
                    config, mapping, programs, seeds, jobs=jobs, pool=pool
                ),
            )
        rows.append(
            {
                "bench": "pool_scaling",
                "config": f"{len(seeds)} seeds, jobs=1 vs jobs={jobs}",
                "wall_s": round(pooled_seconds, 4),
                "serial_wall_s": round(serial_seconds, 4),
                "speedup_vs_reference": round(
                    serial_seconds / pooled_seconds, 2
                ),
                "parity": [s.as_dict() for s in pooled.summaries]
                == expected,
                "jobs": jobs,
            }
        )
    return rows


def measure_pool_dispatch(quick=False, best_of=1):
    """Pure dispatch overhead: a jobs=1 warm pool against plain serial."""
    config, mapping, programs, seeds = _workload(quick)
    serial_seconds, serial = _best_of(
        best_of,
        lambda: run_replications(config, mapping, programs, seeds, jobs=1),
    )
    with WorkerPool(1) as pool:
        pool.warm()
        pooled_seconds, pooled = _best_of(
            best_of,
            lambda: run_replications(
                config, mapping, programs, seeds, jobs=1, pool=pool
            ),
        )
    return {
        "bench": "pool_dispatch",
        "config": f"{len(seeds)} seeds, jobs=1 pool vs serial",
        "wall_s": round(pooled_seconds, 4),
        "serial_wall_s": round(serial_seconds, 4),
        "speedup_vs_reference": round(serial_seconds / pooled_seconds, 2),
        "parity": [s.as_dict() for s in pooled.summaries]
        == [s.as_dict() for s in serial.summaries],
        "jobs": 1,
    }


# ----------------------------------------------------------------------
# pytest benchmarks.
# ----------------------------------------------------------------------


def test_pool_scaling_speedup(bench_record):
    """The tentpole floors: jobs=2 >= 1.3x, jobs=4 >= 2x serial.

    Parity is asserted on every row; the timing floors only fire under
    ``REPRO_BENCH_STRICT=1`` (they need physical cores).
    """
    rows = measure_pool_scaling(quick=not STRICT, best_of=2 if STRICT else 1)
    for row in rows:
        assert row["parity"], f"pooled replication diverged: {row}"
        bench_record(
            row["bench"], row["config"], row["wall_s"],
            row["speedup_vs_reference"],
        )
    if STRICT:
        for row in rows:
            floor = SCALING_FLOORS.get(row["jobs"])
            if floor is not None:
                assert row["speedup_vs_reference"] >= floor, row


def test_pool_dispatch_overhead(bench_record):
    """A jobs=1 warm pool must track serial — dispatch cost, not spawn."""
    row = measure_pool_dispatch(quick=not STRICT, best_of=2 if STRICT else 1)
    assert row["parity"], f"pooled replication diverged: {row}"
    bench_record(
        row["bench"], row["config"], row["wall_s"],
        row["speedup_vs_reference"],
    )


# ----------------------------------------------------------------------
# Script mode (CI smoke).
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="warm worker-pool scaling measurement (script mode)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small machine (radix 4, short windows) for CI smoke",
    )
    parser.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="take the best wall clock of N runs (default: 1)",
    )
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=[2, 4], metavar="N",
        help="jobs levels to measure (default: 2 4)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the measurements as JSON to FILE",
    )
    args = parser.parse_args(argv)
    rows = measure_pool_scaling(
        quick=args.quick, jobs_levels=tuple(args.jobs), best_of=args.best_of
    )
    rows.append(measure_pool_dispatch(quick=args.quick, best_of=args.best_of))
    for row in rows:
        print(
            f"{row['bench']:<16} {row['config']:<34} "
            f"pooled {row['wall_s']}s vs serial {row['serial_wall_s']}s -> "
            f"{row['speedup_vs_reference']}x (parity: {row['parity']})"
        )
    parity = all(row["parity"] for row in rows)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
        print(f"report written to {args.output}")
    return 0 if parity else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: regenerate Figure 3 (application message curves)."""

from repro.experiments import fig3
from repro.experiments.validation_data import clear_cache


def test_figure3_message_curves(run_once):
    clear_cache()
    result = run_once(fig3.run, quick=True)
    slopes = result.data["slopes"]
    # The paper's qualitative claim: slopes grow with context count,
    # roughly doubling per doubling of contexts.
    assert slopes[1] < slopes[2] < slopes[4]
    assert 1.4 < slopes[2] / slopes[1] < 2.2

"""Benchmark: the UCL-vs-NUCL comparison (Section 1, quantified)."""

from repro.experiments import ucl_nucl


def test_ucl_vs_nucl(run_once):
    result = run_once(ucl_nucl.run, quick=False)
    ideal = result.data["ideal"]
    ucl = result.data["ucl"]
    ratios = [i / u for i, u in zip(ideal, ucl)]
    # Ideal NUCL beats UCL everywhere, by a growing margin.
    assert all(r > 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]

"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper artifact (figure series, table
rows) and prints the same rows/series the paper reports, so `pytest
benchmarks/ --benchmark-only -s` doubles as a full reproduction run.
Simulation-backed experiments run in quick mode to keep the whole suite
in the minutes range; the full-length versions are available through the
CLI (`repro-locality run <id>`).

Besides pytest-benchmark's own reports, the session leaves machine-
readable breadcrumbs at the repo root: one ``BENCH_<module>.json`` per
benchmark module that ran (``BENCH_simulator.json``,
``BENCH_mapping.json``, ...), each a list of ``{bench, config, wall_s,
speedup_vs_reference}`` rows.  Every test contributes a wall-clock row
automatically; tests that measure an explicit kernel-vs-reference
speedup add richer rows through the ``bench_record`` fixture.
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_ROWS = defaultdict(list)


def _module_tag(request) -> str:
    name = request.module.__name__
    return name[len("bench_"):] if name.startswith("bench_") else name


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under timing and print its report."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        if hasattr(result, "render"):
            print()
            print(result.render())
        return result

    return runner


@pytest.fixture
def bench_record(request):
    """Record a named measurement row for this module's BENCH json."""
    tag = _module_tag(request)

    def record(bench, config, wall_s, speedup_vs_reference=None):
        _ROWS[tag].append(
            {
                "bench": bench,
                "config": config,
                "wall_s": wall_s,
                "speedup_vs_reference": speedup_vs_reference,
            }
        )

    return record


@pytest.fixture(autouse=True)
def _record_wall_clock(request):
    """Every benchmark test leaves at least a wall-clock row."""
    began = time.perf_counter()
    yield
    _ROWS[_module_tag(request)].append(
        {
            "bench": request.node.name,
            "config": "pytest",
            "wall_s": round(time.perf_counter() - began, 4),
            "speedup_vs_reference": None,
        }
    )


def pytest_sessionfinish(session):
    for tag, rows in _ROWS.items():
        path = os.path.join(_REPO_ROOT, f"BENCH_{tag}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)

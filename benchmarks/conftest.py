"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one paper artifact (figure series, table
rows) and prints the same rows/series the paper reports, so `pytest
benchmarks/ --benchmark-only -s` doubles as a full reproduction run.
Simulation-backed experiments run in quick mode to keep the whole suite
in the minutes range; the full-length versions are available through the
CLI (`repro-locality run <id>`).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under timing and print its report."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        if hasattr(result, "render"):
            print()
            print(result.render())
        return result

    return runner

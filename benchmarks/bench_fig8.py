"""Benchmark: regenerate Figure 8 (issue-time component breakdown)."""

import pytest

from repro.experiments import fig8


def test_figure8_breakdown(run_once):
    result = run_once(fig8.run, quick=False)
    shares = result.data["fixed_transaction_share"]
    assert len(shares) == 6
    # One-context share ~ two-thirds (Section 4.2's observation).
    assert shares[(1, "ideal")] == pytest.approx(2 / 3, abs=0.05)
    assert result.data["random_distance"] == pytest.approx(15.8, abs=0.1)

"""Benchmarks: lockstep batched replication vs one machine per seed.

Two entry points, mirroring ``bench_pool.py``:

* ``pytest benchmarks/bench_replication.py`` — the batched-throughput
  rows, every row asserting byte-identical per-seed summaries between
  the serial and batched ``run_replications`` paths.
* ``python benchmarks/bench_replication.py [--quick] [--best-of N]
  [--output FILE]`` — script mode for CI smoke: measures the same rows
  (best-of-N wall clock to shave scheduler noise) and writes the
  ``BENCH_replication.json`` artifact for ``repro-bench compare``.

Row catalogue:

* ``replication_batch`` — serial wall over batched wall for the same
  seed list on one core (``batch=R``, ``jobs=1``): the tentpole claim
  that batching divides the fixed per-cycle interpreter cost by R.
  The ``>= 2.5x`` floor only asserts under ``REPRO_BENCH_STRICT=1``
  (noisy shared runners); everywhere else the committed baseline plus
  the ``repro-bench compare`` >20%-drop gate watches the number.
* ``replication_batch_py`` — the same measurement with
  ``REPRO_BATCH_ENGINE=py`` forced, pinning the pure-Python batch
  engine (the compiled core's executable spec) to parity and keeping
  its wall clock on the record.  No floor: the Python engine's job is
  correctness, not speed.

Parity is asserted on every row, always: batching must return exactly
the summaries the serial path produces, whatever the timing.  Unlike
``bench_pool``'s jobs scaling, the batch speedup is a single-core
property, so the floor is meaningful even on one-CPU containers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.mapping.strategies import random_mapping
from repro.sim.batch import BatchMachine
from repro.sim.config import SimulationConfig
from repro.sim.replicate import default_seeds, run_replications
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs

SEED = 1992
STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"

#: STRICT-mode floor for the batched row (the tentpole claim is >= 3x
#: at R=8 on a quiet core; 2.5x leaves headroom for loaded runners).
BATCH_FLOOR = 2.5


def _workload(quick):
    """The replication workload ``bench_pool`` measures, R=8 when full."""
    config = SimulationConfig(
        radix=4 if quick else 8, contexts=2,
        warmup_network_cycles=300,
        measure_network_cycles=1500 if quick else 6000,
    )
    graph = torus_neighbor_graph(config.radix, 2)
    programs = build_programs(
        graph, 2, config.compute_cycles, config.compute_jitter
    )
    mapping = random_mapping(config.node_count, seed=SEED)
    seeds = default_seeds(config.seed, 4 if quick else 8)
    return config, mapping, programs, seeds


def _best_of(count, fn):
    """Minimum wall over ``count`` runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, count)):
        began = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - began)
    return best, result


def _engine_for(config, mapping, programs, seeds):
    """Which engine a batch of this shape selects ("c" or "py")."""
    return BatchMachine(config, mapping, programs, seeds[:1]).engine


def measure_batch_throughput(quick=False, best_of=1):
    """Serial vs lockstep-batched wall clock on one core, parity-gated."""
    config, mapping, programs, seeds = _workload(quick)
    batch = len(seeds)
    serial_seconds, serial = _best_of(
        best_of,
        lambda: run_replications(config, mapping, programs, seeds, jobs=1),
    )
    expected = [s.as_dict() for s in serial.summaries]
    rows = []
    for engine_mode, bench in (
        (None, "replication_batch"),
        ("py", "replication_batch_py"),
    ):
        previous = os.environ.get("REPRO_BATCH_ENGINE")
        if engine_mode is not None:
            os.environ["REPRO_BATCH_ENGINE"] = engine_mode
        try:
            engine = _engine_for(config, mapping, programs, seeds)
            batched_seconds, batched = _best_of(
                best_of,
                lambda: run_replications(
                    config, mapping, programs, seeds, batch=batch
                ),
            )
        finally:
            if engine_mode is not None:
                if previous is None:
                    del os.environ["REPRO_BATCH_ENGINE"]
                else:
                    os.environ["REPRO_BATCH_ENGINE"] = previous
        rows.append(
            {
                "bench": bench,
                "config": f"{len(seeds)} seeds, serial vs batch={batch}",
                "wall_s": round(batched_seconds, 4),
                "serial_wall_s": round(serial_seconds, 4),
                "speedup_vs_reference": round(
                    serial_seconds / batched_seconds, 2
                ),
                "parity": [s.as_dict() for s in batched.summaries]
                == expected,
                "engine": engine,
                "batch": batch,
            }
        )
    return rows


# ----------------------------------------------------------------------
# pytest benchmarks.
# ----------------------------------------------------------------------


def test_batched_replication_speedup(bench_record):
    """The tentpole: batch=R >= 2.5x serial on one core (STRICT only).

    Parity is asserted on every row, always — this is the CI-retained
    bit-exactness check for the batched replication path.
    """
    rows = measure_batch_throughput(
        quick=not STRICT, best_of=2 if STRICT else 1
    )
    for row in rows:
        assert row["parity"], f"batched replication diverged: {row}"
        bench_record(
            row["bench"], row["config"], row["wall_s"],
            row["speedup_vs_reference"],
        )
    if STRICT:
        headline = next(
            r for r in rows if r["bench"] == "replication_batch"
        )
        assert headline["engine"] == "c", headline
        assert headline["speedup_vs_reference"] >= BATCH_FLOOR, headline


# ----------------------------------------------------------------------
# Script mode (CI smoke).
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="lockstep batched replication measurement (script mode)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small machine (radix 4, short windows, R=4) for CI smoke",
    )
    parser.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="take the best wall clock of N runs (default: 1)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the measurements as JSON to FILE",
    )
    args = parser.parse_args(argv)
    rows = measure_batch_throughput(quick=args.quick, best_of=args.best_of)
    for row in rows:
        print(
            f"{row['bench']:<22} {row['config']:<30} "
            f"batched {row['wall_s']}s vs serial {row['serial_wall_s']}s -> "
            f"{row['speedup_vs_reference']}x "
            f"(engine: {row['engine']}, parity: {row['parity']})"
        )
    parity = all(row["parity"] for row in rows)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
        print(f"report written to {args.output}")
    return 0 if parity else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: regenerate Figure 5 (message latency vs distance)."""

from repro.experiments import fig5
from repro.experiments.validation_data import clear_cache


def test_figure5_latency_vs_distance(run_once):
    clear_cache()
    result = run_once(fig5.run, quick=True)
    reports = result.data["reports"]
    assert reports[1].max_latency_error_cycles < 12.0
    for report in reports.values():
        latencies = [row.simulated.mean_message_latency for row in report.rows]
        assert latencies[-1] > latencies[0]

"""Benchmarks: the vectorized locality engine vs the loop reference.

Two entry points:

* ``pytest benchmarks/bench_mapping.py --benchmark-only`` — timed runs of
  the evaluation kernels, single-chain annealing, and the batched
  multi-chain sweep, each asserting bit-identical parity with the
  loop-based implementations in :mod:`repro.mapping.reference`.
* ``python benchmarks/bench_mapping.py [--quick] [--output FILE]`` —
  script mode for CI smoke: measures the annealing-sweep speedup
  directly, checks parity, and writes a small JSON artifact with the
  measured numbers.

Timing *assertions* (the >= 10x sweep floor from the performance docs)
only fire when ``REPRO_BENCH_STRICT=1`` is set, so shared CI runners
cannot flake the suite; parity assertions always run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.mapping.anneal import anneal_mapping
from repro.mapping.chains import anneal_chains
from repro.mapping.evaluate import average_distance, distance_histogram
from repro.mapping.reference import (
    reference_anneal_mapping,
    reference_average_distance,
    reference_distance_histogram,
)
from repro.mapping.strategies import random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus

RADIX = 8
DIMENSIONS = 2
SEED = 1992

STRICT = os.environ.get("REPRO_BENCH_STRICT") == "1"


def _setup(radix: int = RADIX):
    torus = Torus(radix=radix, dimensions=DIMENSIONS)
    graph = torus_neighbor_graph(radix, DIMENSIONS)
    start = random_mapping(torus.node_count, seed=SEED)
    return torus, graph, start


def test_average_distance_kernel(benchmark):
    torus, graph, start = _setup()
    value = benchmark(average_distance, graph, start, torus)
    assert value == reference_average_distance(graph, start, torus)


def test_distance_histogram_kernel(benchmark):
    torus, graph, start = _setup()
    histogram = benchmark(distance_histogram, graph, start, torus)
    assert histogram == reference_distance_histogram(graph, start, torus)


def test_anneal_single_chain(benchmark):
    torus, graph, start = _setup()
    result = benchmark(
        anneal_mapping, graph, torus, start, steps=3000, seed=SEED
    )
    assert result == reference_anneal_mapping(
        graph, torus, start, steps=3000, seed=SEED
    )


def test_anneal_multi_chain_batched(benchmark):
    torus, graph, start = _setup()
    search = benchmark(
        anneal_chains, graph, torus, start, chains=4, steps=3000, seed=SEED
    )
    for index, result in enumerate(search.results):
        assert result == anneal_mapping(
            graph, torus, start, steps=3000, seed=SEED + index
        )


def test_annealing_sweep_speedup():
    """The headline claim: the batched sweep is >= 10x the loop reference.

    Always checks exact parity (same assignments, same accepted and
    attempted counts); only enforces the timing floor under
    ``REPRO_BENCH_STRICT=1``.
    """
    report = measure_sweep(chains=8, steps=5000)
    assert report["parity"], "vectorized sweep diverged from the reference"
    if STRICT:
        assert report["speedup"] >= 10.0, report


def measure_sweep(chains: int = 8, steps: int = 5000) -> dict:
    """Time an R-chain annealing sweep, batched vs loop reference."""
    torus, graph, start = _setup()

    began = time.perf_counter()
    reference = [
        reference_anneal_mapping(graph, torus, start, steps=steps, seed=SEED + i)
        for i in range(chains)
    ]
    reference_seconds = time.perf_counter() - began

    torus.distance_table()  # table build is shared; warm it like a campaign
    began = time.perf_counter()
    search = anneal_chains(
        graph, torus, start, chains=chains, steps=steps, seed=SEED
    )
    batched_seconds = time.perf_counter() - began

    parity = all(
        fast == slow for fast, slow in zip(search.results, reference)
    )
    return {
        "radix": RADIX,
        "dimensions": DIMENSIONS,
        "chains": chains,
        "steps": steps,
        "reference_seconds": round(reference_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(reference_seconds / batched_seconds, 2),
        "parity": parity,
        "best_distance": search.best.best_distance,
        "initial_distance": search.best.initial_distance,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="annealing-sweep speedup measurement (script mode)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep (2 chains x 800 steps) for CI smoke",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the measurement as JSON to FILE",
    )
    args = parser.parse_args(argv)
    chains, steps = (2, 800) if args.quick else (8, 5000)
    report = measure_sweep(chains=chains, steps=steps)
    print(
        f"{chains} chains x {steps} steps: reference "
        f"{report['reference_seconds']}s, batched "
        f"{report['batched_seconds']}s -> {report['speedup']}x "
        f"(parity: {report['parity']})"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.output}")
    return 0 if report["parity"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""CI smoke: a short anneal at ~10^5 nodes on the delta backend.

The delta-compressed distance engine exists so machines far beyond the
4096-node dense-table guard run inside commodity memory.  This script is
the executable form of that promise: build the 316^2 = 99 856-node
machine, anneal a short budget, and fail loudly if peak RSS crosses the
2 GB ceiling (a dense table at this size would need ~20 GB on its own).
Writes a JSON artifact with the measured throughput so CI uploads keep a
trajectory of large-N performance.

Usage: ``python benchmarks/smoke_large_n.py [--output FILE]``
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time

from repro.mapping.anneal import anneal_mapping
from repro.mapping.strategies import random_mapping
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus, distance_backend

RADIX = 316
DIMENSIONS = 2
STEPS = 2000
SEED = 1992
RSS_CEILING_MB = 2048.0


def run() -> dict:
    torus = Torus(radix=RADIX, dimensions=DIMENSIONS)
    backend = distance_backend(torus)
    if backend.kind != "delta":
        raise AssertionError(
            f"expected the delta backend at N={torus.node_count}, "
            f"got {backend.kind!r}"
        )
    graph = torus_neighbor_graph(RADIX, DIMENSIONS)
    start = random_mapping(torus.node_count, seed=SEED)
    began = time.perf_counter()
    result = anneal_mapping(graph, torus, start, steps=STEPS, seed=SEED)
    wall = time.perf_counter() - began
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "bench": "large_n_anneal_smoke",
        "config": f"{RADIX}^{DIMENSIONS} ({torus.node_count:,} nodes)",
        "backend": backend.kind,
        "steps": STEPS,
        "wall_s": round(wall, 2),
        "steps_per_s": round(STEPS / wall, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "rss_ceiling_mb": RSS_CEILING_MB,
        "initial_distance": result.initial_distance,
        "best_distance": result.best_distance,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="large-N anneal smoke (delta backend, RSS ceiling)"
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the measurement row as JSON",
    )
    args = parser.parse_args(argv)
    row = run()
    print(
        f"{row['config']}: {row['steps']} steps in {row['wall_s']}s "
        f"({row['steps_per_s']} steps/s), peak RSS {row['peak_rss_mb']} MB"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(row, handle, indent=2)
    if row["peak_rss_mb"] >= RSS_CEILING_MB:
        print(
            f"FAIL: peak RSS {row['peak_rss_mb']} MB exceeds the "
            f"{RSS_CEILING_MB:.0f} MB ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmarks: the DESIGN.md ablation experiments."""

from repro.experiments import ablations


def test_ablation_feedback(run_once):
    result = run_once(ablations.run_feedback, quick=True)
    assert "saturated" in result.render()


def test_ablation_clamp(run_once):
    result = run_once(ablations.run_clamp, quick=True)
    assert result.tables


def test_ablation_node_channel(run_once):
    result = run_once(ablations.run_node_channel, quick=True)
    assert result.tables


def test_ablation_dimension(run_once):
    result = run_once(ablations.run_dimension, quick=True)
    assert result.tables


def test_ablation_buffering(run_once):
    result = run_once(ablations.run_buffering, quick=True)
    # Wormhole shows at least as much latency as buffered cut-through on
    # the high-distance mappings (the final row of the table).
    assert result.tables

"""Benchmarks: the extension experiments beyond the paper's artifacts."""

from repro.experiments import organizations, scaling_sim
from repro.experiments.validation_data import clear_cache


def test_organizations_taxonomy(run_once):
    result = run_once(organizations.run, quick=False)
    bus = result.data["bus"]
    # Per-node bus throughput collapses monotonically with machine size.
    assert all(b <= a + 1e-12 for a, b in zip(bus, bus[1:]))


def test_scaling_simulated(run_once):
    clear_cache()
    result = run_once(scaling_sim.run, quick=True)
    latencies = result.data["t_m_sim"]
    assert all(b > a for a, b in zip(latencies, latencies[1:]))

"""Microbenchmarks: combined-model solver throughput and consistency.

Not a paper artifact, but the solver sits inside every Section 4 sweep;
these benchmarks track its cost and double-check the closed-form and
numeric paths agree at speed.
"""

import pytest

from repro.core import NodeModel, TorusNetworkModel, solve, solve_quadratic


@pytest.fixture(scope="module")
def models():
    node = NodeModel(sensitivity=3.26, intercept=90.0)
    extended = TorusNetworkModel(dimensions=2, message_size=12.0)
    base = extended.without_extensions()
    return node, extended, base


def test_bisection_solver_throughput(benchmark, models):
    node, extended, _ = models

    def solve_sweep():
        return [solve(node, extended, d) for d in range(2, 102)]

    points = benchmark(solve_sweep)
    assert len(points) == 100
    assert all(0 < p.utilization < 1 for p in points)


def test_quadratic_solver_throughput(benchmark, models):
    node, _, base = models

    def solve_sweep():
        return [solve_quadratic(node, base, float(d)) for d in range(3, 103)]

    points = benchmark(solve_sweep)
    assert len(points) == 100


def test_solvers_agree(benchmark, models):
    node, _, base = models

    def compare():
        worst = 0.0
        for d in range(3, 53):
            numeric = solve(node, base, float(d))
            closed = solve_quadratic(node, base, float(d))
            error = abs(numeric.message_rate - closed.message_rate)
            worst = max(worst, error / closed.message_rate)
        return worst

    worst = benchmark(compare)
    assert worst < 1e-7

"""Microbenchmarks: combined-model solver throughput and consistency.

Not a paper artifact, but the solver sits inside every Section 4 sweep;
these benchmarks track its cost and double-check the closed-form and
numeric paths agree at speed.  The headline sweep benchmarks go through
:func:`repro.core.solve_batch` (the vectorized path every sweep in
``core/sweeps.py`` now uses); the scalar bisection is benchmarked
separately as the reference it remains.
"""

import numpy as np
import pytest

from repro.core import (
    NodeModel,
    TorusNetworkModel,
    solve,
    solve_batch,
    solve_quadratic,
)


@pytest.fixture(scope="module")
def models():
    node = NodeModel(sensitivity=3.26, intercept=90.0)
    extended = TorusNetworkModel(dimensions=2, message_size=12.0)
    base = extended.without_extensions()
    return node, extended, base


def test_bisection_solver_throughput(benchmark, models):
    """The distance sweep on the batched bisection path."""
    node, extended, _ = models
    distances = np.arange(2, 102, dtype=float)

    def solve_sweep():
        return solve_batch(node, extended, distances)

    batch = benchmark(solve_sweep)
    points = [batch.point(i) for i in range(len(distances))]
    assert len(points) == 100
    assert all(0 < p.utilization < 1 for p in points)


def test_scalar_bisection_reference(benchmark, models):
    """The same sweep through the scalar solver (reference path)."""
    node, extended, _ = models

    def solve_sweep():
        return [solve(node, extended, d) for d in range(2, 102)]

    points = benchmark(solve_sweep)
    assert len(points) == 100
    assert all(0 < p.utilization < 1 for p in points)


def test_quadratic_solver_throughput(benchmark, models):
    node, _, base = models

    def solve_sweep():
        return [solve_quadratic(node, base, float(d)) for d in range(3, 103)]

    points = benchmark(solve_sweep)
    assert len(points) == 100


def test_batch_sweep_with_per_point_parameters(benchmark, models):
    """Sweep where sensitivity and intercept vary per point (the shape
    ``sweep_contexts`` and ``sweep_network_slowdowns`` produce)."""
    node, extended, _ = models
    count = 100
    distances = np.linspace(2.0, 8.0, count)
    sensitivity = np.linspace(1.5, 6.0, count)
    intercept = np.linspace(40.0, 140.0, count)

    def solve_sweep():
        return solve_batch(
            node,
            extended,
            distances,
            sensitivity=sensitivity,
            intercept=intercept,
        )

    batch = benchmark(solve_sweep)
    assert batch.transaction_rate.shape == (count,)
    assert np.all(batch.transaction_rate > 0)


def test_solvers_agree(benchmark, models):
    node, _, base = models

    def compare():
        worst = 0.0
        for d in range(3, 53):
            numeric = solve(node, base, float(d))
            closed = solve_quadratic(node, base, float(d))
            error = abs(numeric.message_rate - closed.message_rate)
            worst = max(worst, error / closed.message_rate)
        return worst

    worst = benchmark(compare)
    assert worst < 1e-7

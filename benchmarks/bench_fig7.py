"""Benchmark: regenerate Figure 7 (expected gain vs machine size)."""

import pytest

from repro.experiments import fig7


def test_figure7_gain_curves(run_once):
    result = run_once(fig7.run, quick=False)
    gains = result.data["gains"]
    for p in (1, 2, 4):
        assert gains[p][0] == pytest.approx(1.0, abs=0.05)
        assert 38 < gains[p][-1] < 57  # paper: 40-55 at a million
    # The paper's "strikingly similar" curves: within ~10% at 1,000.
    thousand_index = min(
        range(len(result.data["sizes"])),
        key=lambda i: abs(result.data["sizes"][i] - 1000),
    )
    at_thousand = [gains[p][thousand_index] for p in (1, 2, 4)]
    assert max(at_thousand) / min(at_thousand) < 1.15

"""Lightweight global performance counters.

The solver and sweep layers increment these as they work; the experiment
runner snapshots them around each experiment so the CLI can report, per
experiment, how many operating-point solves ran, how many were served
from the memoized cache, and how much work the batched solver absorbed.

Counters are process-global and cheap (plain integer adds on a module
singleton).  They are diagnostics, not results: experiment outputs never
depend on them, so parallel runs — where each worker process has its own
counters — stay byte-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["PerfCounters", "COUNTERS", "snapshot", "delta", "reset"]


@dataclass
class PerfCounters:
    """Process-wide solver/sweep activity counters."""

    #: Scalar combined-model solves (bisection or closed form).
    solve_calls: int = 0
    #: ``solve_cached`` lookups answered from the memoized cache.
    cache_hits: int = 0
    #: ``solve_cached`` lookups that had to run the solver.
    cache_misses: int = 0
    #: Number of ``solve_batch`` invocations.
    batch_solves: int = 0
    #: Total operating points produced by ``solve_batch``.
    batch_points: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The process-global counter instance.
COUNTERS = PerfCounters()


def snapshot() -> Dict[str, int]:
    """Copy the current counter values."""
    return COUNTERS.as_dict()


def delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counter increments since ``before`` (a prior :func:`snapshot`)."""
    now = COUNTERS.as_dict()
    return {name: now[name] - before.get(name, 0) for name in now}


def reset() -> None:
    """Zero all counters (mainly for tests)."""
    for f in fields(PerfCounters):
        setattr(COUNTERS, f.name, 0)

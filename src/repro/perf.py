"""Legacy perf-counter shim over the :mod:`repro.obs.metrics` registry.

Historically this module owned a process-global dataclass of solver
counters; the unified observability layer superseded it with the
:data:`repro.obs.metrics.REGISTRY`.  The public API here is preserved —
``perf.COUNTERS.solve_calls += 1``, :func:`snapshot`, :func:`delta`,
:func:`reset` all behave exactly as before — but the storage now *is*
the registry (counters named ``perf.<name>``), so the same numbers show
up in run manifests and metric snapshots without double bookkeeping.

Counters remain process-global and cheap, and they are diagnostics, not
results: experiment outputs never depend on them, so parallel runs —
where each worker process has its own counters — stay byte-identical to
serial ones.
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import REGISTRY, Counter

__all__ = ["PerfCounters", "COUNTERS", "snapshot", "delta", "reset"]

#: Counter attribute names, in reporting order.
_COUNTER_NAMES = (
    "solve_calls",
    "cache_hits",
    "cache_misses",
    "batch_solves",
    "batch_points",
)

_HELP = {
    "solve_calls": "scalar combined-model solves (bisection or closed form)",
    "cache_hits": "solve_cached lookups answered from the memoized cache",
    "cache_misses": "solve_cached lookups that had to run the solver",
    "batch_solves": "solve_batch invocations",
    "batch_points": "total operating points produced by solve_batch",
}


class PerfCounters:
    """Attribute view over the registry's ``perf.*`` counters.

    ``COUNTERS.solve_calls`` reads the registry counter's value;
    assignment (and so ``+=``) writes it back, keeping the historical
    integer-attribute interface while the registry stays the single
    source of truth.
    """

    __slots__ = ("_counters",)

    def __init__(self, registry=REGISTRY):
        object.__setattr__(
            self,
            "_counters",
            {
                name: registry.counter(f"perf.{name}", help=_HELP[name])
                for name in _COUNTER_NAMES
            },
        )

    def __getattr__(self, name: str) -> int:
        try:
            return self._counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        counters = object.__getattribute__(self, "_counters")
        counter = counters.get(name)
        if counter is None:
            raise AttributeError(f"unknown perf counter {name!r}")
        counter.value = value

    def as_dict(self) -> Dict[str, int]:
        return {name: self._counters[name].value for name in _COUNTER_NAMES}


#: The process-global counter instance.
COUNTERS = PerfCounters()


def snapshot() -> Dict[str, int]:
    """Copy the current counter values."""
    return COUNTERS.as_dict()


def delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counter increments since ``before`` (a prior :func:`snapshot`)."""
    now = COUNTERS.as_dict()
    return {name: now[name] - before.get(name, 0) for name in now}


def reset() -> None:
    """Zero all counters (mainly for tests)."""
    for name in _COUNTER_NAMES:
        setattr(COUNTERS, name, 0)

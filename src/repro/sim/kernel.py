"""Array-backed wormhole fabric kernel.

The hot-path replacement for :class:`repro.sim.reference.ReferenceTorusFabric`:
the same rigid-worm semantics — e-cube routing with dateline virtual
channels, FCFS arbitration in deterministic order, one movement per worm
per cycle — computed over flat state instead of per-worm Python objects
and per-channel deque scans.

**State layout.**  Worms live in a structure-of-arrays pool indexed by a
slot id: flit counts, CSR route extents, head index, movement count,
moved-at stamp, queue link, and message, each a flat list (one scalar
per slot).  Freed slots are recycled through a free list.  Routes are
CSR-packed into one flat channel-id store — a Python list for scalar
indexing in the grant loop plus a write-through numpy buffer for the
vectorized drain's gathers — shared by every worm on the same (source,
destination) pair.  Per-channel state is flat lists indexed by dense
channel id: the owner slot, and the FIFO queue as an intrusive linked
list (``queue_head`` / ``queue_tail`` per channel, one ``next`` pointer
per worm — a worm waits in at most one queue, so one link suffices).

**The movement invariant.**  Before reaching its destination a worm's
``moves`` increments exactly once per channel acquisition, and the
acquisition is recorded *before* the increment — so route channel ``i``
is always acquired at movement count ``i``.  Channel ``i`` is therefore
released exactly when ``moves`` reaches ``i + flits``, which turns the
reference's per-worm release scan into arithmetic: each movement (grant
or drain) releases at most route index ``moves - flits``, and by the
time a worm finishes every channel is already free.  This is the same
invariant that let the reference collapse ``acquire_moves`` to a scalar.

**Phase 1 (drain).**  Once a worm's head arrives, its remaining life is
fully determined: it releases route index ``moves - flits`` on each
subsequent cycle (once non-negative) and finishes on the cycle that
index reaches the ejection channel.  The drain therefore carries only a
release-index counter per worm — four parallel arrays (slot, release
index, route base, final index) advanced either by a scalar loop (small
sets, where interpreter-level arithmetic beats numpy's per-call
constants) or by vectorized increment/gather/compress passes (large
sets), leaving scalar work only for actual channel releases and
deliveries.

**Phase 2 (grants).**  No scan at all: the fabric maintains the exact
set of channels that could possibly be granted (free, with a waiter),
so the scalar loop touches only channels that change hands this cycle.
The reference's sequential scan order is reproduced exactly by ordering
grants on each channel's *pending stamp* — the stamp assigned when its
queue last went empty-to-nonempty, which is precisely the position the
reference's pending list would visit it at:

* the reference appends a channel to its pending list once, on the
  empty-to-nonempty enqueue, and drops it only when the queue empties —
  so pending order is always ascending stamp order;
* a channel released *during* Phase 2 by a grant at stamp ``s`` is
  grantable this cycle iff its own stamp exceeds ``s`` (the scan hasn't
  passed it yet) — later stamps join this cycle's heap, earlier ones
  carry to the next cycle;
* a channel enqueued during Phase 2 (a granted worm queuing for its next
  hop) gets a fresh stamp past every live one and its head worm has
  already moved this cycle, so it can only carry to the next cycle —
  exactly what the reference's ``moved_at`` check produces.

The seeded parity suite pins this equivalence cycle for cycle against
the reference on multiple torus shapes and mapping modes, and the
property tests drive both fabrics with random traffic.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.message import Message
from repro.sim.telemetry import FabricTelemetry, TelemetryConfig
from repro.topology.torus import Torus

__all__ = ["DeliveredWorm", "FabricKernel"]

ChannelKey = Tuple

#: Initial worm-pool capacity; the pool doubles when it runs out.
_INITIAL_CAPACITY = 64

#: Draining-set size at which the vectorized Phase-1 path overtakes the
#: scalar loop (numpy's per-call constants cost roughly this many
#: per-worm scalar iterations).
_DRAIN_VECTOR_THRESHOLD = 80


class DeliveredWorm:
    """Delivery record handed to ``on_delivery`` (message + accounting)."""

    __slots__ = ("message", "hops", "source_wait")

    def __init__(self, message: Message, hops: int, source_wait: int):
        self.message = message
        self.hops = hops
        self.source_wait = source_wait

    def __repr__(self) -> str:
        return (
            f"DeliveredWorm({self.message!r}, hops={self.hops}, "
            f"source_wait={self.source_wait})"
        )


class FabricKernel:
    """Array-backed rigid-worm wormhole fabric.

    Drop-in replacement for the reference fabric's interface: same
    constructor shape, same ``inject`` / ``tick`` / ``quiescent`` /
    ``link_flits`` surface, same delivery-record attributes
    (``message``, ``hops``, ``source_wait``), same stall detection.
    """

    def __init__(
        self,
        torus: Torus,
        on_delivery: Callable[[DeliveredWorm], None],
        stall_limit: int = 10000,
    ):
        self.torus = torus
        self.on_delivery = on_delivery
        self.stall_limit = stall_limit

        # Channel enumeration: identical id assignment to the reference
        # fabric (injection, ejection, then two VCs per directed link).
        self._channel_index: Dict[ChannelKey, int] = {}
        self._link_keys: List[Tuple[int, int, int]] = []
        link_index: Dict[Tuple[int, int, int], int] = {}
        link_of: List[int] = []
        for node in torus.nodes():
            self._channel_index[("inj", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            self._channel_index[("ej", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            for dim in range(torus.dimensions):
                for step in (1, -1):
                    link = (node, dim, step)
                    link_index[link] = len(self._link_keys)
                    self._link_keys.append(link)
                    for vc in (0, 1):
                        key = ("link", node, dim, step, vc)
                        self._channel_index[key] = len(link_of)
                        link_of.append(link_index[link])
        count = len(link_of)
        self._link_of = link_of
        self._link_flit_counts = [0] * len(self._link_keys)

        # Per-channel state (flat lists indexed by channel id).
        self._owner: List[int] = [-1] * count          # worm slot or -1
        self._queue_head: List[int] = [-1] * count     # worm slot or -1
        self._queue_tail: List[int] = [-1] * count
        #: Pending-order stamp, assigned on empty-to-nonempty enqueue;
        #: meaningful only while the queue is non-empty.
        self._stamp: List[int] = [0] * count
        self._stamp_counter = 0
        #: Channels that may be grantable (free with a waiter), plus a
        #: membership flag to keep entries unique.
        self._candidates: List[int] = []
        self._in_candidates: List[bool] = [False] * count

        # Worm pool: flat per-slot lists (plain lists grow in place, so
        # locals cached by the tick loop stay valid even when an inline
        # delivery injects new traffic and the pool has to grow).
        capacity = _INITIAL_CAPACITY
        self._w_moves: List[int] = [0] * capacity
        self._w_flits: List[int] = [0] * capacity
        self._w_route_start: List[int] = [0] * capacity
        self._w_route_len: List[int] = [0] * capacity
        self._w_head: List[int] = [-1] * capacity
        self._w_moved_at: List[int] = [-1] * capacity
        self._w_next: List[int] = [-1] * capacity      # queue link
        self._w_injected_at: List[int] = [0] * capacity
        self._w_source_wait: List[int] = [0] * capacity
        self._w_message: List[Optional[Message]] = [None] * capacity
        self._free_slots: List[int] = list(range(capacity - 1, -1, -1))

        # CSR route storage: one flat channel-id sequence, cached per
        # (source, destination).  Kept in both forms — a Python list for
        # scalar indexing in the grant loop, and a write-through numpy
        # buffer (amortized doubling) for the vectorized drain's gather.
        self._route_flat: List[int] = []
        self._route_np = np.zeros(256, dtype=np.int64)
        self._route_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}

        # Drain state: per draining worm, in arrival order — the worm
        # slot, the route index it released on the previous cycle (may
        # start negative: flits still entering the network), the CSR
        # base of its route, and the final (ejection-channel) index at
        # which it finishes.  Phase-2 arrivals buffer in ``_drain_add``
        # as (slot, rel, base, last) tuples and merge at the next
        # Phase 1, preserving reference order: survivors first, then
        # this cycle's arrivals.
        self._drain_slot: List[int] = []
        self._drain_rel: List[int] = []
        self._drain_base: List[int] = []
        self._drain_last: List[int] = []
        self._drain_add: List[Tuple[int, int, int, int]] = []

        self._stall_cycles = 0
        self._owned_count = 0
        self._queued_count = 0
        self._in_flight_count = 0
        self.delivered_count = 0
        #: Optional per-channel instrumentation; ``None`` keeps the hot
        #: loop at one guarded branch per tick and per grant.
        self._telemetry: Optional[FabricTelemetry] = None

    # ------------------------------------------------------------------
    # Route construction.
    # ------------------------------------------------------------------

    def build_route(self, source: int, destination: int) -> List[ChannelKey]:
        """E-cube route with dateline VC assignment, inj/ej inclusive."""
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        route: List[ChannelKey] = [("inj", source)]
        radix = self.torus.radix
        current_vc_dim = -1
        vc = 0
        for node, dim, step in self.torus.route_hops(source, destination):
            if dim != current_vc_dim:
                current_vc_dim = dim
                vc = 0
            coordinate = self.torus.coordinates(node)[dim]
            route.append(("link", node, dim, step, vc))
            # Crossing the ring's zero boundary switches to VC 1 for the
            # rest of this dimension (the dateline rule).
            wraps = (step == 1 and coordinate == radix - 1) or (
                step == -1 and coordinate == 0
            )
            if wraps:
                vc = 1
        route.append(("ej", destination))
        return route

    def _route_ids(self, source: int, destination: int) -> List[int]:
        """Channel ids of the e-cube route, computed arithmetically.

        The light-traffic fast path: route construction dominates kernel
        time at low load (every new (source, destination) pair walks the
        torus), so this builds the exact channel-id sequence of
        :meth:`build_route` without materializing key tuples, coordinate
        tuples, or dict lookups.  It exploits the constructor's channel
        enumeration — ``inj`` ids are ``0..N-1``, ``ej`` ids ``N..2N-1``,
        and link channel ids ``2N + 4 * (node * n + dim) + 2 * step_idx
        + vc`` with ``step_idx`` 0 for +1 travel and 1 for -1 — and
        walks node ids incrementally (``+/- stride``, or the wraparound
        jump of ``(k - 1) * stride`` at the dateline, which is also
        exactly where the VC switches to 1).  Pinned channel-for-channel
        against :meth:`build_route` by the parity suite.
        """
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        radix = self.torus.radix
        dims = self.torus.dimensions
        link_base = 2 * self.torus.node_count
        ids = [source]
        node = source
        src_rem = source
        dst_rem = destination
        stride = 1
        for dim in range(dims):
            coord = src_rem % radix
            forward = (dst_rem % radix - coord) % radix
            src_rem //= radix
            dst_rem //= radix
            if forward:
                backward = radix - forward
                vc = 0
                if forward <= backward:
                    # Positive direction (ties at half-way go positive).
                    for _ in range(forward):
                        ids.append(link_base + 4 * (node * dims + dim) + vc)
                        if coord == radix - 1:
                            node -= (radix - 1) * stride
                            coord = 0
                            vc = 1
                        else:
                            node += stride
                            coord += 1
                else:
                    for _ in range(backward):
                        ids.append(
                            link_base + 4 * (node * dims + dim) + 2 + vc
                        )
                        if coord == 0:
                            node += (radix - 1) * stride
                            coord = radix - 1
                            vc = 1
                        else:
                            node -= stride
                            coord -= 1
            stride *= radix
        ids.append(self.torus.node_count + destination)
        return ids

    def _append_route_ids(self, ids: List[int]) -> Tuple[int, int]:
        """Append channel ids to the CSR store; return (start, length)."""
        start = len(self._route_flat)
        end = start + len(ids)
        if end > self._route_np.shape[0]:
            capacity = self._route_np.shape[0]
            while capacity < end:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[:start] = self._route_np[:start]
            self._route_np = grown
        self._route_np[start:end] = ids
        self._route_flat.extend(ids)
        return (start, len(ids))

    def _route_extent(self, source: int, destination: int) -> Tuple[int, int]:
        """CSR (start, length) of the channel-id route, memoized."""
        pair = (source, destination)
        extent = self._route_cache.get(pair)
        if extent is None:
            extent = self._append_route_ids(
                self._route_ids(source, destination)
            )
            self._route_cache[pair] = extent
        return extent

    # ------------------------------------------------------------------
    # Worm pool.
    # ------------------------------------------------------------------

    def _grow_pool(self) -> None:
        old = len(self._w_head)
        grow = old  # double
        self._w_moves.extend([0] * grow)
        self._w_flits.extend([0] * grow)
        self._w_route_start.extend([0] * grow)
        self._w_route_len.extend([0] * grow)
        self._w_head.extend([-1] * grow)
        self._w_moved_at.extend([-1] * grow)
        self._w_next.extend([-1] * grow)
        self._w_injected_at.extend([0] * grow)
        self._w_source_wait.extend([0] * grow)
        self._w_message.extend([None] * grow)
        self._free_slots.extend(range(old + grow - 1, old - 1, -1))

    def _alloc_worm(
        self, message: Message, start: int, length: int, cycle: int
    ) -> int:
        if not self._free_slots:
            self._grow_pool()
        slot = self._free_slots.pop()
        self._w_moves[slot] = 0
        self._w_flits[slot] = message.flits
        self._w_route_start[slot] = start
        self._w_route_len[slot] = length
        self._w_head[slot] = -1
        self._w_moved_at[slot] = -1
        self._w_next[slot] = -1
        self._w_injected_at[slot] = cycle
        self._w_source_wait[slot] = 0
        self._w_message[slot] = message
        self._in_flight_count += 1
        return slot

    # ------------------------------------------------------------------
    # Injection.
    # ------------------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> None:
        """Queue a message at its source node's injection channel."""
        message.injected_at = cycle
        start, length = self._route_extent(
            message.source, message.destination
        )
        slot = self._alloc_worm(message, start, length, cycle)
        self._enqueue(slot, self._route_flat[start])

    def inject_on_route(
        self, message: Message, route_keys: Sequence[ChannelKey], cycle: int
    ) -> None:
        """Test hook: inject on an explicit channel-key route.

        Bypasses e-cube/dateline route construction so tests can craft
        channel-dependency patterns (e.g. a circular wait) that legal
        routing can never produce.  The route is appended to the CSR
        store uncached.
        """
        message.injected_at = cycle
        index = self._channel_index
        ids = [index[key] for key in route_keys]
        start, length = self._append_route_ids(ids)
        slot = self._alloc_worm(message, start, length, cycle)
        self._enqueue(slot, ids[0])

    def _enqueue(self, slot: int, channel: int) -> None:
        """Append ``slot`` to ``channel``'s FIFO (outside the tick loop)."""
        tail = self._queue_tail[channel]
        if tail == -1:
            self._queue_head[channel] = slot
            self._queue_tail[channel] = slot
            self._stamp_counter += 1
            self._stamp[channel] = self._stamp_counter
            if self._owner[channel] == -1 and not self._in_candidates[channel]:
                self._in_candidates[channel] = True
                self._candidates.append(channel)
        else:
            self._w_next[tail] = slot
            self._queue_tail[channel] = slot
        self._w_next[slot] = -1
        self._queued_count += 1

    # ------------------------------------------------------------------
    # Per-cycle advance.
    # ------------------------------------------------------------------

    def attach_telemetry(self, config: TelemetryConfig) -> FabricTelemetry:
        """Attach per-channel instrumentation (see :mod:`..telemetry`)."""
        if self._telemetry is not None:
            raise SimulationError("telemetry already attached to this fabric")
        self._telemetry = FabricTelemetry(
            config=config,
            channels=len(self._owner),
            link_of=self._link_of,
            link_keys=self._link_keys,
            depth_probe=self._queue_depths,
            label="kernel",
        )
        return self._telemetry

    def _queue_depths(self) -> List[int]:
        """Waiting worms per channel FIFO (telemetry epoch sampling)."""
        depths = [0] * len(self._queue_head)
        if not self._queued_count:
            # Quiescent epoch boundary: every FIFO is empty, so skip
            # the per-channel linked-list walks — this is what keeps
            # attached telemetry nearly free on light traffic.
            return depths
        # Far fewer channels hold queued worms than exist, so find the
        # non-empty ones with one vectorized compare and walk only
        # those lists — a pure-Python sweep over every channel costs
        # more than the telemetry epoch close itself at radix >= 16.
        heads = np.asarray(self._queue_head)
        w_next = self._w_next
        for channel in np.nonzero(heads != -1)[0].tolist():
            head = self._queue_head[channel]
            depth = 0
            while head != -1:
                depth += 1
                head = w_next[head]
            depths[channel] = depth
        return depths

    def tick(self, cycle: int) -> None:
        """Advance the fabric by one network cycle."""
        # Telemetry epoch roll happens before anything else (including
        # the quiescent fast-forward), so epoch boundaries always sample
        # end-of-previous-cycle state — cycle-exact with the reference.
        telemetry = self._telemetry
        if telemetry is not None and cycle >= telemetry.epoch_end:
            telemetry.roll_to(cycle)
        # Quiescent fast-forward: with nothing owned, queued, draining,
        # or pending, a cycle is a guaranteed no-op (the full body would
        # skip both phases and reset the stall counter) — return before
        # touching any per-phase state.  This is what lets light-traffic
        # workloads pay for only the cycles that move flits.
        if not (
            self._owned_count
            or self._queued_count
            or self._drain_slot
            or self._drain_add
            or self._candidates
        ):
            self._stall_cycles = 0
            return
        progressed = False
        owner = self._owner
        queue_head = self._queue_head
        in_candidates = self._in_candidates
        candidates = self._candidates

        # ---- Phase 1: drain (hybrid scalar/vector). ------------------
        #
        # Each draining worm releases route index ``rel + 1`` this cycle
        # (once non-negative) and finishes when that index reaches the
        # ejection channel.  Both paths produce identical state and
        # identical ``on_delivery`` order (finish order is drain-list
        # order; the vector path's release/finish batching commutes
        # because releases never assign pending stamps and deliveries
        # never touch held channels).
        drain_slot = self._drain_slot
        drain_rel = self._drain_rel
        drain_base = self._drain_base
        drain_last = self._drain_last
        if self._drain_add:
            for slot, rel, base, last in self._drain_add:
                drain_slot.append(slot)
                drain_rel.append(rel)
                drain_base.append(base)
                drain_last.append(last)
            self._drain_add.clear()
        size = len(drain_slot)
        if size:
            progressed = True
            route_flat = self._route_flat
            if size < _DRAIN_VECTOR_THRESHOLD:
                freed = 0
                write = 0
                for read in range(size):
                    rel = drain_rel[read] + 1
                    slot = drain_slot[read]
                    if rel >= 0:
                        base = drain_base[read]
                        channel = route_flat[base + rel]
                        owner[channel] = -1
                        freed += 1
                        if (
                            queue_head[channel] != -1
                            and not in_candidates[channel]
                        ):
                            in_candidates[channel] = True
                            candidates.append(channel)
                        if rel == drain_last[read]:
                            # Tail crossed the ejection channel.
                            self._finish(slot, cycle)
                            continue
                        drain_base[write] = base
                    else:
                        drain_base[write] = drain_base[read]
                    drain_slot[write] = slot
                    drain_rel[write] = rel
                    drain_last[write] = drain_last[read]
                    write += 1
                if write != size:
                    del drain_slot[write:]
                    del drain_rel[write:]
                    del drain_base[write:]
                    del drain_last[write:]
                self._owned_count -= freed
            else:
                rel = np.asarray(drain_rel, dtype=np.int64)
                rel += 1
                last = np.asarray(drain_last, dtype=np.int64)
                releasing = rel >= 0
                if releasing.any():
                    base = np.asarray(drain_base, dtype=np.int64)
                    released = self._route_np[
                        base[releasing] + rel[releasing]
                    ]
                    freed = 0
                    for channel in released.tolist():
                        owner[channel] = -1
                        freed += 1
                        if (
                            queue_head[channel] != -1
                            and not in_candidates[channel]
                        ):
                            in_candidates[channel] = True
                            candidates.append(channel)
                    self._owned_count -= freed
                done = rel == last
                if done.any():
                    keep = ~done
                    finished = [
                        drain_slot[i] for i in np.nonzero(done)[0].tolist()
                    ]
                    kept = np.nonzero(keep)[0].tolist()
                    self._drain_slot = [drain_slot[i] for i in kept]
                    self._drain_rel = rel[keep].tolist()
                    self._drain_base = [drain_base[i] for i in kept]
                    self._drain_last = last[keep].tolist()
                    for slot in finished:
                        self._finish(slot, cycle)
                else:
                    self._drain_rel = rel.tolist()

        # ---- Phase 2: grants over the candidate set. -----------------
        if candidates:
            stamp = self._stamp
            heap = [(stamp[channel], channel) for channel in candidates]
            heapify(heap)
            carry: List[int] = []
            self._candidates = carry
            candidates = carry
            queue_tail = self._queue_tail
            w_next = self._w_next
            w_head = self._w_head
            w_moved_at = self._w_moved_at
            w_moves = self._w_moves
            w_flits = self._w_flits
            w_route_start = self._w_route_start
            w_route_len = self._w_route_len
            route_flat = self._route_flat
            link_of = self._link_of
            link_flit_counts = self._link_flit_counts
            telemetry_flits = (
                None if telemetry is None else telemetry.channel_flits
            )
            drain_add = self._drain_add
            # Count deltas accumulate in locals (attribute stores on
            # every grant are measurable); written back after the loop,
            # before the stall check reads them.
            owned_delta = 0
            queued_delta = 0
            while heap:
                position, channel = heappop(heap)
                slot = queue_head[channel]
                if slot == -1 or owner[channel] != -1:
                    # Stale entry (queue drained or channel re-owned
                    # since it was added); it re-enters via the usual
                    # enqueue/release paths if it becomes grantable.
                    in_candidates[channel] = False
                    continue
                if w_moved_at[slot] == cycle:
                    # Head worm already moved this cycle — the reference
                    # scan would skip it and keep the channel pending.
                    carry.append(channel)
                    continue

                # Grant: pop the FIFO head and advance the worm.
                progressed = True
                follower = w_next[slot]
                queue_head[channel] = follower
                if follower == -1:
                    queue_tail[channel] = -1
                # Channel now owned; it re-enters the candidate set when
                # released (its stamp — hence its place in the reference
                # scan order — is unchanged while its queue stays
                # non-empty).
                in_candidates[channel] = False
                queued_delta -= 1
                owner[channel] = slot
                owned_delta += 1
                head = w_head[slot] + 1
                w_head[slot] = head
                if head == 0:
                    self._w_source_wait[slot] = (
                        cycle - self._w_injected_at[slot]
                    )
                moves = w_moves[slot] + 1
                w_moves[slot] = moves
                w_moved_at[slot] = cycle
                flits = w_flits[slot]
                link = link_of[channel]
                if link >= 0:
                    link_flit_counts[link] += flits
                if telemetry_flits is not None:
                    # Busy flit-cycles, booked at acquisition (the same
                    # convention as the per-link flit counters above,
                    # but for every channel including inj/ej).
                    telemetry_flits[channel] += flits
                route_start = w_route_start[slot]
                # This movement completes route channel moves - flits,
                # if any (the movement invariant).
                release_index = moves - flits
                if release_index >= 0:
                    released = route_flat[route_start + release_index]
                    owner[released] = -1
                    owned_delta -= 1
                    if (
                        queue_head[released] != -1
                        and not in_candidates[released]
                    ):
                        in_candidates[released] = True
                        if stamp[released] > position:
                            # The reference scan hasn't reached this
                            # channel yet this cycle: grantable now.
                            heappush(heap, (stamp[released], released))
                        else:
                            # Already passed in scan order: next cycle.
                            carry.append(released)
                route_len = w_route_len[slot]
                if head == route_len - 1:
                    if moves >= head + flits:
                        # Single-flit arrival: deliver inline.  The
                        # delivery callback may inject; those enqueues
                        # land in ``carry`` (the live candidate list)
                        # with fresh stamps — move them into this
                        # cycle's heap, since the reference scan visits
                        # entries appended mid-scan in the same cycle.
                        carried = len(carry)
                        self._finish(slot, cycle)
                        for fresh in carry[carried:]:
                            heappush(heap, (stamp[fresh], fresh))
                        del carry[carried:]
                    else:
                        drain_add.append(
                            (slot, release_index, route_start, head)
                        )
                else:
                    next_channel = route_flat[route_start + head + 1]
                    # Inline enqueue: a fresh empty-to-nonempty queue
                    # gets a new stamp; its head (this worm) has moved
                    # this cycle, so it can only carry to the next one.
                    tail = queue_tail[next_channel]
                    if tail == -1:
                        queue_head[next_channel] = slot
                        queue_tail[next_channel] = slot
                        self._stamp_counter += 1
                        stamp[next_channel] = self._stamp_counter
                        if (
                            owner[next_channel] == -1
                            and not in_candidates[next_channel]
                        ):
                            in_candidates[next_channel] = True
                            carry.append(next_channel)
                    else:
                        w_next[tail] = slot
                        queue_tail[next_channel] = slot
                    w_next[slot] = -1
                    queued_delta += 1
            self._owned_count += owned_delta
            self._queued_count += queued_delta

        # ---- Deadlock safety net. ------------------------------------
        in_flight = bool(
            self._owned_count
            or self._queued_count
            or self._drain_slot
            or self._drain_add
        )
        if in_flight and not progressed:
            self._stall_cycles += 1
            if self._stall_cycles >= self.stall_limit:
                raise SimulationError(
                    f"network made no progress for {self.stall_limit} cycles "
                    f"with {self._owned_count} channels held — routing "
                    "deadlock or arbitration bug"
                )
        else:
            self._stall_cycles = 0

    def _finish(self, slot: int, cycle: int) -> None:
        """Deliver the message and recycle the worm slot.

        By the movement invariant every route channel has already been
        released by the time the tail arrives, so delivery is pure
        bookkeeping (the reference's finish-time release loop is
        provably a no-op).
        """
        message = self._w_message[slot]
        message.delivered_at = cycle
        self.delivered_count += 1
        if self._telemetry is not None:
            self._telemetry.record_delivery(
                cycle - self._w_injected_at[slot]
            )
        record = DeliveredWorm(
            message=message,
            hops=self._w_route_len[slot] - 2,
            source_wait=self._w_source_wait[slot],
        )
        self._w_message[slot] = None
        self._free_slots.append(slot)
        self._in_flight_count -= 1
        self.on_delivery(record)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        """Flits crossed per physical link (links with traffic only)."""
        keys = self._link_keys
        return {
            keys[i]: count
            for i, count in enumerate(self._link_flit_counts)
            if count
        }

    @property
    def in_flight(self) -> int:
        """Worms currently traversing or queued in the fabric."""
        return self._in_flight_count

    def quiescent(self) -> bool:
        """True when no traffic is anywhere in the fabric."""
        return not (
            self._owned_count
            or self._queued_count
            or self._drain_slot
            or self._drain_add
        )

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Quiescence horizon: the earliest cycle a tick could do work.

        Returns ``cycle`` while any worm owns, queues, drains, or waits
        (a wormhole fabric advances every cycle it holds traffic), and
        ``None`` when the fabric is empty — an idle tick is then a
        guaranteed no-op (the quiescent early-exit above resets a stall
        counter that is already zero), so the machine engine may skip
        ticking it until new traffic is injected.
        """
        if (
            self._owned_count
            or self._queued_count
            or self._drain_slot
            or self._drain_add
            or self._candidates
        ):
            return cycle
        return None

"""Parallel multi-seed replication of simulator runs.

Every simulated figure used to rest on a single seed.  This module runs
the same (config, mapping, programs) machine under a list of root seeds
— serially, fanned out over the persistent warm worker pool
(:mod:`repro.core.pool`), and/or packed into lockstep batches
(``batch=R`` routes contiguous seed chunks through
:func:`repro.sim.batch.run_batch`, one engine pass per chunk) — and
aggregates each
:class:`~repro.sim.stats.MeasurementSummary` metric into mean / sample
standard deviation / 95% confidence interval, so model-vs-sim
comparisons carry error bars instead of point estimates.

Determinism contract: for a fixed seed list the aggregates (and the
per-seed summaries) are identical regardless of ``jobs`` and of pool
reuse.  Each replication is an isolated machine built from
``config.with_seed(seed)`` with its own deep copy of the programs (both
the serial path and the pool worker copy explicitly — warm workers
reuse the broadcast payload across tasks, so nothing may mutate it),
results are reassembled in seed order whatever the completion order,
and the statistics are computed with plain float arithmetic over that
order.

Seed policy: :func:`default_seeds` enumerates ``root, root+1, ...`` so
the first replication of a campaign is exactly the old single-seed run —
adding error bars never changes existing point estimates.  Every
processor stream inside a replication derives from that replication's
seed via ``numpy.random.SeedSequence`` (see :mod:`repro.sim.processor`),
and the RNG provenance rides on the result for run manifests.

With observability enabled the whole sweep runs under a ``replicate``
span, each replication inside a ``replication`` span; pool workers ship
their span records back on the result tuple and the parent merges them
(:func:`repro.obs.ingest_worker_payloads`), so a ``jobs=N`` trace is
equivalent to the serial one.
"""

from __future__ import annotations

import copy
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.pool import (
    FALLBACK_ERRORS,
    WorkerPool,
    chunk_tasks,
    get_pool,
    note_fallback,
)
from repro.errors import ParameterError
from repro.mapping.base import Mapping
from repro.sim.batch import run_batch
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.stats import MeasurementSummary
from repro.sim.telemetry import TelemetryConfig, merge_snapshots
from repro.workload.base import ThreadProgram

__all__ = [
    "MetricAggregate",
    "ReplicationResult",
    "aggregate_summaries",
    "default_seeds",
    "run_replications",
]


@dataclass(frozen=True)
class MetricAggregate:
    """Mean / spread of one summary metric across replications.

    ``std`` is the sample standard deviation (ddof=1; 0.0 with a single
    replication) and ``ci95`` the normal-approximation half-width
    ``1.96 * std / sqrt(n)``.  ``n`` counts replications whose window
    produced the metric (``None`` values are skipped); ``values`` keeps
    the per-seed points, in seed order, for plotting.
    """

    metric: str
    mean: float
    std: float
    ci95: float
    n: int
    values: Tuple[float, ...]


@dataclass
class ReplicationResult:
    """Everything ``run_replications`` measured.

    ``summaries[i]`` is the full per-seed summary for ``seeds[i]``;
    ``aggregates`` maps metric name to its cross-seed statistics.
    """

    seeds: Tuple[int, ...]
    summaries: List[MeasurementSummary]
    aggregates: Dict[str, MetricAggregate]
    rng: Dict[str, object]

    def mean(self, metric: str) -> Optional[float]:
        aggregate = self.aggregates.get(metric)
        return aggregate.mean if aggregate else None

    def ci95(self, metric: str) -> Optional[float]:
        aggregate = self.aggregates.get(metric)
        return aggregate.ci95 if aggregate else None

    def telemetry_snapshots(self) -> List[Dict]:
        """Per-seed telemetry snapshots (empty if telemetry was off)."""
        return [
            summary.telemetry
            for summary in self.summaries
            if summary.telemetry is not None
        ]

    def merged_telemetry(self) -> Optional[Dict]:
        """All replications' telemetry as one merged snapshot, or None."""
        snapshots = self.telemetry_snapshots()
        if not snapshots:
            return None
        return merge_snapshots(snapshots)


def default_seeds(root_seed: int, count: int) -> Tuple[int, ...]:
    """``root, root+1, ...`` — replication 0 is the old single-seed run."""
    if count < 1:
        raise ParameterError(f"need at least one replication; got {count}")
    return tuple(root_seed + i for i in range(count))


def aggregate_summaries(
    summaries: Sequence[MeasurementSummary],
) -> Dict[str, MetricAggregate]:
    """Cross-replication statistics for every numeric summary metric."""
    if not summaries:
        raise ParameterError("no summaries to aggregate")
    aggregates: Dict[str, MetricAggregate] = {}
    for metric in summaries[0].as_dict():
        values = tuple(
            float(value)
            for summary in summaries
            if (value := summary.as_dict()[metric]) is not None
        )
        if not values:
            continue
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(variance)
        else:
            std = 0.0
        aggregates[metric] = MetricAggregate(
            metric=metric,
            mean=mean,
            std=std,
            ci95=1.96 * std / math.sqrt(n),
            n=n,
            values=values,
        )
    return aggregates


def _run_single(arguments) -> Tuple[MeasurementSummary, Optional[Dict]]:
    """One seeded machine run.

    Module-level so it pickles; takes one tuple so it maps cleanly.
    Callers must hand this their own copy of mapping and programs
    (programs carry mutable per-run state): the serial path deep-copies,
    and :func:`_pool_run_single` deep-copies the broadcast payload
    before delegating here.
    """
    (
        config,
        mapping,
        programs,
        seed,
        warmup,
        measure,
        collect_obs,
        telemetry,
    ) = arguments
    if collect_obs:
        # Fork-started workers inherit the parent's trace buffer; start
        # fresh so this worker's spans carry its own pid exactly once.
        # The metrics registry is reset for the same reason: histograms
        # accumulated here ship back on the payload, and inherited (or
        # previous-task) state must not ride along twice.
        obs.enable()
        obs.reset()
        obs.REGISTRY.reset()
    mark = obs.trace_mark() if collect_obs else 0
    with obs.span("replication", seed=seed):
        machine = Machine(config.with_seed(seed), mapping, programs)
        if telemetry is not None:
            machine.attach_telemetry(telemetry)
        summary = machine.run(warmup=warmup, measure=measure)
    payload = (
        {
            "pid": os.getpid(),
            "spans": obs.spans_since(mark),
            "histograms": obs.REGISTRY.snapshot_histograms(),
        }
        if collect_obs
        else None
    )
    return summary, payload


def _pool_run_single(payload, task):
    """Warm-pool task: rebuild per-task isolation, then run one seed.

    ``payload`` is the broadcast ``(config, mapping, programs)`` shared
    by every task on this worker; programs are stateful across a run, so
    each task takes a deep copy — the isolation per-task pickling used
    to provide, now paid per task-copy instead of per task-transfer.
    """
    config, mapping, programs = payload
    seed, warmup, measure, collect_obs, telemetry = task
    if not collect_obs and obs.is_enabled():
        # A warm worker may carry obs state enabled by an earlier task
        # (or inherited over fork); this run must not record into it.
        obs.disable()
        obs.reset()
    return _run_single(
        (
            config,
            copy.deepcopy(mapping),
            copy.deepcopy(programs),
            seed,
            warmup,
            measure,
            collect_obs,
            telemetry,
        )
    )


def _run_batch_chunk(
    arguments,
) -> Tuple[List[MeasurementSummary], Optional[Dict]]:
    """One lockstep batch of seeds through :func:`repro.sim.batch.run_batch`.

    The batched counterpart of :func:`_run_single`: same argument-tuple
    convention, same worker obs bootstrap, but one call runs every seed
    in the chunk and returns the summaries in chunk order (each
    bit-identical to its solo run, telemetry snapshot included).
    """
    (
        config,
        mapping,
        programs,
        chunk,
        warmup,
        measure,
        collect_obs,
        telemetry,
    ) = arguments
    if collect_obs:
        # Same worker bootstrap as _run_single: fresh trace buffer and
        # metrics registry so this task's spans/histograms ship exactly
        # once.
        obs.enable()
        obs.reset()
        obs.REGISTRY.reset()
    mark = obs.trace_mark() if collect_obs else 0
    with obs.span("replication.batch", seeds=len(chunk)):
        summaries = run_batch(
            config,
            mapping,
            programs,
            chunk,
            warmup=warmup,
            measure=measure,
            telemetry=telemetry,
        )
    payload = (
        {
            "pid": os.getpid(),
            "spans": obs.spans_since(mark),
            "histograms": obs.REGISTRY.snapshot_histograms(),
        }
        if collect_obs
        else None
    )
    return summaries, payload


def _pool_run_batch(payload, task):
    """Warm-pool task: one seed chunk through the lockstep batch engine.

    Mirrors :func:`_pool_run_single`'s isolation contract: the broadcast
    ``(config, mapping, programs)`` payload is shared across tasks on
    this worker, so mapping/programs are deep-copied per task before the
    batch machine takes its own per-replication copies.
    """
    config, mapping, programs = payload
    chunk, warmup, measure, collect_obs, telemetry = task
    if not collect_obs and obs.is_enabled():
        obs.disable()
        obs.reset()
    return _run_batch_chunk(
        (
            config,
            copy.deepcopy(mapping),
            copy.deepcopy(programs),
            chunk,
            warmup,
            measure,
            collect_obs,
            telemetry,
        )
    )


def run_replications(
    config: SimulationConfig,
    mapping: Mapping,
    programs: Sequence[Sequence[ThreadProgram]],
    seeds: Sequence[int],
    jobs: int = 1,
    warmup: Optional[int] = None,
    measure: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
    pool: Optional[WorkerPool] = None,
    batch: int = 1,
) -> ReplicationResult:
    """Run one machine configuration under each seed and aggregate.

    ``jobs > 1`` fans the replications over the process-global warm
    worker pool (:func:`repro.core.pool.get_pool`): the
    ``(config, mapping, programs)`` payload is broadcast to the workers
    once and each task ships only its seed and window overrides, so N
    replications pickle the machine description once, not N times.
    When no pool can run here the sweep falls back to the serial path —
    loudly, via the ``pool.fallback`` counter and a
    :class:`~repro.core.pool.PoolFallbackWarning` — and results and
    aggregates are identical either way.  Pass ``pool`` to use a
    specific (e.g. spawn-start-method) pool instead of the global one.

    ``warmup`` / ``measure`` override the config's windows, as with
    :meth:`Machine.run`.  With a ``telemetry`` config each replication's
    machine runs instrumented and its snapshot rides on the per-seed
    summary (merge across seeds with
    :meth:`ReplicationResult.merged_telemetry`); with observability on,
    pool workers additionally ship their histogram state back for the
    jobs-invariant registry merge.

    ``batch > 1`` packs the seeds into contiguous chunks of at most
    ``batch`` and runs each chunk through the lockstep batch engine
    (:func:`repro.sim.batch.run_batch`) instead of one machine per
    seed — dividing the fixed per-cycle interpreter cost across the
    chunk.  Per-seed summaries (and telemetry snapshots) are
    bit-identical to the ``batch=1`` path, so batching composes freely
    with ``jobs``: each chunk is one pool task, multiplying the batch
    speedup by the pool's scaling.
    """
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ParameterError("need at least one replication seed")
    batch = int(batch)
    if batch < 1:
        raise ParameterError(f"batch must be >= 1; got {batch}")
    if batch > len(seeds):
        raise ParameterError(
            f"batch ({batch}) exceeds the replication count "
            f"({len(seeds)}); pass batch <= len(seeds)"
        )
    collect_obs = obs.is_enabled()
    outcomes: Optional[List[Tuple[MeasurementSummary, Optional[Dict]]]] = None
    with obs.span("replicate", seeds=len(seeds), jobs=jobs, batch=batch):
        if batch > 1:
            chunks = chunk_tasks(seeds, batch)
            chunk_outcomes = None
            if jobs > 1 or pool is not None:
                try:
                    worker_pool = pool if pool is not None else get_pool(jobs)
                    worker_pool.broadcast(
                        "sim.replicate", (config, mapping, programs)
                    )
                    tasks = [
                        (chunk, warmup, measure, collect_obs, telemetry)
                        for chunk in chunks
                    ]
                    chunk_outcomes = worker_pool.map(
                        _pool_run_batch, tasks, key="sim.replicate"
                    )
                    if collect_obs:
                        obs.ingest_worker_payloads(
                            payload for _, payload in chunk_outcomes
                        )
                except FALLBACK_ERRORS as error:
                    note_fallback("sim.replicate", error)
                    chunk_outcomes = None  # run the chunks serially below
            if chunk_outcomes is None:
                chunk_outcomes = [
                    _run_batch_chunk(
                        (
                            config,
                            copy.deepcopy(mapping),
                            copy.deepcopy(programs),
                            chunk,
                            warmup,
                            measure,
                            False,
                            telemetry,
                        )
                    )
                    for chunk in chunks
                ]
            # Chunks are contiguous slices of the seed tuple, so plain
            # concatenation restores seed order.
            outcomes = [
                (summary, None)
                for chunk_summaries, _ in chunk_outcomes
                for summary in chunk_summaries
            ]
        elif jobs > 1 or pool is not None:
            try:
                worker_pool = pool if pool is not None else get_pool(jobs)
                worker_pool.broadcast(
                    "sim.replicate", (config, mapping, programs)
                )
                tasks = [
                    (seed, warmup, measure, collect_obs, telemetry)
                    for seed in seeds
                ]
                outcomes = worker_pool.map(
                    _pool_run_single, tasks, key="sim.replicate"
                )
                if collect_obs:
                    obs.ingest_worker_payloads(
                        payload for _, payload in outcomes
                    )
            except FALLBACK_ERRORS as error:
                note_fallback("sim.replicate", error)
                outcomes = None  # no usable pool; run serially below
        if outcomes is None:
            # Serial path: deep-copy mapping/programs per run for the
            # same isolation pool pickling provides (programs may carry
            # mutable per-run state).
            outcomes = [
                _run_single(
                    (
                        config,
                        copy.deepcopy(mapping),
                        copy.deepcopy(programs),
                        seed,
                        warmup,
                        measure,
                        False,
                        telemetry,
                    )
                )
                for seed in seeds
            ]
    summaries = [summary for summary, _ in outcomes]
    return ReplicationResult(
        seeds=seeds,
        summaries=summaries,
        aggregates=aggregate_summaries(summaries),
        rng={
            "seeds": list(seeds),
            "scheme": (
                "per-replication root seed -> "
                "numpy.random.SeedSequence(seed).spawn(nodes)"
            ),
        },
    )

"""Reference wormhole fabric: the executable specification.

This is the object-based rigid-worm implementation the array kernel in
:mod:`repro.sim.kernel` replaced on the hot path, preserved verbatim in
behavior (the ``mapping/reference.py`` pattern): one Python object per
worm, one deque per channel, a sequential grant scan per cycle.  Nothing
here runs on a default simulation — it exists so the kernel has an
independent, easy-to-audit implementation to be pinned against cycle for
cycle (same delivery cycles, same link-flit counts, same stall
detection) by the parity tests and benchmarks.

The only post-extraction change is the ``acquire_moves`` list being
collapsed to the scalar ``last_acquire_move``: before a worm reaches its
destination, ``moves`` increments exactly once per channel acquisition
and acquisition happens *before* the increment, so the movement count at
which route channel ``i`` was acquired is always ``i`` — the list was a
per-hop allocation recording the identity function.  Channel ``i`` is
therefore released exactly when ``moves >= i + flits``, and the
drain/finish checks only ever need the final acquisition's movement
count, which the scalar now carries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.message import Message
from repro.sim.telemetry import FabricTelemetry, TelemetryConfig
from repro.topology.torus import Torus

__all__ = ["ReferenceWorm", "ReferenceTorusFabric"]

ChannelKey = Tuple
# Channel keys:
#   ("inj", node)                  node -> switch
#   ("ej", node)                   switch -> node
#   ("link", node, dim, step, vc)  switch -> neighboring switch


@dataclass(slots=True)
class ReferenceWorm:
    """One message in flight through the fabric.

    ``route`` holds dense channel ids (the key form is available from
    :meth:`ReferenceTorusFabric.build_route`); it is borrowed from the
    fabric's route cache and must not be mutated.
    """

    message: Message
    route: List[int]
    #: Index of the most recently acquired route channel (-1 = none yet).
    head: int = -1
    #: Total movement cycles so far (each moves every flit one position).
    moves: int = 0
    #: Movement count when the most recent channel was acquired.  Equals
    #: ``head`` by the acquire-before-increment invariant (see module
    #: docstring); kept as an explicit field so the drain/finish checks
    #: read like the worm model they implement.
    last_acquire_move: int = -1
    #: Index of the first not-yet-released route channel.
    released: int = 0
    #: Cycle stamp of the last movement (prevents >1 hop per cycle).
    moved_at: int = -1
    #: Cycles spent queued at the source's injection channel.
    source_wait: int = 0
    #: Message size in flits, materialized once (hot in channel release).
    flits: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.flits = self.message.flits

    @property
    def hops(self) -> int:
        """Switch-to-switch hops (route minus injection/ejection)."""
        return len(self.route) - 2

    @property
    def at_destination(self) -> bool:
        return self.head == len(self.route) - 1

    @property
    def delivered(self) -> bool:
        return (
            self.at_destination
            and self.moves >= self.last_acquire_move + self.flits
        )


class ReferenceTorusFabric:
    """The complete interconnect: channels, arbitration, worm movement.

    Parameters
    ----------
    torus:
        Machine geometry.
    on_delivery:
        Callback invoked with each completed :class:`ReferenceWorm` when
        its tail flit has fully arrived at the destination node (the
        worm carries the message plus hop/wait accounting).
    stall_limit:
        Safety net: if no worm moves for this many consecutive cycles
        while traffic is in flight, a :class:`SimulationError` is raised
        (this would indicate a routing-deadlock bug, which the dateline
        VCs are there to prevent).
    """

    def __init__(
        self,
        torus: Torus,
        on_delivery: Callable[["ReferenceWorm"], None],
        stall_limit: int = 10000,
    ):
        self.torus = torus
        self.on_delivery = on_delivery
        self.stall_limit = stall_limit

        # Enumerate every channel: injection and ejection per node, two
        # virtual channels per directed link.
        self._channel_index: Dict[ChannelKey, int] = {}
        self._link_keys: List[Tuple[int, int, int]] = []
        link_index: Dict[Tuple[int, int, int], int] = {}
        link_of: List[int] = []
        for node in torus.nodes():
            self._channel_index[("inj", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            self._channel_index[("ej", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            for dim in range(torus.dimensions):
                for step in (1, -1):
                    link = (node, dim, step)
                    link_index[link] = len(self._link_keys)
                    self._link_keys.append(link)
                    for vc in (0, 1):
                        key = ("link", node, dim, step, vc)
                        self._channel_index[key] = len(link_of)
                        link_of.append(link_index[link])
        count = len(link_of)
        self._link_of = link_of
        self._owner: List[Optional[ReferenceWorm]] = [None] * count
        self._queues: List[Deque[ReferenceWorm]] = [
            deque() for _ in range(count)
        ]
        self._in_pending: List[bool] = [False] * count
        self._pending_keys: List[int] = []
        self._draining: List[ReferenceWorm] = []
        self._stall_cycles = 0
        self._owned_count = 0
        self._queued_count = 0
        #: Flits crossed per physical link, by link id.
        self._link_flit_counts = [0] * len(self._link_keys)
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        self.delivered_count = 0
        #: Optional per-channel instrumentation (see :mod:`..telemetry`).
        self._telemetry: Optional[FabricTelemetry] = None

    # ------------------------------------------------------------------
    # Route construction.
    # ------------------------------------------------------------------

    def build_route(self, source: int, destination: int) -> List[ChannelKey]:
        """E-cube route with dateline VC assignment, inj/ej inclusive."""
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        route: List[ChannelKey] = [("inj", source)]
        radix = self.torus.radix
        current_vc_dim = -1
        vc = 0
        for node, dim, step in self.torus.route_hops(source, destination):
            if dim != current_vc_dim:
                current_vc_dim = dim
                vc = 0
            coordinate = self.torus.coordinates(node)[dim]
            route.append(("link", node, dim, step, vc))
            # Crossing the ring's zero boundary switches to VC 1 for the
            # rest of this dimension (the dateline rule).
            wraps = (step == 1 and coordinate == radix - 1) or (
                step == -1 and coordinate == 0
            )
            if wraps:
                vc = 1
        route.append(("ej", destination))
        return route

    def _route_ids(self, source: int, destination: int) -> List[int]:
        """The channel-id route, memoized per (source, destination)."""
        pair = (source, destination)
        route = self._route_cache.get(pair)
        if route is None:
            index = self._channel_index
            route = [
                index[key] for key in self.build_route(source, destination)
            ]
            self._route_cache[pair] = route
        return route

    # ------------------------------------------------------------------
    # Injection.
    # ------------------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> None:
        """Queue a message at its source node's injection channel."""
        message.injected_at = cycle
        worm = ReferenceWorm(message=message, route=self._route_ids(
            message.source, message.destination
        ))
        self._enqueue(worm, worm.route[0])

    def inject_on_route(
        self, message: Message, route_keys: Sequence[ChannelKey], cycle: int
    ) -> None:
        """Test hook: inject on an explicit channel-key route.

        Bypasses e-cube/dateline route construction so tests can craft
        channel-dependency patterns (e.g. a circular wait) that legal
        routing can never produce.  The route must still start at an
        injection channel and end at an ejection channel.
        """
        message.injected_at = cycle
        index = self._channel_index
        worm = ReferenceWorm(
            message=message, route=[index[key] for key in route_keys]
        )
        self._enqueue(worm, worm.route[0])

    def _enqueue(self, worm: ReferenceWorm, channel: int) -> None:
        if not self._in_pending[channel]:
            self._in_pending[channel] = True
            self._pending_keys.append(channel)
        self._queues[channel].append(worm)
        self._queued_count += 1

    # ------------------------------------------------------------------
    # Per-cycle advance.
    # ------------------------------------------------------------------

    def attach_telemetry(self, config: TelemetryConfig) -> FabricTelemetry:
        """Attach per-channel instrumentation (see :mod:`..telemetry`)."""
        if self._telemetry is not None:
            raise SimulationError("telemetry already attached to this fabric")
        self._telemetry = FabricTelemetry(
            config=config,
            channels=len(self._owner),
            link_of=self._link_of,
            link_keys=self._link_keys,
            depth_probe=self._queue_depths,
            label="reference",
        )
        return self._telemetry

    def _queue_depths(self) -> List[int]:
        """Waiting worms per channel FIFO (telemetry epoch sampling)."""
        return [len(queue) for queue in self._queues]

    def tick(self, cycle: int) -> None:
        """Advance the fabric by one network cycle."""
        # Telemetry epoch roll first, so boundaries sample end-of-
        # previous-cycle state — cycle-exact with the kernel.
        telemetry = self._telemetry
        if telemetry is not None and cycle >= telemetry.epoch_end:
            telemetry.roll_to(cycle)
        progressed = False

        # Phase 1: drain worms whose heads have arrived; the destination
        # consumes one flit per cycle unconditionally, releasing tail
        # channels as they complete.
        if self._draining:
            still_draining: List[ReferenceWorm] = []
            for worm in self._draining:
                worm.moves += 1
                worm.moved_at = cycle
                self._release_completed(worm)
                progressed = True
                # Draining worms are at destination by construction, so
                # ``worm.delivered`` reduces to the tail-arrival check.
                if worm.moves >= worm.last_acquire_move + worm.flits:
                    self._finish(worm, cycle)
                else:
                    still_draining.append(worm)
            self._draining = still_draining

        # Phase 2: grant free channels to the first eligible waiter.  A
        # worm moves at most one hop per cycle (checked via moved_at).
        # _enqueue appends to self._pending_keys DURING this loop (a
        # grant feeding the worm's next channel); those entries must be
        # visited this same cycle so they land in remaining_keys — the
        # index-based loop preserves that.
        pending = self._pending_keys
        remaining_keys: List[int] = []
        owner = self._owner
        queues = self._queues
        index = 0
        while index < len(pending):
            channel = pending[index]
            index += 1
            queue = queues[channel]
            if not queue:
                self._in_pending[channel] = False
                continue
            head_worm = queue[0]
            if owner[channel] is not None or head_worm.moved_at == cycle:
                remaining_keys.append(channel)
                continue
            queue.popleft()
            self._queued_count -= 1
            self._advance(head_worm, channel, cycle)
            progressed = True
            if queue:
                remaining_keys.append(channel)
            else:
                self._in_pending[channel] = False
        self._pending_keys = remaining_keys

        # Deadlock safety net.
        in_flight = bool(
            self._owned_count or self._queued_count or self._draining
        )
        if in_flight and not progressed:
            self._stall_cycles += 1
            if self._stall_cycles >= self.stall_limit:
                raise SimulationError(
                    f"network made no progress for {self.stall_limit} cycles "
                    f"with {self._owned_count} channels held — routing "
                    "deadlock or arbitration bug"
                )
        else:
            self._stall_cycles = 0

    def _advance(self, worm: ReferenceWorm, channel: int, cycle: int) -> None:
        """Grant ``channel`` to ``worm`` and account the movement."""
        self._owner[channel] = worm
        self._owned_count += 1
        worm.head += 1
        if worm.head == 0:
            worm.source_wait = cycle - worm.message.injected_at
        worm.last_acquire_move = worm.moves
        worm.moves += 1
        worm.moved_at = cycle
        link = self._link_of[channel]
        if link >= 0:
            # The message will push exactly ``flits`` flits through this
            # physical link; account them at acquisition time (utilization
            # statistics are window averages, so the timing skew of at
            # most B cycles is negligible).
            self._link_flit_counts[link] += worm.flits
        if self._telemetry is not None:
            # Same acquisition-time convention, every channel (inj/ej
            # included) — busy flit-cycles for the telemetry epochs.
            self._telemetry.channel_flits[channel] += worm.flits
        self._release_completed(worm)
        if worm.head == len(worm.route) - 1:
            if worm.moves >= worm.last_acquire_move + worm.flits:
                self._finish(worm, cycle)  # single-flit full arrival
            else:
                self._draining.append(worm)
        else:
            self._enqueue(worm, worm.route[worm.head + 1])

    def _release_completed(self, worm: ReferenceWorm) -> None:
        """Free route channels whose ``flits`` transfers have completed.

        Channel ``i`` was acquired at movement count ``i`` (see the
        module docstring), so it completes once ``moves >= i + flits``.
        """
        while (
            worm.released <= worm.head
            and worm.moves >= worm.released + worm.flits
        ):
            channel = worm.route[worm.released]
            owner = self._owner[channel]
            self._owner[channel] = None
            self._owned_count -= 1
            if owner is not worm:
                raise SimulationError(
                    f"channel {channel} released by non-owner worm "
                    f"{worm.message.uid}"
                )
            worm.released += 1

    def _finish(self, worm: ReferenceWorm, cycle: int) -> None:
        """Release any remaining channels and deliver the message."""
        while worm.released <= worm.head:
            channel = worm.route[worm.released]
            owner = self._owner[channel]
            self._owner[channel] = None
            self._owned_count -= 1
            if owner is not worm:
                raise SimulationError(
                    f"channel {channel} held by wrong worm at delivery"
                )
            worm.released += 1
        worm.message.delivered_at = cycle
        self.delivered_count += 1
        if self._telemetry is not None:
            self._telemetry.record_delivery(
                cycle - worm.message.injected_at
            )
        self.on_delivery(worm)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        """Flits crossed per physical link (links with traffic only)."""
        keys = self._link_keys
        return {
            keys[i]: count
            for i, count in enumerate(self._link_flit_counts)
            if count
        }

    @property
    def in_flight(self) -> int:
        """Worms currently traversing or queued in the fabric."""
        worms = set()
        for queue in self._queues:
            if queue:
                worms.update(id(w) for w in queue)
        for worm in self._owner:
            if worm is not None:
                worms.add(id(worm))
        worms.update(id(w) for w in self._draining)
        return len(worms)

    def quiescent(self) -> bool:
        """True when no traffic is anywhere in the fabric."""
        return not (
            self._owned_count or self._queued_count or self._draining
        )

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Quiescence horizon: the earliest cycle a tick could do work.

        ``cycle`` while any worm is anywhere in the fabric; ``None``
        when empty (an idle tick resets a stall counter that is already
        zero, so skipping it is exact).
        """
        return None if self.quiescent() else cycle

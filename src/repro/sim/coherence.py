"""Full-map invalidate directory cache coherence.

This is the simulator's stand-in for Alewife's LimitLESS protocol
(Section 3.1).  Every cache line has a *home* node (where its backing
memory lives — data is allocated with the thread that owns it, so the
thread-to-processor mapping determines homes).  The home's directory
tracks a full sharer set, serializing transactions per block.

For the paper's synthetic application the protocol produces exactly the
transaction structure the paper reports: a remote read of a
neighbor's state word costs a request + data reply (2 messages), and the
owner's subsequent write costs an invalidate + ack per remote sharer
(2 x 4 messages for 4 torus neighbors), giving 16 messages per 5
transactions — the paper's ``g = 3.2``.

The controller models Alewife's single CMMU: one engine per node
processes protocol events (requests, receives, sends, memory accesses)
serially, each with a configurable occupancy.  This serialization is what
makes fixed transaction overhead grow with the number of contexts
issuing, the effect the analytic calibration captures as ``T_f ~ p``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.sim.config import SimulationConfig
from repro.sim.message import Message, MessageKind

__all__ = [
    "CacheState",
    "DirectoryState",
    "Block",
    "CoherenceController",
]

Block = Tuple[int, int]  # (application instance, owning thread)
CompletionCallback = Callable[[int], None]  # called with completion cycle


class CacheState(enum.Enum):
    """Per-line cache state (MSI)."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"


class DirectoryState(enum.Enum):
    """Home-directory state for one block."""

    UNOWNED = "unowned"
    SHARED = "shared"
    MODIFIED = "modified"


@dataclass
class _DirectoryEntry:
    state: DirectoryState = DirectoryState.UNOWNED
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    #: A transaction is in progress; further requests for this block wait.
    busy: bool = False
    #: Deferred work to re-run when the block unbusies.
    deferred: Deque[Callable[[int], None]] = field(default_factory=deque)


@dataclass
class _HomeTransaction:
    """Home-side state for a multi-message transaction."""

    block: Block
    requester: int
    is_write: bool
    transaction_uid: int
    pending_acks: int = 0
    awaiting_writeback: bool = False


@dataclass
class _LocalRequest:
    """Requester-side record of an outstanding miss.

    ``waiters`` holds accesses from *other contexts of the same node*
    that coalesced onto this miss (MSHR-style): each waits for the same
    line fill and completes with it — unless it is a write and the fill
    only granted Shared, in which case it re-issues as an upgrade.
    """

    block: Block
    is_write: bool
    issued_at: int
    callback: CompletionCallback
    uid: int
    messages: int = 0
    waiters: List[Tuple[bool, int, CompletionCallback]] = field(
        default_factory=list
    )


class CoherenceController:
    """One node's cache + directory + protocol engine.

    Parameters
    ----------
    node:
        This controller's node id.
    config:
        Timing parameters (all ``*_cycles`` fields are processor cycles
        and converted to network cycles here).
    home_of:
        Maps a block to its home node.
    send:
        Injects a :class:`Message` into the fabric (called at the cycle
        the send completes its controller occupancy).
    stats:
        Recording hooks; must provide ``transaction_started``,
        ``transaction_completed``, ``local_transaction`` and
        ``message_sent`` methods (see :mod:`repro.sim.stats`).
    """

    def __init__(
        self,
        node: int,
        config: SimulationConfig,
        home_of: Callable[[Block], int],
        send: Callable[[Message], None],
        stats,
        wake: Optional[Callable[["CoherenceController"], None]] = None,
    ):
        self.node = node
        self.config = config
        self.home_of = home_of
        self._send_to_fabric = send
        self.stats = stats
        #: Called (with this controller) when work arrives while the
        #: engine is idle, so a driver that skips idle engines knows to
        #: tick this one.  ``None`` means the driver ticks every cycle.
        self._wake = wake
        self._notified = False
        self._ticking = False

        self.cache: Dict[Block, CacheState] = {}
        self.directory: Dict[Block, _DirectoryEntry] = {}

        # Serial protocol engine.
        self._engine_queue: Deque[Tuple[int, Callable[[int], None]]] = deque()
        self._engine_done_at: Optional[int] = None
        self._engine_thunk: Optional[Callable[[int], None]] = None

        # Outstanding requester-side transactions, keyed by block.
        self._outstanding: Dict[Block, _LocalRequest] = {}
        # Home-side transactions in progress, keyed by block.
        self._home_transactions: Dict[Block, _HomeTransaction] = {}

        self._next_uid = node  # node-unique spacing avoids global counter
        self._uid_stride = 1 << 20

        # Engine occupancies in network cycles, precomputed (the clock
        # conversion is pure and these are read on every protocol event).
        self._request_cost = self._cost(config.request_cycles)
        self._receive_cost = self._cost(config.receive_cycles)
        self._send_cost = self._cost(config.send_cycles)
        self._memory_cost = self._cost(config.memory_cycles)

    # ------------------------------------------------------------------
    # Engine: serialized event processing with occupancy.
    # ------------------------------------------------------------------

    def _cost(self, processor_cycles: int) -> int:
        return self.config.to_network(processor_cycles)

    def _schedule(self, cost_network: int, thunk: Callable[[int], None]) -> None:
        self._engine_queue.append((cost_network, thunk))
        # Wake the driver only on an idle-to-busy transition: a waiting
        # engine is already on the driver's wake calendar, and work
        # scheduled mid-tick is drained by the tick loop itself.
        if (
            self._wake is not None
            and self._engine_thunk is None
            and not self._ticking
            and not self._notified
        ):
            self._notified = True
            self._wake(self)

    def tick(self, cycle: int) -> None:
        """Run the protocol engine for one network cycle."""
        self._ticking = True
        while True:
            if self._engine_thunk is not None:
                if self._engine_done_at > cycle:
                    break
                thunk = self._engine_thunk
                self._engine_thunk = None
                thunk(self._engine_done_at)
                continue
            if not self._engine_queue:
                break
            cost, thunk = self._engine_queue.popleft()
            if cost == 0:
                thunk(cycle)
                continue
            self._engine_done_at = cycle + cost
            self._engine_thunk = thunk
        self._ticking = False

    @property
    def idle(self) -> bool:
        """No queued or in-progress protocol work."""
        return self._engine_thunk is None and not self._engine_queue

    # ------------------------------------------------------------------
    # Processor-facing API.
    # ------------------------------------------------------------------

    def cache_state(self, block: Block) -> CacheState:
        """Current cache state; absent lines are INVALID.

        The ``cache`` dict holds only S/M lines (in LRU order: least
        recently used first); invalidation and eviction remove entries.
        """
        return self.cache.get(block, CacheState.INVALID)

    def is_hit(self, block: Block, is_write: bool) -> bool:
        """Whether an access completes without a coherence transaction."""
        state = self.cache_state(block)
        if is_write:
            return state is CacheState.MODIFIED
        return state in (CacheState.SHARED, CacheState.MODIFIED)

    def record_access(self, block: Block) -> None:
        """LRU bookkeeping for a cache hit (processor fast path)."""
        state = self.cache.pop(block, None)
        if state is not None:
            self.cache[block] = state

    # ------------------------------------------------------------------
    # Cache installation and capacity eviction.
    # ------------------------------------------------------------------

    def _install(self, block: Block, state: CacheState) -> None:
        """Install or update a line, evicting LRU lines if over capacity."""
        self.cache.pop(block, None)
        self.cache[block] = state
        capacity = self.config.cache_lines
        if capacity <= 0:
            return
        while len(self.cache) > capacity:
            victim = self._pick_victim(exclude=block)
            if victim is None:
                return  # everything else is mid-transaction; overflow
            self._evict(victim)

    def _pick_victim(self, exclude: Block):
        """Least-recently-used line that is safe to evict."""
        for candidate in self.cache:
            if candidate == exclude or candidate in self._outstanding:
                continue
            return candidate
        return None

    def _evict(self, block: Block) -> None:
        """Drop a line: silently for S, with a writeback home for M."""
        state = self.cache.pop(block)
        self.stats.cache_eviction(self.node)
        if state is not CacheState.MODIFIED:
            # Clean lines leave silently; the home's stale sharer bit is
            # harmless (a later invalidate to a non-holder is just acked).
            return
        home = self.home_of(block)
        if home == self.node:
            # Update the directory synchronously (a delayed update could
            # race with a remote request observing the popped cache), and
            # charge the memory write as plain occupancy.
            self._home_eviction_writeback(block, self.node, cycle=0)
            self._schedule(self._memory_cost, lambda done: None)
        else:
            self._emit(MessageKind.WRITEBACK, home, block, transaction=-1)

    def request(
        self,
        block: Block,
        is_write: bool,
        cycle: int,
        callback: CompletionCallback,
    ) -> None:
        """Start a coherence transaction for a cache miss.

        ``callback`` fires (with the completion cycle) once the access
        is globally performed and the line is in the requester's cache.
        """
        existing = self._outstanding.get(block)
        if existing is not None:
            # Another context of this node already misses on the block:
            # coalesce onto its fill.  One network transaction serves
            # both, so the waiter stays invisible to transaction
            # statistics (its stall shows up as processor idle time).
            existing.waiters.append((is_write, cycle, callback))
            return
        uid = self._next_uid
        self._next_uid += self._uid_stride
        record = _LocalRequest(
            block=block, is_write=is_write, issued_at=cycle,
            callback=callback, uid=uid,
        )
        self._outstanding[block] = record
        self.stats.transaction_started(self.node, cycle)
        self._schedule(
            self._request_cost,
            lambda done, r=record: self._begin_transaction(r, done),
        )

    def _begin_transaction(self, record: _LocalRequest, cycle: int) -> None:
        home = self.home_of(record.block)
        if home == self.node:
            self._home_handle_request(
                record.block, self.node, record.is_write, record.uid, cycle
            )
        else:
            kind = (
                MessageKind.WRITE_REQUEST
                if record.is_write
                else MessageKind.READ_REQUEST
            )
            self._emit(kind, home, record.block, record.uid)

    # ------------------------------------------------------------------
    # Fabric-facing API.
    # ------------------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Accept a message from the fabric (handling is queued)."""
        cost = self._receive_cost
        self._schedule(cost, lambda done, m=message: self._handle(m, done))

    def _emit(
        self,
        kind: MessageKind,
        destination: int,
        block: Block,
        transaction: int,
        on_launch: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue the send-side occupancy, then inject into the fabric.

        ``on_launch`` fires right after the message enters the fabric —
        used to release a directory entry exactly when its data reply's
        ordering with later messages to the same node is pinned down.
        """
        message = Message(
            kind=kind, source=self.node, destination=destination,
            block=block, transaction=transaction,
        )

        def launch(done: int, m: Message = message) -> None:
            self._launch(m, done)
            if on_launch is not None:
                on_launch()

        self._schedule(self._send_cost, launch)

    def _launch(self, message: Message, cycle: int) -> None:
        record = self._outstanding.get(message.block)
        if record is not None and record.uid == message.transaction:
            record.messages += 1
        self.stats.message_sent(self.node, message, cycle)
        self._send_to_fabric(message)

    # ------------------------------------------------------------------
    # Message handlers.
    # ------------------------------------------------------------------

    def _handle(self, message: Message, cycle: int) -> None:
        kind = message.kind
        if kind is MessageKind.READ_REQUEST:
            self._home_handle_request(
                message.block, message.source, False, message.transaction, cycle
            )
        elif kind is MessageKind.WRITE_REQUEST:
            self._home_handle_request(
                message.block, message.source, True, message.transaction, cycle
            )
        elif kind is MessageKind.DATA_REPLY:
            self._complete_remote_miss(message, cycle)
        elif kind is MessageKind.INVALIDATE:
            self._handle_invalidate(message, cycle)
        elif kind is MessageKind.INVALIDATE_ACK:
            self._home_handle_ack(message, cycle)
        elif kind is MessageKind.FETCH:
            self._handle_fetch(message, cycle, invalidate=False)
        elif kind is MessageKind.FETCH_INVALIDATE:
            self._handle_fetch(message, cycle, invalidate=True)
        elif kind is MessageKind.WRITEBACK:
            self._home_handle_writeback(message, cycle)
        else:  # pragma: no cover - exhaustive over MessageKind
            raise ProtocolError(f"unhandled message kind {kind!r}")

    # --- home side ------------------------------------------------------

    def _entry(self, block: Block) -> _DirectoryEntry:
        entry = self.directory.get(block)
        if entry is None:
            entry = _DirectoryEntry()
            self.directory[block] = entry
        return entry

    def _home_handle_request(
        self, block: Block, requester: int, is_write: bool,
        transaction: int, cycle: int,
    ) -> None:
        if self.home_of(block) != self.node:
            raise ProtocolError(
                f"node {self.node} received a request for block {block} "
                f"homed at {self.home_of(block)}"
            )
        entry = self._entry(block)
        if entry.busy:
            entry.deferred.append(
                lambda done: self._home_handle_request(
                    block, requester, is_write, transaction, done
                )
            )
            return
        if is_write:
            self._home_write(block, entry, requester, transaction, cycle)
        else:
            self._home_read(block, entry, requester, transaction, cycle)

    def _home_read(
        self, block: Block, entry: _DirectoryEntry, requester: int,
        transaction: int, cycle: int,
    ) -> None:
        if entry.state is DirectoryState.MODIFIED and entry.owner != requester:
            if entry.owner == self.node:
                # The home itself holds the line modified (the common case
                # for the synthetic application): downgrade locally and
                # reply; memory is updated as part of the reply path.
                self._install(block, CacheState.SHARED)
                entry.state = DirectoryState.SHARED
                entry.sharers = {self.node, requester}
                entry.owner = None
                self._reply_with_data(block, requester, transaction)
                return
            # Remote owner: fetch the line back first.
            entry.busy = True
            self._home_transactions[block] = _HomeTransaction(
                block=block, requester=requester, is_write=False,
                transaction_uid=transaction, awaiting_writeback=True,
            )
            self._emit(MessageKind.FETCH, entry.owner, block, transaction)
            return
        # UNOWNED, SHARED, or re-read by the modified owner (treated as
        # a self-downgrade).
        if entry.state is DirectoryState.MODIFIED:
            entry.sharers = {entry.owner}
            entry.owner = None
        entry.state = DirectoryState.SHARED
        entry.sharers.add(requester)
        self._reply_with_data(block, requester, transaction)

    def _home_write(
        self, block: Block, entry: _DirectoryEntry, requester: int,
        transaction: int, cycle: int,
    ) -> None:
        if entry.state is DirectoryState.MODIFIED and entry.owner != requester:
            if entry.owner == self.node:
                # Home holds it modified; invalidate own copy, hand over.
                self.cache.pop(block, None)
                entry.owner = requester
                self._reply_with_data(block, requester, transaction)
                return
            entry.busy = True
            self._home_transactions[block] = _HomeTransaction(
                block=block, requester=requester, is_write=True,
                transaction_uid=transaction, awaiting_writeback=True,
            )
            self._emit(MessageKind.FETCH_INVALIDATE, entry.owner, block, transaction)
            return
        remote_sharers = {
            s for s in entry.sharers if s not in (requester,)
        }
        local_share = self.node in remote_sharers
        if local_share:
            # Home's own cached copy invalidates without a message.
            self.cache.pop(block, None)
            remote_sharers.discard(self.node)
        if remote_sharers:
            entry.busy = True
            home_txn = _HomeTransaction(
                block=block, requester=requester, is_write=True,
                transaction_uid=transaction, pending_acks=len(remote_sharers),
            )
            self._home_transactions[block] = home_txn
            for sharer in remote_sharers:
                self._emit(MessageKind.INVALIDATE, sharer, block, transaction)
            return
        self._grant_write(block, entry, requester, transaction)

    def _grant_write(
        self, block: Block, entry: _DirectoryEntry, requester: int,
        transaction: int,
    ) -> None:
        entry.state = DirectoryState.MODIFIED
        entry.sharers = set()
        entry.owner = requester
        self._reply_with_data(block, requester, transaction)

    def _reply_with_data(
        self, block: Block, requester: int, transaction: int
    ) -> None:
        """Memory access, then data to the requester (or local finish).

        The directory is updated synchronously by the caller, but the
        transaction is only *ordered* once its effect lands: for a local
        requester when :meth:`_finish_local` updates the cache, for a
        remote requester when the data reply enters the fabric (from then
        on, per-pair FIFO delivery guarantees any later invalidate or
        fetch arrives after the data).  The entry stays busy until that
        point so no interleaved engine event can act on the half-done
        state — e.g. a write must not launch invalidates that would
        overtake a still-queued data reply.
        """
        entry = self._entry(block)
        entry.busy = True
        if requester == self.node:
            self._schedule(
                self._memory_cost,
                lambda done: self._finish_local(block, done),
            )
        else:
            def unbusy(b: Block = block) -> None:
                released = self._entry(b)
                released.busy = False
                self._run_deferred(released)

            self._schedule(
                self._memory_cost,
                lambda done: self._emit(
                    MessageKind.DATA_REPLY, requester, block, transaction,
                    on_launch=unbusy,
                ),
            )

    def _home_handle_ack(self, message: Message, cycle: int) -> None:
        home_txn = self._home_transactions.get(message.block)
        if home_txn is None or home_txn.pending_acks <= 0:
            raise ProtocolError(
                f"unexpected invalidate ack for block {message.block} at "
                f"node {self.node}"
            )
        home_txn.pending_acks -= 1
        if home_txn.pending_acks > 0:
            return
        entry = self._entry(message.block)
        del self._home_transactions[message.block]
        entry.busy = False
        self._grant_write(
            message.block, entry, home_txn.requester, home_txn.transaction_uid
        )
        self._run_deferred(entry)

    def _home_handle_writeback(self, message: Message, cycle: int) -> None:
        """A modified line returned home: fetch response or eviction.

        Eviction writebacks carry ``transaction == -1``; when one arrives
        while a fetch for the same block is pending, it *is* the data the
        fetch was after (the owner's copy is gone, but channels between a
        node pair are FIFO, so the home's fetch will be silently ignored
        at the evictor) — the pending transaction completes from it, with
        the evictor excluded from the new sharer set.
        """
        self._absorb_writeback(
            message.block,
            message.source,
            source_retains=message.transaction != -1,
        )

    def _home_eviction_writeback(
        self, block: Block, source: int, cycle: int
    ) -> None:
        """A local (home-resident) modified line was evicted."""
        self._absorb_writeback(block, source, source_retains=False)

    def _absorb_writeback(
        self, block: Block, source: int, source_retains: bool
    ) -> None:
        home_txn = self._home_transactions.get(block)
        entry = self._entry(block)
        if home_txn is not None and home_txn.awaiting_writeback:
            del self._home_transactions[block]
            entry.busy = False
            if home_txn.is_write:
                entry.state = DirectoryState.MODIFIED
                entry.sharers = set()
                entry.owner = home_txn.requester
            else:
                entry.state = DirectoryState.SHARED
                entry.sharers = {home_txn.requester}
                if source_retains:
                    entry.sharers.add(source)
                entry.owner = None
            self._reply_with_data(block, home_txn.requester, home_txn.transaction_uid)
            self._run_deferred(entry)
            return
        if home_txn is not None:
            raise ProtocolError(
                f"writeback for block {block} at node {self.node} collided "
                "with a non-fetch transaction"
            )
        # Plain eviction: the owner gave the line up with nobody waiting.
        if entry.state is not DirectoryState.MODIFIED or entry.owner != source:
            raise ProtocolError(
                f"eviction writeback for block {block} from node {source} "
                f"but directory says {entry.state.value}/owner={entry.owner}"
            )
        entry.state = DirectoryState.UNOWNED
        entry.sharers = set()
        entry.owner = None
        self._run_deferred(entry)

    def _run_deferred(self, entry: _DirectoryEntry) -> None:
        """Release the next deferred request for an unbusied block.

        One waiter runs per release (it may re-busy the line); after it
        executes, the chain continues so a run of reads drains fully.
        """
        if not entry.deferred or entry.busy:
            return
        thunk = entry.deferred.popleft()

        def run_and_continue(done: int) -> None:
            thunk(done)
            self._run_deferred(entry)

        # Re-dispatch through the engine so deferred work pays a (small)
        # occupancy rather than running instantaneously.
        self._schedule(self._request_cost, run_and_continue)

    # --- remote sharer / owner side --------------------------------------

    def _handle_invalidate(self, message: Message, cycle: int) -> None:
        # Absent lines (already evicted) are acked all the same; the
        # directory's sharer set may run stale after silent S evictions.
        self.cache.pop(message.block, None)
        self._emit(
            MessageKind.INVALIDATE_ACK, message.source, message.block,
            message.transaction,
        )

    def _handle_fetch(
        self, message: Message, cycle: int, invalidate: bool
    ) -> None:
        state = self.cache_state(message.block)
        if state is CacheState.INVALID:
            # Eviction race: our modified copy was evicted and its
            # writeback is already in flight to the home (channels
            # between a node pair are FIFO, so the home will see it and
            # satisfy the transaction this fetch serves).  Ignore.
            return
        if state is not CacheState.MODIFIED:
            raise ProtocolError(
                f"fetch at node {self.node} for block {message.block} in "
                f"state {state.value} (expected M or evicted)"
            )
        if invalidate:
            self.cache.pop(message.block, None)
        else:
            self._install(message.block, CacheState.SHARED)
        self._emit(
            MessageKind.WRITEBACK, message.source, message.block,
            message.transaction,
        )

    # --- requester completion --------------------------------------------

    def _complete_remote_miss(self, message: Message, cycle: int) -> None:
        record = self._outstanding.pop(message.block, None)
        if record is None:
            raise ProtocolError(
                f"data reply for block {message.block} with no outstanding "
                f"request at node {self.node}"
            )
        state = (
            CacheState.MODIFIED if record.is_write else CacheState.SHARED
        )
        self._install(message.block, state)
        self.stats.transaction_completed(
            self.node, record.issued_at, cycle, remote=True
        )
        record.callback(cycle)
        self._release_waiters(record, state, cycle, remote=True)

    def _finish_local(self, block: Block, cycle: int) -> None:
        record = self._outstanding.pop(block, None)
        if record is None:
            raise ProtocolError(
                f"local completion for block {block} with no outstanding "
                f"request at node {self.node}"
            )
        state = (
            CacheState.MODIFIED if record.is_write else CacheState.SHARED
        )
        self._install(block, state)
        entry = self._entry(block)
        entry.busy = False
        remote = record.messages > 0
        self.stats.transaction_completed(
            self.node, record.issued_at, cycle, remote=remote,
        )
        record.callback(cycle)
        self._run_deferred(entry)
        self._release_waiters(record, state, cycle, remote=remote)

    def _release_waiters(
        self, record: _LocalRequest, state: CacheState, cycle: int,
        remote: bool,
    ) -> None:
        """Complete coalesced accesses once the primary miss fills.

        Reads complete with the fill; a write waiter whose fill only
        granted Shared re-issues as an upgrade transaction (and further
        write waiters coalesce onto *that*, preserving one-outstanding-
        transaction-per-block).
        """
        for is_write, issued_at, callback in record.waiters:
            if is_write and state is not CacheState.MODIFIED:
                self.request(record.block, True, cycle, callback)
                continue
            callback(cycle)

"""Whole-machine assembly and the simulation run loop.

A :class:`Machine` wires together the torus fabric, one coherence
controller and one multithreaded processor per node, and the workload's
thread programs placed according to a thread-to-processor mapping.  Data
is allocated with its owning thread (Section 3.2's "single word of state
in local memory"), so the mapping simultaneously determines thread
placement and cache-line homes — changing the mapping is exactly how the
paper sweeps average communication distance.

The machine advances in network cycles; processors tick on every
``network_speedup``-th cycle.  A run consists of a warmup window (caches
fill, the protocol reaches steady state) followed by a measurement
window, after which :meth:`Machine.run` returns the
:class:`~repro.sim.stats.MeasurementSummary`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.mapping.base import Mapping
from repro.sim.coherence import Block, CoherenceController
from repro.sim.config import SimulationConfig
from repro.sim.cut_through import CutThroughFabric
from repro.sim.engine import MachineEngine, engine_enabled_default
from repro.sim.message import Message
from repro.sim.network import TorusFabric
from repro.sim.processor import Processor
from repro.sim.stats import MachineStats, MeasurementSummary
from repro.topology.torus import Torus
from repro.workload.base import ThreadProgram

__all__ = ["Machine", "place_programs"]


def _controller_node(controller: CoherenceController) -> int:
    return controller.node


def place_programs(
    config: SimulationConfig,
    mapping: Mapping,
    programs: Sequence[Sequence[ThreadProgram]],
    node_count: int,
) -> tuple:
    """Validate a (mapping, programs) combination and place threads.

    Shared by :class:`Machine` and the batched replication engine
    (:mod:`repro.sim.batch`), so both accept exactly the same two modes
    (replicated instances vs collocation) with the same error messages.
    Returns ``(collocated, programs_at)`` where ``programs_at[node]`` is
    the per-context program list for that node.
    """
    if mapping.processors != node_count:
        raise SimulationError(
            f"mapping targets {mapping.processors} processors; machine "
            f"has {node_count}"
        )
    if mapping.threads == node_count:
        mapping.require_bijective()
        collocated = False
        if len(programs) != config.contexts:
            raise SimulationError(
                f"{len(programs)} program instances for "
                f"{config.contexts} contexts"
            )
    elif mapping.threads == node_count * config.contexts:
        collocated = True
        if len(programs) != 1:
            raise SimulationError(
                "collocation mode runs a single application instance; "
                f"got {len(programs)} program instances"
            )
        load = mapping.load()
        if len(load) != node_count or any(
            count != config.contexts for count in load.values()
        ):
            raise SimulationError(
                f"collocation mode needs exactly {config.contexts} "
                "threads on every node"
            )
    else:
        raise SimulationError(
            f"mapping covers {mapping.threads} threads; expected "
            f"{node_count} (replicated instances) or "
            f"{node_count * config.contexts} (collocation)"
        )
    for instance in programs:
        if len(instance) != mapping.threads:
            raise SimulationError(
                "every instance must provide one program per thread"
            )
    if collocated:
        programs_at = {
            node: [programs[0][t] for t in mapping.threads_on(node)]
            for node in range(node_count)
        }
    else:
        # Bijective mapping: exactly one thread per node.
        thread_at = {p: t for t, p in mapping.items()}
        programs_at = {
            node: [
                programs[instance][thread_at[node]]
                for instance in range(config.contexts)
            ]
            for node in range(node_count)
        }
    return collocated, programs_at


class Machine:
    """A complete simulated multiprocessor.

    Parameters
    ----------
    config:
        Machine/protocol/measurement parameters.
    mapping:
        Thread-to-processor assignment.  Two modes are supported:

        * **replicated instances** (the paper's arrangement): the mapping
          is a bijection over the machine's nodes and ``programs`` holds
          one application instance per hardware context — each node runs
          the same-numbered thread of every instance;
        * **collocation**: the mapping places ``nodes * contexts``
          threads of a *single* instance, exactly ``contexts`` per node —
          the only locality lever a UCL machine has (Section 1.1), and
          available to NUCL machines on top of placement.
    programs:
        ``programs[instance][thread]`` — one
        :class:`~repro.workload.base.ThreadProgram` per (instance,
        thread).  ``len(programs)`` must be ``config.contexts`` in
        replicated-instance mode and 1 in collocation mode.
    fabric_factory:
        Optional override for the network fabric, called as
        ``fabric_factory(torus, on_delivery=...)``.  Used by the parity
        suite and fixture generator to run the machine on
        :class:`repro.sim.reference.ReferenceTorusFabric`; when omitted
        the config's ``switching`` picks the production fabric.
    engine:
        Whether :meth:`run` uses the event-calendar engine
        (:mod:`repro.sim.engine`) instead of stepping every cycle.
        Defaults to on; ``REPRO_SIM_ENGINE=0`` flips the default.  The
        two paths are bit-identical (pinned by the parity suite) — the
        engine is purely a performance feature.
    """

    def __init__(
        self,
        config: SimulationConfig,
        mapping: Mapping,
        programs: Sequence[Sequence[ThreadProgram]],
        fabric_factory: Optional[Callable] = None,
        engine: Optional[bool] = None,
    ):
        self.config = config
        self.torus = Torus(radix=config.radix, dimensions=config.dimensions)
        self._collocated, programs_at = place_programs(
            config, mapping, programs, self.torus.node_count
        )
        self.mapping = mapping
        self.stats = MachineStats(nodes=self.torus.node_count)
        if fabric_factory is not None:
            self.fabric = fabric_factory(self.torus, on_delivery=self._deliver)
        elif config.switching == "wormhole":
            self.fabric = TorusFabric(self.torus, on_delivery=self._deliver)
        else:
            self.fabric = CutThroughFabric(self.torus, on_delivery=self._deliver)
        self._cycle = 0
        self.tracer = None
        self.telemetry = None
        self.engine_enabled = (
            engine_enabled_default() if engine is None else bool(engine)
        )

        # Event-driven engine scheduling: controllers whose engine went
        # from idle to busy this cycle land on ``_engine_ready`` (via the
        # wake callback — the list object's identity must be preserved),
        # and engines mid-occupancy are parked on the ``_engine_wake``
        # calendar keyed by their done-cycle, so ``step`` only ticks
        # controllers that actually have something to do.
        self._engine_ready: List[CoherenceController] = []
        self._engine_wake: Dict[int, List[CoherenceController]] = {}
        self.controllers: List[CoherenceController] = [
            CoherenceController(
                node=node,
                config=config,
                home_of=self._home_of,
                send=self._inject,
                stats=self.stats,
                wake=self._engine_ready.append,
            )
            for node in self.torus.nodes()
        ]
        self.processors: List[Processor] = []
        # One child sequence per node from the documented root seed;
        # processors receive their stream rather than deriving ad-hoc
        # seeds, and ``rng_info`` records the scheme for run manifests.
        self.seed_sequence = np.random.SeedSequence(config.seed)
        node_seeds = self.seed_sequence.spawn(self.torus.node_count)
        for node in self.torus.nodes():
            node_programs = programs_at[node]
            self.processors.append(
                Processor(
                    node=node,
                    config=config,
                    controller=self.controllers[node],
                    programs=node_programs,
                    stats=self.stats,
                    seed_seq=node_seeds[node],
                )
            )

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    @property
    def rng_info(self) -> Dict[str, object]:
        """RNG provenance for run manifests: one root seed, spawned streams."""
        return {
            "root_seed": self.config.seed,
            "scheme": "numpy.random.SeedSequence(root_seed).spawn(nodes)",
            "streams": self.torus.node_count,
        }

    def _home_of(self, block: Block) -> int:
        """Blocks live with their owning thread."""
        _, thread = block
        return self.mapping.processor_of(thread)

    def _inject(self, message: Message) -> None:
        if message.destination == message.source:
            raise SimulationError(
                f"self-addressed message from node {message.source}; local "
                "transactions must complete without the network"
            )
        self.fabric.inject(message, self._cycle)

    def _deliver(self, transit) -> None:
        """Fabric delivery callback (Worm or Transit: same interface)."""
        message = transit.message
        self.stats.message_delivered(
            message, transit.hops, transit.source_wait, self._cycle
        )
        self.controllers[message.destination].deliver(message)

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Route all stats events and periodic samples to ``tracer``."""
        self.tracer = tracer
        self.stats.listener = tracer

    def attach_telemetry(self, config) -> object:
        """Attach per-channel fabric telemetry (see :mod:`.telemetry`).

        Must be called before :meth:`run`; the resulting snapshot rides
        on the returned summary's ``telemetry`` attribute.  Raises for
        fabrics that don't support instrumentation.
        """
        attach = getattr(self.fabric, "attach_telemetry", None)
        if attach is None:
            raise SimulationError(
                f"fabric {type(self.fabric).__name__} does not support "
                "telemetry"
            )
        self.telemetry = attach(config)
        return self.telemetry

    def step(self) -> None:
        """Advance the machine one network cycle (the per-cycle path).

        Retained unchanged in behavior as the event-calendar engine's
        parity oracle; idle accounting lives in ``Processor.tick`` (its
        own fast path), the single source of truth both drivers share.
        """
        cycle = self._cycle
        if cycle % self.config.network_speedup == 0:
            for processor in self.processors:
                processor.tick(cycle)
        self._tick_controllers(cycle)
        self.fabric.tick(cycle)
        if self.tracer is not None:
            self.tracer.on_cycle(self, cycle)
        self._cycle += 1

    def _tick_controllers(self, cycle: int) -> None:
        """Tick exactly the controllers with runnable engine work.

        That is: those woken by new work this cycle plus those whose
        occupancy ends now.  Node order is semantics — it fixes the
        order messages from different nodes enter the fabric within a
        cycle — so the batch is sorted before running.  Shared by
        :meth:`step` and the event-calendar engine.
        """
        due = self._engine_wake.pop(cycle, None)
        ready = self._engine_ready
        if ready:
            batch = ready[:] if due is None else due + ready
            ready.clear()  # keep list identity: controllers hold .append
        else:
            batch = due
        if batch is not None:
            if len(batch) > 1:
                batch.sort(key=_controller_node)
            wake = self._engine_wake
            for controller in batch:
                controller._notified = False
                controller.tick(cycle)
                if controller._engine_thunk is not None:
                    done = controller._engine_done_at
                    slot = wake.get(done)
                    if slot is None:
                        wake[done] = [controller]
                    else:
                        slot.append(controller)

    def run(
        self,
        warmup: Optional[int] = None,
        measure: Optional[int] = None,
    ) -> MeasurementSummary:
        """Warm up, measure, and summarize.

        ``warmup`` / ``measure`` override the config's windows (network
        cycles).  Idle/switch counters are sampled around the window so
        processor-level fractions are window-accurate.
        """
        warmup = self.config.warmup_network_cycles if warmup is None else warmup
        measure = (
            self.config.measure_network_cycles if measure is None else measure
        )
        # One engine serves both windows; it leaves processor state
        # flushed to the last boundary after each window, so the
        # between-window counter sampling below reads exactly what the
        # per-cycle loop would have left.
        engine = MachineEngine(self) if self.engine_enabled else None
        # The run loop is the simulator's hottest path, so the
        # instrumentation wraps the warmup/measurement windows rather
        # than individual steps; cycle totals land on a registry counter.
        with obs.span(
            "sim.run",
            warmup=warmup,
            measure=measure,
            nodes=self.torus.node_count,
        ):
            with obs.span("sim.warmup", cycles=warmup):
                if engine is not None:
                    engine.run_window(warmup)
                else:
                    for _ in range(warmup):
                        self.step()

            idle_before = [p.idle_cycles for p in self.processors]
            switches_before = sum(p.switch_count for p in self.processors)
            self.stats.start_measuring(self._cycle, self.fabric.link_flits)

            with obs.span("sim.measure", cycles=measure):
                if engine is not None:
                    engine.run_window(measure)
                else:
                    for _ in range(measure):
                        self.step()

            self.stats.stop_measuring(self._cycle)
        if engine is not None:
            # Detach the wake hooks so later step() calls (or a fresh
            # engine on the next run) don't feed this engine's calendar.
            for processor in self.processors:
                processor._wake_listener = None
        if self.telemetry is not None:
            self.telemetry.finalize(self._cycle)
        if obs.is_enabled():
            obs.REGISTRY.counter(
                "sim.cycles", help="network cycles stepped by Machine.run"
            ).inc(warmup + measure)
        self.stats.idle_cycles = sum(
            p.idle_cycles - before
            for p, before in zip(self.processors, idle_before)
        )
        self.stats.switches = (
            sum(p.switch_count for p in self.processors) - switches_before
        )
        return self.summary()

    def summary(self) -> MeasurementSummary:
        """Reduce the measured window to model-facing quantities."""
        physical_links = self.torus.node_count * 2 * self.torus.dimensions
        summary = self.stats.summary(
            link_flits=self.fabric.link_flits,
            physical_links=physical_links,
            network_speedup=self.config.network_speedup,
        )
        if self.telemetry is not None and self.telemetry.finalized:
            summary.telemetry = self.telemetry.snapshot()
        return summary

    @property
    def cycle(self) -> int:
        """Current network-cycle count."""
        return self._cycle

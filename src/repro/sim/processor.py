"""Block-multithreaded processor model (Sparcle-like).

Each processor has ``p`` hardware contexts, each running one application
thread.  A context computes for its program-determined run length, then
performs a memory access; cache hits cost one (configurable) cycle and
execution continues, while misses hand the access to the coherence
controller and block the context.  On a miss, the processor switches to
another runnable context if one exists, paying the ``T_s``-cycle context
switch; with no runnable context it idles until a transaction completes
(resuming the same context is free, matching the paper's single-context
model where ``t_t = T_r + T_t`` has no switch term).

The processor ticks once per *processor* cycle; the machine driver calls
:meth:`tick` only on processor-cycle boundaries of the network clock.

**RNG streams.**  Every per-node stream derives from one documented root
seed via ``numpy.random.SeedSequence(root_seed).spawn(...)`` — the
machine spawns one child sequence per node and hands it to that node's
processor, so a replication's entire stream family is reproducible from
(and recorded as) the root seed alone.  A standalone processor without a
machine derives the identical stream from
``SeedSequence(config.seed, spawn_key=(node,))``, which is by
construction the same child ``spawn`` would have produced.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.coherence import CoherenceController
from repro.sim.config import SimulationConfig
from repro.workload.base import ThreadProgram

__all__ = ["ContextState", "HardwareContext", "Processor"]


class ContextState(enum.Enum):
    """Lifecycle of one hardware context (see HardwareContext)."""

    COMPUTING = "computing"
    BLOCKED = "blocked"      # waiting for a coherence transaction
    READY = "ready"          # transaction done, waiting for the processor


@dataclass(slots=True)
class HardwareContext:
    """One hardware context and the thread it runs.

    ``READY`` means runnable but not currently executing (fresh contexts
    start READY; blocked contexts return to READY when their transaction
    completes); exactly one context at a time is ``COMPUTING``.
    """

    index: int
    program: ThreadProgram
    state: ContextState = ContextState.READY
    remaining_cycles: int = 0


class Processor:
    """A ``p``-context processor attached to one coherence controller."""

    def __init__(
        self,
        node: int,
        config: SimulationConfig,
        controller: CoherenceController,
        programs: List[ThreadProgram],
        stats,
        seed_seq: Optional[np.random.SeedSequence] = None,
    ):
        if len(programs) != config.contexts:
            raise SimulationError(
                f"node {node}: {len(programs)} programs for "
                f"{config.contexts} contexts"
            )
        self.node = node
        self.config = config
        self.controller = controller
        self.stats = stats
        # Deterministic per-node stream, spawned from the root seed (see
        # module docstring).  The child sequence's first 128 bits seed a
        # ``random.Random`` so the program interface stays the stdlib
        # generator.
        if seed_seq is None:
            seed_seq = np.random.SeedSequence(config.seed, spawn_key=(node,))
        self.seed_seq = seed_seq
        self.rng = random.Random(
            int.from_bytes(
                seed_seq.generate_state(4, np.uint32).tobytes(), "little"
            )
        )
        self.contexts = [
            HardwareContext(index=i, program=program)
            for i, program in enumerate(programs)
        ]
        for context in self.contexts:
            context.remaining_cycles = context.program.compute_cycles(self.rng)
        self.contexts[0].state = ContextState.COMPUTING
        self._active: Optional[int] = 0
        self._switch_remaining = 0
        self._switch_target: Optional[int] = None
        #: READY contexts, tracked so the idle fast path in tick() can
        #: skip the round-robin scan entirely (most ticks on a stalled
        #: node find nothing runnable).
        self._ready_count = len(self.contexts) - 1
        #: Event-calendar hook (see :mod:`repro.sim.engine`): called with
        #: this processor whenever a transaction completion makes a
        #: context runnable, so a driver that skips idle processors
        #: knows to visit this one at the next processor boundary.
        #: ``None`` (the per-cycle driver) costs one branch per miss.
        self._wake_listener = None
        self.idle_cycles = 0
        self.switch_count = 0

    # ------------------------------------------------------------------
    # Per-processor-cycle step.
    # ------------------------------------------------------------------

    def tick(self, network_cycle: int) -> None:
        """Advance one processor cycle (called on clock boundaries)."""
        if self._switch_remaining > 0:
            self._switch_remaining -= 1
            if self._switch_remaining == 0:
                self._active = self._switch_target
                self._switch_target = None
            return

        if self._active is None:
            if self._ready_count == 0:
                self.idle_cycles += 1
                return
            ready = self._find_ready()
            # Waking from idle: free (pipeline was already drained); the
            # single-context model's t_t = T_r + T_t depends on this.
            self._active = ready
            self.contexts[ready].state = ContextState.COMPUTING
            self._ready_count -= 1

        context = self.contexts[self._active]
        if context.state is ContextState.READY:
            context.state = ContextState.COMPUTING
            self._ready_count -= 1
        if context.state is not ContextState.COMPUTING:
            raise SimulationError(
                f"node {self.node}: active context {self._active} in state "
                f"{context.state.value}"
            )

        if context.remaining_cycles > 0:
            context.remaining_cycles -= 1
            return

        # Run length exhausted: perform the next memory access.
        block, is_write = context.program.next_access(self.rng)
        if self.controller.is_hit(block, is_write):
            self.stats.cache_hit(self.node)
            self.controller.record_access(block)
            context.remaining_cycles = (
                self.config.hit_cycles + context.program.compute_cycles(self.rng)
            )
            return

        # Miss: start a coherence transaction and block this context.
        context.state = ContextState.BLOCKED
        index = context.index

        def on_complete(cycle: int, ctx: HardwareContext = context) -> None:
            ctx.state = ContextState.READY
            ctx.remaining_cycles = ctx.program.compute_cycles(self.rng)
            self._ready_count += 1
            if self._wake_listener is not None:
                self._wake_listener(self)

        self.controller.request(block, is_write, network_cycle, on_complete)
        self._leave_context(index)

    # ------------------------------------------------------------------
    # Event-calendar interface (see repro.sim.engine).
    # ------------------------------------------------------------------
    #
    # Between two "interesting" ticks — a run expiring into a memory
    # access, a switch completing into a fresh run, a wake-up after a
    # delivery — every tick() call is a pure countdown decrement (or an
    # idle increment) with no RNG draw and no external interaction.  The
    # two methods below let a driver account those ticks in bulk and
    # call tick() only at the boundaries where behavior can change,
    # bit-identically to ticking every cycle.

    def next_event_ticks(self) -> Optional[int]:
        """Processor ticks until the next tick() that is not a countdown.

        ``None`` means the processor is idle and will stay idle until a
        transaction completes (the ``_wake_listener`` hook fires then).
        The returned distance is immutable until that tick: completions
        only touch BLOCKED contexts, never the active run or a pending
        switch, so a scheduled wake can never go stale.
        """
        if self._switch_remaining > 0:
            # s countdown ticks (the s-th activates the target), then
            # the target's run, then the access on the following tick.
            target = self.contexts[self._switch_target]
            return self._switch_remaining + target.remaining_cycles + 1
        if self._active is not None:
            return self.contexts[self._active].remaining_cycles + 1
        return None

    def skip_ticks(self, ticks: int) -> None:
        """Apply ``ticks`` consecutive countdown ticks in one step.

        Exactly equivalent to calling :meth:`tick` ``ticks`` times
        *given* that none of those calls would reach an access or a
        wake-up — the driver guarantees this by never skipping past
        ``next_event_ticks()`` (nor past a wake notification, for idle
        processors).
        """
        if ticks <= 0:
            return
        switch = self._switch_remaining
        if switch > 0:
            take = ticks if ticks < switch else switch
            switch -= take
            ticks -= take
            self._switch_remaining = switch
            if switch == 0:
                self._active = self._switch_target
                self._switch_target = None
            if ticks == 0:
                return
        if self._active is not None:
            self.contexts[self._active].remaining_cycles -= ticks
        else:
            # Idle ticks; any READY context appeared strictly after the
            # skipped window (the engine visits a woken processor at the
            # first boundary past its wake), so these all counted idle.
            self.idle_cycles += ticks

    # ------------------------------------------------------------------
    # Context management.
    # ------------------------------------------------------------------

    def _find_ready(self) -> Optional[int]:
        """Round-robin scan for a runnable context."""
        start = (self._active + 1) if self._active is not None else 0
        count = len(self.contexts)
        for offset in range(count):
            candidate = (start + offset) % count
            if self.contexts[candidate].state is ContextState.READY:
                return candidate
        return None

    def _leave_context(self, index: int) -> None:
        """After a miss: switch to another runnable context or idle."""
        target = self._find_ready() if self._ready_count else None
        if target is None or target == index:
            self._active = None
            return
        if self.config.switch_cycles == 0:
            self._active = target
            self.contexts[target].state = ContextState.COMPUTING
            self._ready_count -= 1
            return
        self.switch_count += 1
        self._switch_remaining = self.config.switch_cycles
        self._switch_target = target
        self._active = None
        self.contexts[target].state = ContextState.COMPUTING
        self._ready_count -= 1

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def blocked_contexts(self) -> int:
        return sum(
            1 for c in self.contexts if c.state is ContextState.BLOCKED
        )

"""Event-calendar machine engine: cycle-skipping whole-machine runs.

:meth:`repro.sim.machine.Machine.step` pays an O(nodes) Python scan on
every processor boundary even when almost every processor is mid
compute-run and the fabric is quiescent — exactly the light-traffic
regime the paper cares about.  This module replaces the per-cycle
per-node dispatch with an event calendar while staying **bit-identical**
to the step loop (same RNG draw order, same
:class:`~repro.sim.stats.MeasurementSummary`, same telemetry epochs and
tracer samples; the parity suite pins all of it):

* **Processor wake calendar.**  Between two "interesting" ticks — a run
  expiring into a memory access, a context switch completing, a wake-up
  after a transaction delivers — every ``Processor.tick`` is a pure
  countdown with no RNG draw and no external interaction.  The engine
  keeps a min-heap of ``(tick, node)`` wake entries (at most one per
  non-idle processor; completions only touch BLOCKED contexts, so
  entries never go stale), visits a processor only at its wake tick via
  ``skip_ticks(gap)`` + ``tick()``, and leaves idle processors entirely
  off the calendar — they re-enter through the ``_wake_listener`` hook
  when a transaction completes.  Due and woken processors at a boundary
  are visited in ascending node order, matching the step loop's scan
  order (stats/tracer event order is part of the parity contract).

* **Quiescence fast-forward.**  When no controller has runnable engine
  work, no processor wake-up is pending, and the fabric reports no
  activity before some horizon (``next_event_cycle``), the machine
  state cannot change until the earliest of: the next processor expiry,
  the next controller occupancy end, the fabric horizon, or the window
  end.  The engine jumps there in one assignment; telemetry epochs
  ending inside the span are closed before the jump (the frozen state
  samples identical zero busy deltas and unchanged queue depths, but
  the close must precede the target cycle's injections) and skipped
  tracer samples are synthesized by
  :meth:`~repro.sim.trace.Tracer.on_skip` against the same frozen
  counters.

The step loop is retained verbatim (``REPRO_SIM_ENGINE=0`` or
``Machine(engine=False)`` routes ``run`` through it) as the parity
oracle, the same pattern as the fabric kernel vs the reference fabric.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import List, Optional

__all__ = ["MachineEngine", "engine_enabled_default"]


def engine_enabled_default() -> bool:
    """Whether ``Machine.run`` uses the event-calendar engine by default.

    On unless ``REPRO_SIM_ENGINE=0`` — the escape hatch for debugging
    and for timing the retained per-cycle loop.
    """
    return os.environ.get("REPRO_SIM_ENGINE", "1") != "0"


class MachineEngine:
    """Event-calendar driver over one :class:`~repro.sim.machine.Machine`.

    Built per :meth:`Machine.run` call; picks up the machine wherever
    its step loop left it (processor state current through the last
    processor boundary before ``machine.cycle``) and leaves it in the
    same convention after every window, so summaries, window-boundary
    counter sampling, and any subsequent ``step()`` calls see exactly
    the state the per-cycle loop would have produced.
    """

    def __init__(self, machine):
        self.machine = machine
        self.speedup = machine.config.network_speedup
        processors = machine.processors
        cycle = machine._cycle
        # Boundaries already executed: every tick j with j*speedup <
        # cycle, so processor state is current through this tick index.
        base = (cycle - 1) // self.speedup if cycle > 0 else -1
        self._last_tick: List[int] = [base] * len(processors)
        self._heap: List = []
        #: Nodes woken by a completion while idle, to visit at the next
        #: processor boundary; ``_woken_flag`` dedups repeat wakes.
        self._woken: List[int] = []
        self._woken_flag: List[bool] = [False] * len(processors)
        for processor in processors:
            processor._wake_listener = self._on_wake
            distance = processor.next_event_ticks()
            if distance is not None:
                heappush(self._heap, (base + distance, processor.node))
            elif processor._ready_count:
                # Idle with runnable work (a wake landed between the
                # last boundary and now): due at the next boundary.
                self._woken_flag[processor.node] = True
                self._woken.append(processor.node)

    def _on_wake(self, processor) -> None:
        """Completion callback: re-calendar an idle processor.

        Computing/switching processors keep their (still exact) heap
        entry — the completion only made a context READY, which cannot
        move their next access.  Idle processors have no entry and are
        queued for the first boundary after the wake.
        """
        if (
            processor._active is None
            and processor._switch_remaining == 0
            and not self._woken_flag[processor.node]
        ):
            self._woken_flag[processor.node] = True
            self._woken.append(processor.node)

    def run_window(self, cycles: int) -> None:
        """Advance the machine ``cycles`` network cycles.

        Equivalent to ``for _ in range(cycles): machine.step()``; on
        return every processor is current through the window's last
        processor boundary (as the step loop leaves it), so callers can
        sample idle/switch counters between windows.
        """
        machine = self.machine
        fabric = machine.fabric
        tracer = machine.tracer
        speedup = self.speedup
        heap = self._heap
        woken = self._woken
        woken_flag = self._woken_flag
        last_tick = self._last_tick
        processors = machine.processors
        engine_ready = machine._engine_ready
        engine_wake = machine._engine_wake
        tick_controllers = machine._tick_controllers
        fabric_tick = fabric.tick
        next_event = getattr(fabric, "next_event_cycle", None)
        sample_interval = tracer.sample_interval if tracer is not None else 0
        telemetry = machine.telemetry

        cycle = machine._cycle
        end = cycle + cycles
        while cycle < end:
            machine._cycle = cycle
            if cycle % speedup == 0:
                tick = cycle // speedup
                batch: Optional[List[int]] = None
                while heap and heap[0][0] == tick:
                    node = heappop(heap)[1]
                    if batch is None:
                        batch = [node]
                    else:
                        batch.append(node)
                if woken:
                    # Wakes target strictly-future boundaries, so every
                    # queued node is due now; idle processors carry no
                    # heap entry, so the two sources never overlap.
                    if batch is None:
                        woken.sort()
                        batch = woken[:]
                    else:
                        batch.extend(woken)
                        batch.sort()
                    for node in woken:
                        woken_flag[node] = False
                    woken.clear()
                if batch is not None:
                    for node in batch:
                        processor = processors[node]
                        gap = tick - last_tick[node] - 1
                        if gap > 0:
                            processor.skip_ticks(gap)
                        processor.tick(cycle)
                        last_tick[node] = tick
                        distance = processor.next_event_ticks()
                        if distance is not None:
                            heappush(heap, (tick + distance, node))
            tick_controllers(cycle)
            fabric_tick(cycle)
            if tracer is not None:
                tracer.on_cycle(machine, cycle)
            cycle += 1

            # Quiescence fast-forward: nothing can happen before the
            # earliest pending event, so jump straight to it.
            if engine_ready or woken:
                continue
            if next_event is not None:
                horizon = next_event(cycle)
            else:
                horizon = cycle if not fabric.quiescent() else None
            if horizon is not None and horizon <= cycle:
                continue
            target = end
            if heap:
                due = heap[0][0] * speedup
                if due < target:
                    target = due
            if engine_wake:
                due = min(engine_wake)
                if due < target:
                    target = due
            if horizon is not None and horizon < target:
                target = horizon
            if target > cycle:
                # Machine state is frozen across [cycle, target): book
                # the tracer samples those cycles would have taken, and
                # close any telemetry epochs ending inside the span now
                # — the step loop closes them at their boundary cycle,
                # before the target cycle's own injections can move the
                # sampled queue depths.
                if sample_interval > 0:
                    tracer.on_skip(machine, cycle, target)
                if telemetry is not None and telemetry.epoch_end < target:
                    telemetry.roll_to(target - 1)
                cycle = target

        machine._cycle = end
        if cycles > 0:
            self._flush((end - 1) // speedup)

    def _flush(self, tick: int) -> None:
        """Bring every processor current through tick index ``tick``.

        Pending countdown ticks are applied in bulk; this cannot cross
        an access (all wake entries lie strictly beyond the window) nor
        a wake-up (idle gaps end at the woken visit, which is also
        beyond the window), so it is pure deferred accounting.
        """
        last_tick = self._last_tick
        for processor in self.machine.processors:
            node = processor.node
            gap = tick - last_tick[node]
            if gap > 0:
                processor.skip_ticks(gap)
                last_tick[node] = tick

"""On-demand compiled C core for the batched replication engine.

Compiles :mod:`repro.sim` ``_batchcore.c`` with the system C compiler
the first time it is needed (cached under the user cache directory,
keyed by source hash) and loads it through :mod:`cffi` in ABI mode —
no setuptools build step, no Python.h dependency.  Everything degrades
gracefully: if a compiler or cffi is unavailable, ``load()`` returns
``None`` and :mod:`repro.sim.batch` falls back to its pure-Python
engine, which is the behavioral spec for this core.

The ``REPRO_BATCH_ENGINE`` environment variable gates selection:
``auto`` (default) uses the core when available and applicable, ``py``
forces the pure-Python engine, and ``c`` requires the core (raising if
it cannot be built).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

from repro.errors import ProtocolError, SimulationError

__all__ = ["engine_mode", "load", "raise_error", "CDEF"]

_SOURCE = Path(__file__).with_name("_batchcore.c")

CDEF = """
typedef struct Batch Batch;
Batch *bc_create(int R, int N, int dims, int radix, int capacity,
                 int req_cost, int recv_cost, int send_cost, int mem_cost);
void bc_destroy(Batch *b);
int bc_add_block(Batch *b, int home);
int bc_is_hit(Batch *b, int r, int node, int block, int is_write);
void bc_record_access(Batch *b, int r, int node, int block);
void bc_request(Batch *b, int r, int node, int block, int is_write,
                long long cycle, long long handle);
long long bc_advance(Batch *b, int r, long long stop);
long long bc_cycle(Batch *b, int r);
int bc_comp_count(Batch *b, int r);
long long *bc_comp_ptr(Batch *b, int r);
void bc_comp_clear(Batch *b, int r);
void bc_start_measuring(Batch *b, int r);
void bc_get_counters(Batch *b, int r, long long *out_i, double *out_d);
void bc_get_link_flits(Batch *b, int r, long long *out);
void bc_get_per_node_sent(Batch *b, int r, long long *out);
long long bc_in_flight(Batch *b, int r);
int bc_errcode(Batch *b);
const char *bc_errmsg(Batch *b);
void *ts_new(void);
void ts_free(void *p);
void ts_add(void *p, long long key);
void ts_discard(void *p, long long key);
int ts_contains(void *p, long long key);
long long ts_len(void *p);
long long ts_items(void *p, long long *out);
"""

_cached = None
_failure: Optional[str] = None


def engine_mode() -> str:
    """Requested engine: ``auto`` (default), ``c``, or ``py``."""
    mode = os.environ.get("REPRO_BATCH_ENGINE", "auto").strip().lower()
    if mode not in ("auto", "c", "py"):
        raise SimulationError(
            f"REPRO_BATCH_ENGINE must be auto, c, or py; got {mode!r}"
        )
    return mode


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro" / "batchcore"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build(source: Path) -> Path:
    """Compile the core into the cache; return the shared-object path."""
    text = source.read_bytes()
    tag = hashlib.sha256(text).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"_batchcore-{tag}.so"
    if so_path.exists():
        return so_path
    compiler = _compiler()
    if compiler is None:
        raise SimulationError("no C compiler found for the batch core")
    cache.mkdir(parents=True, exist_ok=True)
    # Build into a temp name then rename: concurrent builders race
    # benignly to an identical artifact.
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", tmp, str(source)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise SimulationError(
                f"batch core compilation failed: {proc.stderr[:500]}"
            )
        os.replace(tmp, so_path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path


def load():
    """Return ``(ffi, lib)`` for the compiled core, or ``None``.

    The first failure (missing cffi, missing compiler, build error) is
    remembered so later calls stay cheap; ``REPRO_BATCH_ENGINE=c``
    callers can read the reason from :func:`load_failure`.
    """
    global _cached, _failure
    if _cached is not None:
        return _cached
    if _failure is not None:
        return None
    try:
        from cffi import FFI
    except ImportError:
        _failure = "cffi is not installed"
        return None
    try:
        so_path = _build(_SOURCE)
        ffi = FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(str(so_path))
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _failure = str(exc)
        return None
    _cached = (ffi, lib)
    return _cached


def load_failure() -> Optional[str]:
    return _failure


def raise_error(ffi, lib, batch) -> None:
    """Re-raise a core-side error flag as the matching Python error."""
    code = lib.bc_errcode(batch)
    if not code:
        return
    message = ffi.string(lib.bc_errmsg(batch)).decode()
    if code == 2:
        raise ProtocolError(message)
    raise SimulationError(message)

"""Network messages exchanged by the coherence protocol.

The synthetic application's traffic (Section 3.2) consists of four message
kinds in its steady state — read requests, data replies, invalidations,
and invalidation acks — which is how the paper arrives at ``g = 3.2``
messages per transaction (each 5-access iteration sends 4 x (request +
data) + 4 x (invalidate + ack) = 16 messages for 5 transactions) and an
average message size of 12 flits.  The protocol here also implements the
fetch/forward messages needed when requests miss at a remotely-modified
block, so workloads other than the paper's behave correctly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["MessageKind", "Message", "CONTROL_FLITS", "DATA_FLITS"]

#: Flits in a control message (64-bit header on 8-bit channels).
CONTROL_FLITS = 8

#: Flits in a data-bearing message (16-byte cache line plus header).
DATA_FLITS = 24


class MessageKind(enum.Enum):
    """Coherence protocol message types."""

    READ_REQUEST = "read_request"
    WRITE_REQUEST = "write_request"
    DATA_REPLY = "data_reply"
    INVALIDATE = "invalidate"
    INVALIDATE_ACK = "invalidate_ack"
    FETCH = "fetch"              # home asks the owner to downgrade M -> S
    FETCH_INVALIDATE = "fetch_invalidate"  # ... or to give the line up
    WRITEBACK = "writeback"      # owner returns the modified line home

    @property
    def carries_data(self) -> bool:
        """Whether this message carries a cache line."""
        return self in (MessageKind.DATA_REPLY, MessageKind.WRITEBACK)

    @property
    def flits(self) -> int:
        """Message size in flits."""
        return DATA_FLITS if self.carries_data else CONTROL_FLITS


#: Flit counts by kind, precomputed so the per-message ``flits``
#: attribute is a plain int (the fabrics and stats read it on every
#: channel grant — a property chain there is measurable overhead).
_FLITS_BY_KIND = {kind: kind.flits for kind in MessageKind}

_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One protocol message in flight.

    ``transaction`` identifies the coherence transaction this message
    serves, so latency accounting can attribute each message to the
    processor stall it contributes to.  Timestamps are in network cycles;
    ``injected_at`` is stamped when the head flit enters the source
    node's injection channel queue, ``delivered_at`` when the tail flit
    has fully arrived.
    """

    kind: MessageKind
    source: int
    destination: int
    block: Tuple[int, int]
    transaction: int
    uid: int = field(default_factory=lambda: next(_message_ids))
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None
    #: Size in flits; fixed by ``kind``, materialized once at creation.
    flits: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.flits = _FLITS_BY_KIND[self.kind]

    @property
    def latency(self) -> Optional[int]:
        """Injection-to-full-delivery latency in network cycles."""
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    def __repr__(self) -> str:  # compact for debugging protocol traces
        return (
            f"Message({self.kind.value} #{self.uid} {self.source}->"
            f"{self.destination} block={self.block} txn={self.transaction})"
        )

"""Flit-level wormhole-routed torus fabric (array-kernel backed).

Implements the network of Section 3.1: a k-ary n-dimensional torus with a
pair of unidirectional channels between neighbors (one per direction),
e-cube (dimension-order) routing, single-cycle switch delay, and a pair
of injection/ejection channels connecting each node to its switch.

**Worm model.**  A message of ``B`` flits is simulated as a rigid worm:
all of its flits advance in lockstep on each *movement cycle* (the head
acquiring the next channel, or — once the head has arrived — the
destination consuming one flit).  With single-flit switch buffers this is
exact: when the head stalls, every flit behind it stalls.  A channel is
held from the movement cycle its first flit crosses until all ``B`` flits
have crossed (``B`` movement cycles later), which reproduces the
``T_m = d * T_h + B`` structure of the analytical model: an unloaded
``d``-hop message takes ``d + 2`` cycles of head travel (the +2 being the
node's injection and ejection channels) plus ``B - 1`` cycles of drain.

**Deadlock freedom.**  E-cube routing alone deadlocks on torus *rings*
(cyclic channel dependencies around the wraparound), so each physical
channel carries two virtual channels with the standard dateline scheme:
a route uses VC 0 within a dimension until it crosses the ring's zero
boundary, VC 1 after.  VCs are modeled as independent channel resources;
the bandwidth this adds on dateline links is visible to the measured
utilization statistics (which count flits per *physical* link), keeping
comparisons against the analytical model honest.

Arbitration is first-come-first-served per channel, with ties between
channels resolved in a fixed order — the simulator is fully
deterministic given its inputs.

**Implementation.**  Since PR 5 the hot path lives in
:class:`repro.sim.kernel.FabricKernel`: flat numpy/array state per worm
and per channel, a vectorized Phase-1 drain, and an event-driven Phase-2
grant pass that touches only channels changing hands.  The previous
object-based implementation is preserved verbatim (modulo the
``acquire_moves`` scalar collapse) as
:class:`repro.sim.reference.ReferenceTorusFabric` and serves as the
executable specification: the parity suite
(``tests/sim/test_kernel_parity.py``) pins the kernel to it cycle for
cycle — identical delivery cycles, link flit counts, and stall behavior
— and the seeded golden fixture does the same against recorded history.

This module keeps the public names stable: ``TorusFabric`` is the
kernel-backed fabric and ``Worm`` is the delivery record passed to
``on_delivery`` (``message`` / ``hops`` / ``source_wait``).
"""

from __future__ import annotations

from repro.sim.kernel import DeliveredWorm as Worm
from repro.sim.kernel import FabricKernel as TorusFabric

__all__ = ["Worm", "TorusFabric"]

# Channel keys (accepted by build_route / inject_on_route):
#   ("inj", node)                  node -> switch
#   ("ej", node)                   switch -> node
#   ("link", node, dim, step, vc)  switch -> neighboring switch

"""Flit-level wormhole-routed torus fabric.

Implements the network of Section 3.1: a k-ary n-dimensional torus with a
pair of unidirectional channels between neighbors (one per direction),
e-cube (dimension-order) routing, single-cycle switch delay, and a pair
of injection/ejection channels connecting each node to its switch.

**Worm model.**  A message of ``B`` flits is simulated as a rigid worm:
all of its flits advance in lockstep on each *movement cycle* (the head
acquiring the next channel, or — once the head has arrived — the
destination consuming one flit).  With single-flit switch buffers this is
exact: when the head stalls, every flit behind it stalls.  A channel is
held from the movement cycle its first flit crosses until all ``B`` flits
have crossed (``B`` movement cycles later), which reproduces the
``T_m = d * T_h + B`` structure of the analytical model: an unloaded
``d``-hop message takes ``d + 2`` cycles of head travel (the +2 being the
node's injection and ejection channels) plus ``B - 1`` cycles of drain.

**Deadlock freedom.**  E-cube routing alone deadlocks on torus *rings*
(cyclic channel dependencies around the wraparound), so each physical
channel carries two virtual channels with the standard dateline scheme:
a route uses VC 0 within a dimension until it crosses the ring's zero
boundary, VC 1 after.  VCs are modeled as independent channel resources;
the bandwidth this adds on dateline links is visible to the measured
utilization statistics (which count flits per *physical* link), keeping
comparisons against the analytical model honest.

Arbitration is first-come-first-served per channel, with ties between
channels resolved in a fixed key order — the simulator is fully
deterministic given its inputs.

**Implementation.**  The channel population (injection, ejection, and
two virtual channels per link) is fixed by the torus geometry, so
channels are enumerated up front and identified by dense integer ids:
ownership, waiting queues, and flit-occupancy totals are flat lists
indexed by channel id (or physical-link id for occupancy), and
e-cube routes are memoized per endpoint pair (they are pure functions of
the pair).  The grant loop itself stays sequential — unlike the
cut-through fabric, a wormhole grant can release channels that later
entries in the same cycle's scan then acquire, so iteration order is
semantics, not bookkeeping.  The seeded golden-parity tests pin the
behavior to the reference implementation cycle for cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.message import Message
from repro.topology.torus import Torus

__all__ = ["Worm", "TorusFabric"]

ChannelKey = Tuple
# Channel keys:
#   ("inj", node)                  node -> switch
#   ("ej", node)                   switch -> node
#   ("link", node, dim, step, vc)  switch -> neighboring switch


@dataclass(slots=True)
class Worm:
    """One message in flight through the fabric.

    ``route`` holds dense channel ids (the key form is available from
    :meth:`TorusFabric.build_route`); it is borrowed from the fabric's
    route cache and must not be mutated.
    """

    message: Message
    route: List[int]
    #: Index of the most recently acquired route channel (-1 = none yet).
    head: int = -1
    #: Total movement cycles so far (each moves every flit one position).
    moves: int = 0
    #: ``acquire_moves[i]`` is the movement count when channel i was
    #: acquired; channel i completes after ``flits`` further movements.
    acquire_moves: List[int] = field(default_factory=list)
    #: Index of the first not-yet-released route channel.
    released: int = 0
    #: Cycle stamp of the last movement (prevents >1 hop per cycle).
    moved_at: int = -1
    #: Cycles spent queued at the source's injection channel.
    source_wait: int = 0
    #: Message size in flits, materialized once (hot in channel release).
    flits: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.flits = self.message.flits

    @property
    def hops(self) -> int:
        """Switch-to-switch hops (route minus injection/ejection)."""
        return len(self.route) - 2

    @property
    def at_destination(self) -> bool:
        return self.head == len(self.route) - 1

    @property
    def delivered(self) -> bool:
        return self.at_destination and self.moves >= self.acquire_moves[-1] + self.flits


class TorusFabric:
    """The complete interconnect: channels, arbitration, worm movement.

    Parameters
    ----------
    torus:
        Machine geometry.
    on_delivery:
        Callback invoked with each completed :class:`Worm` when its tail
        flit has fully arrived at the destination node (the worm carries
        the message plus hop/wait accounting).
    stall_limit:
        Safety net: if no worm moves for this many consecutive cycles
        while traffic is in flight, a :class:`SimulationError` is raised
        (this would indicate a routing-deadlock bug, which the dateline
        VCs are there to prevent).
    """

    def __init__(
        self,
        torus: Torus,
        on_delivery: Callable[["Worm"], None],
        stall_limit: int = 10000,
    ):
        self.torus = torus
        self.on_delivery = on_delivery
        self.stall_limit = stall_limit

        # Enumerate every channel: injection and ejection per node, two
        # virtual channels per directed link.
        self._channel_index: Dict[ChannelKey, int] = {}
        self._link_keys: List[Tuple[int, int, int]] = []
        link_index: Dict[Tuple[int, int, int], int] = {}
        link_of: List[int] = []
        for node in torus.nodes():
            self._channel_index[("inj", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            self._channel_index[("ej", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            for dim in range(torus.dimensions):
                for step in (1, -1):
                    link = (node, dim, step)
                    link_index[link] = len(self._link_keys)
                    self._link_keys.append(link)
                    for vc in (0, 1):
                        key = ("link", node, dim, step, vc)
                        self._channel_index[key] = len(link_of)
                        link_of.append(link_index[link])
        count = len(link_of)
        self._link_of = link_of
        self._owner: List[Optional[Worm]] = [None] * count
        self._queues: List[Deque[Worm]] = [deque() for _ in range(count)]
        self._in_pending: List[bool] = [False] * count
        self._pending_keys: List[int] = []
        self._draining: List[Worm] = []
        self._stall_cycles = 0
        self._owned_count = 0
        self._queued_count = 0
        #: Flits crossed per physical link, by link id (a plain list:
        #: the counter is bumped one scalar at a time on channel
        #: acquisition, where list indexing beats numpy indexing).
        self._link_flit_counts = [0] * len(self._link_keys)
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        self.delivered_count = 0

    # ------------------------------------------------------------------
    # Route construction.
    # ------------------------------------------------------------------

    def build_route(self, source: int, destination: int) -> List[ChannelKey]:
        """E-cube route with dateline VC assignment, inj/ej inclusive."""
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        route: List[ChannelKey] = [("inj", source)]
        radix = self.torus.radix
        current_vc_dim = -1
        vc = 0
        for node, dim, step in self.torus.route_hops(source, destination):
            if dim != current_vc_dim:
                current_vc_dim = dim
                vc = 0
            coordinate = self.torus.coordinates(node)[dim]
            route.append(("link", node, dim, step, vc))
            # Crossing the ring's zero boundary switches to VC 1 for the
            # rest of this dimension (the dateline rule).
            wraps = (step == 1 and coordinate == radix - 1) or (
                step == -1 and coordinate == 0
            )
            if wraps:
                vc = 1
        route.append(("ej", destination))
        return route

    def _route_ids(self, source: int, destination: int) -> List[int]:
        """The channel-id route, memoized per (source, destination)."""
        pair = (source, destination)
        route = self._route_cache.get(pair)
        if route is None:
            index = self._channel_index
            route = [
                index[key] for key in self.build_route(source, destination)
            ]
            self._route_cache[pair] = route
        return route

    # ------------------------------------------------------------------
    # Injection.
    # ------------------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> None:
        """Queue a message at its source node's injection channel."""
        message.injected_at = cycle
        worm = Worm(message=message, route=self._route_ids(
            message.source, message.destination
        ))
        self._enqueue(worm, worm.route[0])

    def _enqueue(self, worm: Worm, channel: int) -> None:
        if not self._in_pending[channel]:
            self._in_pending[channel] = True
            self._pending_keys.append(channel)
        self._queues[channel].append(worm)
        self._queued_count += 1

    # ------------------------------------------------------------------
    # Per-cycle advance.
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance the fabric by one network cycle."""
        progressed = False

        # Phase 1: drain worms whose heads have arrived; the destination
        # consumes one flit per cycle unconditionally, releasing tail
        # channels as they complete.
        if self._draining:
            still_draining: List[Worm] = []
            for worm in self._draining:
                worm.moves += 1
                worm.moved_at = cycle
                self._release_completed(worm)
                progressed = True
                # Draining worms are at destination by construction, so
                # ``worm.delivered`` reduces to the tail-arrival check.
                if worm.moves >= worm.acquire_moves[-1] + worm.flits:
                    self._finish(worm, cycle)
                else:
                    still_draining.append(worm)
            self._draining = still_draining

        # Phase 2: grant free channels to the first eligible waiter.  A
        # worm moves at most one hop per cycle (checked via moved_at).
        # _enqueue appends to self._pending_keys DURING this loop (a
        # grant feeding the worm's next channel); those entries must be
        # visited this same cycle so they land in remaining_keys — the
        # index-based loop preserves that.
        pending = self._pending_keys
        remaining_keys: List[int] = []
        owner = self._owner
        queues = self._queues
        index = 0
        while index < len(pending):
            channel = pending[index]
            index += 1
            queue = queues[channel]
            if not queue:
                self._in_pending[channel] = False
                continue
            head_worm = queue[0]
            if owner[channel] is not None or head_worm.moved_at == cycle:
                remaining_keys.append(channel)
                continue
            queue.popleft()
            self._queued_count -= 1
            self._advance(head_worm, channel, cycle)
            progressed = True
            if queue:
                remaining_keys.append(channel)
            else:
                self._in_pending[channel] = False
        self._pending_keys = remaining_keys

        # Deadlock safety net.
        in_flight = bool(
            self._owned_count or self._queued_count or self._draining
        )
        if in_flight and not progressed:
            self._stall_cycles += 1
            if self._stall_cycles >= self.stall_limit:
                raise SimulationError(
                    f"network made no progress for {self.stall_limit} cycles "
                    f"with {self._owned_count} channels held — routing "
                    "deadlock or arbitration bug"
                )
        else:
            self._stall_cycles = 0

    def _advance(self, worm: Worm, channel: int, cycle: int) -> None:
        """Grant ``channel`` to ``worm`` and account the movement."""
        self._owner[channel] = worm
        self._owned_count += 1
        worm.head += 1
        if worm.head == 0:
            worm.source_wait = cycle - worm.message.injected_at
        worm.acquire_moves.append(worm.moves)
        worm.moves += 1
        worm.moved_at = cycle
        link = self._link_of[channel]
        if link >= 0:
            # The message will push exactly ``flits`` flits through this
            # physical link; account them at acquisition time (utilization
            # statistics are window averages, so the timing skew of at
            # most B cycles is negligible).
            self._link_flit_counts[link] += worm.flits
        self._release_completed(worm)
        if worm.head == len(worm.route) - 1:
            if worm.moves >= worm.acquire_moves[-1] + worm.flits:
                self._finish(worm, cycle)  # single-flit full arrival
            else:
                self._draining.append(worm)
        else:
            self._enqueue(worm, worm.route[worm.head + 1])

    def _release_completed(self, worm: Worm) -> None:
        """Free route channels whose ``flits`` transfers have completed."""
        while (
            worm.released <= worm.head
            and worm.moves >= worm.acquire_moves[worm.released] + worm.flits
        ):
            channel = worm.route[worm.released]
            owner = self._owner[channel]
            self._owner[channel] = None
            self._owned_count -= 1
            if owner is not worm:
                raise SimulationError(
                    f"channel {channel} released by non-owner worm "
                    f"{worm.message.uid}"
                )
            worm.released += 1

    def _finish(self, worm: Worm, cycle: int) -> None:
        """Release any remaining channels and deliver the message."""
        while worm.released <= worm.head:
            channel = worm.route[worm.released]
            owner = self._owner[channel]
            self._owner[channel] = None
            self._owned_count -= 1
            if owner is not worm:
                raise SimulationError(
                    f"channel {channel} held by wrong worm at delivery"
                )
            worm.released += 1
        worm.message.delivered_at = cycle
        self.delivered_count += 1
        self.on_delivery(worm)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        """Flits crossed per physical link (links with traffic only)."""
        keys = self._link_keys
        return {
            keys[i]: count
            for i, count in enumerate(self._link_flit_counts)
            if count
        }

    @property
    def in_flight(self) -> int:
        """Worms currently traversing or queued in the fabric."""
        worms = set()
        for queue in self._queues:
            if queue:
                worms.update(id(w) for w in queue)
        for worm in self._owner:
            if worm is not None:
                worms.add(id(worm))
        worms.update(id(w) for w in self._draining)
        return len(worms)

    def quiescent(self) -> bool:
        """True when no traffic is anywhere in the fabric."""
        return not (
            self._owned_count or self._queued_count or self._draining
        )

"""Lockstep batched replication engine: R seeds, one merged calendar.

Replication campaigns (:func:`repro.sim.replicate.run_replications`) run
the same machine configuration under many root seeds, and every seed
pays the full per-event Python interpreter cost of the serial engine.
This module runs ``R`` independent replications *together*: one driver
loop owns a merged event calendar over all replications and steps each
replication only at the cycles where its state can change, while the
per-event work itself runs through lean ports of the hot layers — an
opcode-queue coherence controller and a flat-state cut-through fabric —
that shed the closure allocation and indirection the general-purpose
classes pay for their pluggability.

**Bit-exactness contract.**  The serial per-seed runner is the oracle,
the same pattern as :mod:`repro.sim.reference` vs
:mod:`repro.sim.kernel`: for every seed, the batched run's
:class:`~repro.sim.stats.MeasurementSummary` (and telemetry snapshot,
when attached) is identical to ``Machine(config.with_seed(seed), ...)
.run()``.  The ingredients:

* **RNG streams.**  Replication ``r`` spawns its per-node streams as
  ``SeedSequence(seeds[r]).spawn(nodes)`` — exactly what a solo
  :class:`~repro.sim.machine.Machine` does — and the unmodified
  :class:`~repro.sim.processor.Processor` is reused per (rep, node), so
  draw order per replication is identical to a solo run by construction.
* **Event order.**  The driver ports :class:`~repro.sim.engine
  .MachineEngine`'s per-cycle body exactly (processor boundary batches
  in ascending node order, controller batches sorted by node, fabric
  tick last) and applies its quiescence fast-forward *per replication*:
  the merged calendar holds one ``(next_cycle, rep)`` entry per
  replication, so a quiescent replication is skipped to its next event
  while a busy one is stepped cycle by cycle — the batch advances by
  the minimum wake across the batch.
* **Protocol order.**  The opcode controller executes the same protocol
  events at the same occupancy boundaries in the same FIFO order as
  :class:`~repro.sim.coherence.CoherenceController`, including the
  deferred-request discipline (pop at schedule time) and the
  LRU-as-dict-order cache; the lean fabric replicates
  :class:`~repro.sim.cut_through.CutThroughFabric`'s grant walk,
  pending activation order, and delivery scheduling.  Wormhole
  replications reuse :class:`repro.sim.network.TorusFabric` (the numpy
  kernel) per replication unchanged.

Throughput comes from three places: the lean per-event code paths, the
shared read-only structures (channel geometry, memoized routes, thread
homes) built once for the whole batch instead of once per replication,
and the merged calendar amortizing driver overhead across replications.
"""

from __future__ import annotations

import copy
from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ParameterError, ProtocolError, SimulationError
from repro.sim import batchcore
from repro.mapping.base import Mapping
from repro.sim.coherence import CacheState, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.machine import place_programs
from repro.sim.message import _FLITS_BY_KIND, MessageKind
from repro.sim.network import TorusFabric
from repro.sim.processor import Processor
from repro.sim.stats import MachineStats, MeasurementSummary
from repro.sim.telemetry import FabricTelemetry, TelemetryConfig
from repro.topology.torus import Torus
from repro.workload.base import ThreadProgram

__all__ = ["BatchFabric", "BatchMachine", "run_batch"]


class _Msg:
    """Lean protocol message: the fields the fabrics and stats read.

    Interface-compatible with :class:`repro.sim.message.Message` for
    everything on the hot path (``flits`` precomputed, ``latency``
    derived) but without the global uid draw — message uids are purely
    cosmetic (repr only) and skipping the shared counter keeps
    replications independent of each other's allocation order.
    """

    __slots__ = (
        "kind", "source", "destination", "block", "transaction",
        "flits", "injected_at", "delivered_at",
    )

    def __init__(self, kind, source, destination, block, transaction):
        self.kind = kind
        self.source = source
        self.destination = destination
        self.block = block
        self.transaction = transaction
        self.flits = _FLITS_BY_KIND[kind]
        self.injected_at = None
        self.delivered_at = None

    @property
    def latency(self):
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"_Msg({self.kind.value} {self.source}->{self.destination} "
            f"block={self.block} txn={self.transaction})"
        )


# ----------------------------------------------------------------------
# Opcode-queue coherence controller.
# ----------------------------------------------------------------------
#
# The serial controller schedules every protocol event as a fresh
# closure.  The batch port encodes the seven event shapes as opcodes
# carried on the engine queue as plain tuples, so the steady state
# allocates one tuple (not one closure object plus cells) per event and
# dispatch is an int compare chain.  Semantics are a line-for-line port
# of repro.sim.coherence.CoherenceController.

_OP_HANDLE = 0        # a: message                  — receive occupancy done
_OP_BEGIN = 1         # a: _Request                 — request occupancy done
_OP_LAUNCH = 2        # a: message, b: unbusy block — send occupancy done
_OP_REPLY = 3         # a: (requester, block, txn)  — memory read for a reply
_OP_FINISH = 4        # a: block                    — local fill complete
_OP_DEFER = 5         # a: deferred item, b: entry  — re-dispatched request
_OP_NOP = 6           # home-eviction memory charge

_UID_STRIDE = 1 << 20


class _Entry:
    """Directory entry (port of coherence._DirectoryEntry)."""

    __slots__ = ("state", "sharers", "owner", "busy", "deferred")

    def __init__(self):
        self.state = DirectoryState.UNOWNED
        self.sharers = set()
        self.owner = None
        self.busy = False
        self.deferred = deque()


class _HomeTxn:
    """Home-side multi-message transaction (port of _HomeTransaction)."""

    __slots__ = (
        "requester", "is_write", "uid", "pending_acks", "awaiting_writeback",
    )

    def __init__(self, requester, is_write, uid, pending_acks=0,
                 awaiting_writeback=False):
        self.requester = requester
        self.is_write = is_write
        self.uid = uid
        self.pending_acks = pending_acks
        self.awaiting_writeback = awaiting_writeback


class _Request:
    """Requester-side outstanding miss (port of _LocalRequest)."""

    __slots__ = (
        "block", "is_write", "issued_at", "callback", "uid", "messages",
        "waiters",
    )

    def __init__(self, block, is_write, issued_at, callback, uid):
        self.block = block
        self.is_write = is_write
        self.issued_at = issued_at
        self.callback = callback
        self.uid = uid
        self.messages = 0
        self.waiters = []


class BatchController:
    """One node's cache + directory + protocol engine, batch edition.

    Behaviorally identical to
    :class:`~repro.sim.coherence.CoherenceController` (the parity suite
    pins whole-machine summaries across the two), restructured for the
    batched hot path: engine events are opcode tuples, block homes come
    from a precomputed shared list, and the fabric is injected into
    directly rather than through the machine's dispatch closure.
    """

    __slots__ = (
        "node", "stats", "fabric", "cache", "directory", "_homes",
        "_queue", "_current", "_done_at", "_wake", "_notified", "_ticking",
        "_outstanding", "_home_txns", "_next_uid", "_capacity",
        "_request_cost", "_receive_cost", "_send_cost", "_memory_cost",
    )

    def __init__(self, node, config, homes, stats, wake):
        self.node = node
        self.stats = stats
        self.fabric = None  # bound after fabric construction
        self._homes = homes
        self._wake = wake
        self._notified = False
        self._ticking = False
        self.cache: Dict[Tuple[int, int], CacheState] = {}
        self.directory: Dict[Tuple[int, int], _Entry] = {}
        self._queue = deque()
        self._current = None
        self._done_at = 0
        self._outstanding: Dict[Tuple[int, int], _Request] = {}
        self._home_txns: Dict[Tuple[int, int], _HomeTxn] = {}
        self._next_uid = node
        self._capacity = config.cache_lines
        self._request_cost = config.to_network(config.request_cycles)
        self._receive_cost = config.to_network(config.receive_cycles)
        self._send_cost = config.to_network(config.send_cycles)
        self._memory_cost = config.to_network(config.memory_cycles)

    # -- engine --------------------------------------------------------

    def _schedule(self, cost, op, a, b):
        self._queue.append((cost, op, a, b))
        # Wake the driver only on an idle-to-busy transition (see
        # CoherenceController._schedule).
        if self._current is None and not self._ticking and not self._notified:
            self._notified = True
            self._wake(self)

    def tick(self, cycle):
        """Run the protocol engine for one network cycle."""
        self._ticking = True
        while True:
            current = self._current
            if current is not None:
                if self._done_at > cycle:
                    break
                self._current = None
                self._execute(current[0], current[1], current[2],
                              self._done_at)
                continue
            queue = self._queue
            if not queue:
                break
            cost, op, a, b = queue.popleft()
            if cost == 0:
                self._execute(op, a, b, cycle)
                continue
            self._done_at = cycle + cost
            self._current = (op, a, b)
        self._ticking = False

    def _execute(self, op, a, b, done):
        if op == _OP_HANDLE:
            self._handle(a, done)
        elif op == _OP_LAUNCH:
            self._launch(a, done)
            if b is not None:
                entry = self.directory[b]
                entry.busy = False
                self._run_deferred(entry)
        elif op == _OP_REPLY:
            requester, block, transaction = a
            message = _Msg(
                MessageKind.DATA_REPLY, self.node, requester, block,
                transaction,
            )
            self._schedule(self._send_cost, _OP_LAUNCH, message, block)
        elif op == _OP_FINISH:
            self._finish_local(a, done)
        elif op == _OP_BEGIN:
            self._begin_transaction(a, done)
        elif op == _OP_DEFER:
            block, requester, is_write, transaction = a
            self._home_handle_request(
                block, requester, is_write, transaction, done
            )
            self._run_deferred(b)
        # _OP_NOP: occupancy only.

    # -- processor-facing API ------------------------------------------

    def cache_state(self, block):
        return self.cache.get(block, CacheState.INVALID)

    def is_hit(self, block, is_write):
        state = self.cache.get(block, CacheState.INVALID)
        if is_write:
            return state is CacheState.MODIFIED
        return state is not CacheState.INVALID

    def record_access(self, block):
        state = self.cache.pop(block, None)
        if state is not None:
            self.cache[block] = state

    def request(self, block, is_write, cycle, callback):
        existing = self._outstanding.get(block)
        if existing is not None:
            existing.waiters.append((is_write, cycle, callback))
            return
        uid = self._next_uid
        self._next_uid = uid + _UID_STRIDE
        record = _Request(block, is_write, cycle, callback, uid)
        self._outstanding[block] = record
        self.stats.transaction_started(self.node, cycle)
        self._schedule(self._request_cost, _OP_BEGIN, record, None)

    def _begin_transaction(self, record, cycle):
        block = record.block
        home = self._homes[block[1]]
        if home == self.node:
            self._home_handle_request(
                block, self.node, record.is_write, record.uid, cycle
            )
        else:
            kind = (
                MessageKind.WRITE_REQUEST
                if record.is_write
                else MessageKind.READ_REQUEST
            )
            self._emit(kind, home, block, record.uid)

    # -- cache install / eviction --------------------------------------

    def _install(self, block, state):
        cache = self.cache
        cache.pop(block, None)
        cache[block] = state
        capacity = self._capacity
        if capacity <= 0:
            return
        while len(cache) > capacity:
            victim = None
            outstanding = self._outstanding
            for candidate in cache:
                if candidate == block or candidate in outstanding:
                    continue
                victim = candidate
                break
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, block):
        state = self.cache.pop(block)
        self.stats.cache_eviction(self.node)
        if state is not CacheState.MODIFIED:
            return
        home = self._homes[block[1]]
        if home == self.node:
            self._absorb_writeback(block, self.node, source_retains=False)
            self._schedule(self._memory_cost, _OP_NOP, None, None)
        else:
            self._emit(MessageKind.WRITEBACK, home, block, -1)

    # -- fabric-facing API ---------------------------------------------

    def deliver(self, message):
        self._schedule(self._receive_cost, _OP_HANDLE, message, None)

    def _emit(self, kind, destination, block, transaction):
        message = _Msg(kind, self.node, destination, block, transaction)
        self._schedule(self._send_cost, _OP_LAUNCH, message, None)

    def _launch(self, message, cycle):
        record = self._outstanding.get(message.block)
        if record is not None and record.uid == message.transaction:
            record.messages += 1
        self.stats.message_sent(self.node, message, cycle)
        if message.destination == self.node:
            raise SimulationError(
                f"self-addressed message from node {message.source}; local "
                "transactions must complete without the network"
            )
        self.fabric.inject(message, cycle)

    # -- message handlers ----------------------------------------------

    def _handle(self, message, cycle):
        kind = message.kind
        if kind is MessageKind.READ_REQUEST:
            self._home_handle_request(
                message.block, message.source, False, message.transaction,
                cycle,
            )
        elif kind is MessageKind.DATA_REPLY:
            self._complete_remote_miss(message, cycle)
        elif kind is MessageKind.WRITE_REQUEST:
            self._home_handle_request(
                message.block, message.source, True, message.transaction,
                cycle,
            )
        elif kind is MessageKind.INVALIDATE:
            self.cache.pop(message.block, None)
            self._emit(
                MessageKind.INVALIDATE_ACK, message.source, message.block,
                message.transaction,
            )
        elif kind is MessageKind.INVALIDATE_ACK:
            self._home_handle_ack(message, cycle)
        elif kind is MessageKind.FETCH:
            self._handle_fetch(message, cycle, invalidate=False)
        elif kind is MessageKind.FETCH_INVALIDATE:
            self._handle_fetch(message, cycle, invalidate=True)
        elif kind is MessageKind.WRITEBACK:
            self._absorb_writeback(
                message.block,
                message.source,
                source_retains=message.transaction != -1,
            )
        else:  # pragma: no cover - exhaustive over MessageKind
            raise ProtocolError(f"unhandled message kind {kind!r}")

    # -- home side -----------------------------------------------------

    def _entry(self, block):
        entry = self.directory.get(block)
        if entry is None:
            entry = _Entry()
            self.directory[block] = entry
        return entry

    def _home_handle_request(self, block, requester, is_write, transaction,
                             cycle):
        if self._homes[block[1]] != self.node:
            raise ProtocolError(
                f"node {self.node} received a request for block {block} "
                f"homed at {self._homes[block[1]]}"
            )
        entry = self._entry(block)
        if entry.busy:
            entry.deferred.append((block, requester, is_write, transaction))
            return
        if is_write:
            self._home_write(block, entry, requester, transaction)
        else:
            self._home_read(block, entry, requester, transaction)

    def _home_read(self, block, entry, requester, transaction):
        if entry.state is DirectoryState.MODIFIED and entry.owner != requester:
            if entry.owner == self.node:
                self._install(block, CacheState.SHARED)
                entry.state = DirectoryState.SHARED
                entry.sharers = {self.node, requester}
                entry.owner = None
                self._reply_with_data(block, requester, transaction)
                return
            entry.busy = True
            self._home_txns[block] = _HomeTxn(
                requester, False, transaction, awaiting_writeback=True
            )
            self._emit(MessageKind.FETCH, entry.owner, block, transaction)
            return
        if entry.state is DirectoryState.MODIFIED:
            entry.sharers = {entry.owner}
            entry.owner = None
        entry.state = DirectoryState.SHARED
        entry.sharers.add(requester)
        self._reply_with_data(block, requester, transaction)

    def _home_write(self, block, entry, requester, transaction):
        if entry.state is DirectoryState.MODIFIED and entry.owner != requester:
            if entry.owner == self.node:
                self.cache.pop(block, None)
                entry.owner = requester
                self._reply_with_data(block, requester, transaction)
                return
            entry.busy = True
            self._home_txns[block] = _HomeTxn(
                requester, True, transaction, awaiting_writeback=True
            )
            self._emit(
                MessageKind.FETCH_INVALIDATE, entry.owner, block, transaction
            )
            return
        remote_sharers = {s for s in entry.sharers if s not in (requester,)}
        if self.node in remote_sharers:
            self.cache.pop(block, None)
            remote_sharers.discard(self.node)
        if remote_sharers:
            entry.busy = True
            self._home_txns[block] = _HomeTxn(
                requester, True, transaction,
                pending_acks=len(remote_sharers),
            )
            for sharer in remote_sharers:
                self._emit(MessageKind.INVALIDATE, sharer, block, transaction)
            return
        self._grant_write(block, entry, requester, transaction)

    def _grant_write(self, block, entry, requester, transaction):
        entry.state = DirectoryState.MODIFIED
        entry.sharers = set()
        entry.owner = requester
        self._reply_with_data(block, requester, transaction)

    def _reply_with_data(self, block, requester, transaction):
        entry = self._entry(block)
        entry.busy = True
        if requester == self.node:
            self._schedule(self._memory_cost, _OP_FINISH, block, None)
        else:
            self._schedule(
                self._memory_cost, _OP_REPLY,
                (requester, block, transaction), None,
            )

    def _home_handle_ack(self, message, cycle):
        home_txn = self._home_txns.get(message.block)
        if home_txn is None or home_txn.pending_acks <= 0:
            raise ProtocolError(
                f"unexpected invalidate ack for block {message.block} at "
                f"node {self.node}"
            )
        home_txn.pending_acks -= 1
        if home_txn.pending_acks > 0:
            return
        entry = self._entry(message.block)
        del self._home_txns[message.block]
        entry.busy = False
        self._grant_write(
            message.block, entry, home_txn.requester, home_txn.uid
        )
        self._run_deferred(entry)

    def _absorb_writeback(self, block, source, source_retains):
        home_txn = self._home_txns.get(block)
        entry = self._entry(block)
        if home_txn is not None and home_txn.awaiting_writeback:
            del self._home_txns[block]
            entry.busy = False
            if home_txn.is_write:
                entry.state = DirectoryState.MODIFIED
                entry.sharers = set()
                entry.owner = home_txn.requester
            else:
                entry.state = DirectoryState.SHARED
                entry.sharers = {home_txn.requester}
                if source_retains:
                    entry.sharers.add(source)
                entry.owner = None
            self._reply_with_data(block, home_txn.requester, home_txn.uid)
            self._run_deferred(entry)
            return
        if home_txn is not None:
            raise ProtocolError(
                f"writeback for block {block} at node {self.node} collided "
                "with a non-fetch transaction"
            )
        if entry.state is not DirectoryState.MODIFIED or entry.owner != source:
            raise ProtocolError(
                f"eviction writeback for block {block} from node {source} "
                f"but directory says {entry.state.value}/owner={entry.owner}"
            )
        entry.state = DirectoryState.UNOWNED
        entry.sharers = set()
        entry.owner = None
        self._run_deferred(entry)

    def _run_deferred(self, entry):
        # Pop at schedule time, exactly like the serial controller: the
        # popped request runs even if the entry re-busies meanwhile (it
        # then re-defers itself to the back of the queue).
        if not entry.deferred or entry.busy:
            return
        item = entry.deferred.popleft()
        self._schedule(self._request_cost, _OP_DEFER, item, entry)

    # -- remote sharer / owner side ------------------------------------

    def _handle_fetch(self, message, cycle, invalidate):
        state = self.cache.get(message.block, CacheState.INVALID)
        if state is CacheState.INVALID:
            return
        if state is not CacheState.MODIFIED:
            raise ProtocolError(
                f"fetch at node {self.node} for block {message.block} in "
                f"state {state.value} (expected M or evicted)"
            )
        if invalidate:
            self.cache.pop(message.block, None)
        else:
            self._install(message.block, CacheState.SHARED)
        self._emit(
            MessageKind.WRITEBACK, message.source, message.block,
            message.transaction,
        )

    # -- requester completion ------------------------------------------

    def _complete_remote_miss(self, message, cycle):
        record = self._outstanding.pop(message.block, None)
        if record is None:
            raise ProtocolError(
                f"data reply for block {message.block} with no outstanding "
                f"request at node {self.node}"
            )
        state = CacheState.MODIFIED if record.is_write else CacheState.SHARED
        self._install(message.block, state)
        self.stats.transaction_completed(
            self.node, record.issued_at, cycle, remote=True
        )
        record.callback(cycle)
        self._release_waiters(record, state, cycle)

    def _finish_local(self, block, cycle):
        record = self._outstanding.pop(block, None)
        if record is None:
            raise ProtocolError(
                f"local completion for block {block} with no outstanding "
                f"request at node {self.node}"
            )
        state = CacheState.MODIFIED if record.is_write else CacheState.SHARED
        self._install(block, state)
        entry = self._entry(block)
        entry.busy = False
        remote = record.messages > 0
        self.stats.transaction_completed(
            self.node, record.issued_at, cycle, remote=remote
        )
        record.callback(cycle)
        self._run_deferred(entry)
        self._release_waiters(record, state, cycle)

    def _release_waiters(self, record, state, cycle):
        for is_write, issued_at, callback in record.waiters:
            if is_write and state is not CacheState.MODIFIED:
                self.request(record.block, True, cycle, callback)
                continue
            callback(cycle)


# ----------------------------------------------------------------------
# Lean cut-through fabric with shared geometry.
# ----------------------------------------------------------------------

#: Head-eligibility sentinel for an empty channel queue (matches
#: repro.sim.cut_through._NEVER).
_NEVER = 1 << 62


class FabricGeometry:
    """Read-only cut-through channel geometry, shared across a batch.

    Channel enumeration order is identical to
    :class:`~repro.sim.cut_through.CutThroughFabric` (injection,
    ejection, then links in node/dimension/direction order) — it defines
    telemetry snapshot layout and ``link_flits`` keys, so sharing it
    guarantees batched snapshots align with serial ones.  E-cube routes
    are memoized here once for all replications.
    """

    __slots__ = ("torus", "channels", "link_of", "link_keys", "_route_cache",
                 "_channel_index")

    def __init__(self, torus: Torus):
        self.torus = torus
        self._channel_index: Dict[Tuple, int] = {}
        self.link_keys: List[Tuple[int, int, int]] = []
        link_of: List[int] = []
        for node in torus.nodes():
            self._channel_index[("inj", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            self._channel_index[("ej", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            for dim in range(torus.dimensions):
                for step in (1, -1):
                    self._channel_index[("link", node, dim, step)] = len(
                        link_of
                    )
                    link_of.append(len(self.link_keys))
                    self.link_keys.append((node, dim, step))
        self.link_of = link_of
        self.channels = len(link_of)
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}

    def route_ids(self, source: int, destination: int) -> List[int]:
        pair = (source, destination)
        route = self._route_cache.get(pair)
        if route is None:
            index = self._channel_index
            torus = self.torus
            route = [index[("inj", source)]]
            for hop in torus.route_hops(source, destination):
                route.append(index[("link",) + hop])
            route.append(index[("ej", destination)])
            self._route_cache[pair] = route
        return route


class BatchFabric:
    """Per-replication cut-through fabric state over shared geometry.

    A lean port of :class:`~repro.sim.cut_through.CutThroughFabric`:
    same grant conditions, same pending activation order, same delivery
    scheduling, but transits are plain 4-lists, deliveries are handled
    inline (stats + controller dispatch without the machine's callback
    hop), and the geometry/route tables are shared across the batch.
    """

    __slots__ = (
        "geometry", "_stats", "_controllers", "_free_at", "_head_eligible",
        "_queues", "_link_flit_counts", "_pending", "_deliveries",
        "_delivery_count", "_in_flight", "delivered_count", "_telemetry",
    )

    def __init__(self, geometry: FabricGeometry):
        self.geometry = geometry
        self._stats = None
        self._controllers = None
        count = geometry.channels
        self._free_at = [0] * count
        self._head_eligible = [_NEVER] * count
        self._queues: List = [deque() for _ in range(count)]
        self._link_flit_counts = [0] * len(geometry.link_keys)
        self._pending: List[int] = []
        self._deliveries: Dict[int, List] = {}
        self._delivery_count = 0
        self._in_flight = 0
        self.delivered_count = 0
        self._telemetry: Optional[FabricTelemetry] = None

    def bind(self, stats, controllers) -> None:
        """Wire the delivery sinks (stats and per-node controllers)."""
        self._stats = stats
        self._controllers = controllers

    def attach_telemetry(self, config: TelemetryConfig) -> FabricTelemetry:
        if self._telemetry is not None:
            raise SimulationError("telemetry already attached to this fabric")
        geometry = self.geometry
        self._telemetry = FabricTelemetry(
            config=config,
            channels=geometry.channels,
            link_of=geometry.link_of,
            link_keys=geometry.link_keys,
            depth_probe=self._queue_depths,
            label="cut_through",
        )
        return self._telemetry

    def _queue_depths(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def inject(self, message, cycle: int) -> None:
        message.injected_at = cycle
        route = self.geometry.route_ids(message.source, message.destination)
        transit = [message, route, 0, 0]  # message, route, next_hop, wait
        self._in_flight += 1
        channel = route[0]
        queue = self._queues[channel]
        if not queue:
            self._pending.append(channel)
            self._head_eligible[channel] = cycle
        queue.append((cycle, transit))

    def tick(self, cycle: int) -> None:
        # Same ordering as CutThroughFabric.tick: telemetry epoch roll,
        # then deliveries (whose reply injections land on the old
        # pending list with same-cycle eligibility), then the grant walk.
        telemetry = self._telemetry
        if telemetry is not None and cycle >= telemetry.epoch_end:
            telemetry.roll_to(cycle)
        if self._delivery_count:
            arrivals = self._deliveries.pop(cycle, None)
            if arrivals:
                self._delivery_count -= len(arrivals)
                stats = self._stats
                controllers = self._controllers
                for transit in arrivals:
                    message = transit[0]
                    message.delivered_at = cycle
                    self.delivered_count += 1
                    self._in_flight -= 1
                    if telemetry is not None:
                        telemetry.record_delivery(cycle - message.injected_at)
                    stats.message_delivered(
                        message, len(transit[1]) - 2, transit[3], cycle
                    )
                    controllers[message.destination].deliver(message)
        pending = self._pending
        if not pending:
            return
        free_at = self._free_at
        head_eligible = self._head_eligible
        queues = self._queues
        link_of = self.geometry.link_of
        link_counts = self._link_flit_counts
        new_pending: List[int] = []
        append = new_pending.append
        self._pending = new_pending
        for channel in pending:
            if free_at[channel] > cycle or head_eligible[channel] > cycle:
                append(channel)
                continue
            queue = queues[channel]
            transit = queue.popleft()[1]
            head_eligible[channel] = queue[0][0] if queue else _NEVER
            # Grant (inline port of CutThroughFabric._grant).
            message = transit[0]
            flits = message.flits
            until = cycle + flits
            free_at[channel] = until
            if telemetry is not None:
                telemetry.channel_flits[channel] += flits
            route = transit[1]
            hop = transit[2]
            if hop == 0:
                transit[3] = cycle - message.injected_at
            else:
                link = link_of[channel]
                if link >= 0:
                    link_counts[link] += flits
            hop += 1
            transit[2] = hop
            if hop >= len(route):
                slot = self._deliveries.get(until)
                if slot is None:
                    self._deliveries[until] = [transit]
                else:
                    slot.append(transit)
                self._delivery_count += 1
            else:
                nxt = route[hop]
                next_queue = queues[nxt]
                if not next_queue:
                    append(nxt)
                    head_eligible[nxt] = cycle + 1
                next_queue.append((cycle + 1, transit))
            if queue:
                append(channel)

    # -- introspection -------------------------------------------------

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        keys = self.geometry.link_keys
        return {
            keys[i]: count
            for i, count in enumerate(self._link_flit_counts)
            if count
        }

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def quiescent(self) -> bool:
        return self._in_flight == 0

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        earliest = min(self._deliveries) if self._delivery_count else None
        if self._pending:
            free_at = self._free_at
            head_eligible = self._head_eligible
            for channel in self._pending:
                at = free_at[channel]
                eligible = head_eligible[channel]
                if eligible > at:
                    at = eligible
                if at <= cycle:
                    return cycle
                if earliest is None or at < earliest:
                    earliest = at
        return earliest


# ----------------------------------------------------------------------
# Compiled-core bindings.
# ----------------------------------------------------------------------
#
# When the replication batch runs cut-through without telemetry, the
# controller + fabric + per-cycle loop above can run inside the
# compiled core (repro.sim._batchcore.c, a transliteration of the
# Python classes).  Python keeps the processors — their RNG draw order
# defines bit-exactness — and talks to the core through two small
# shims: a per-(rep, node) controller proxy for the processor-facing
# calls, and a per-rep fabric view for link-flit snapshots.


def _core_flits_compatible() -> bool:
    """The core hard-codes control/data flit sizes; verify they match."""
    for kind, flits in _FLITS_BY_KIND.items():
        expected = 24 if kind in (
            MessageKind.DATA_REPLY, MessageKind.WRITEBACK
        ) else 8
        if flits != expected:
            return False
    return True


class _CoreController:
    """Processor-facing view of one (replication, node) core controller."""

    __slots__ = ("node", "_machine", "_rep", "_lib", "_core")

    def __init__(self, machine: "BatchMachine", rep_index: int, node: int):
        self.node = node
        self._machine = machine
        self._rep = rep_index
        self._lib = machine._lib
        self._core = machine._core

    def is_hit(self, block, is_write):
        machine = self._machine
        block_id = machine._block_ids.get(block)
        if block_id is None:
            block_id = machine._intern_block(block)
        return bool(
            self._lib.bc_is_hit(
                self._core, self._rep, self.node, block_id, is_write
            )
        )

    def record_access(self, block):
        block_id = self._machine._block_ids.get(block)
        if block_id is not None:
            self._lib.bc_record_access(
                self._core, self._rep, self.node, block_id
            )

    def request(self, block, is_write, cycle, callback):
        machine = self._machine
        block_id = machine._block_ids.get(block)
        if block_id is None:
            block_id = machine._intern_block(block)
        rep = machine._reps[self._rep]
        handle = rep.next_handle
        rep.next_handle = handle + 1
        rep.callbacks[handle] = callback
        self._lib.bc_request(
            self._core, self._rep, self.node, block_id, bool(is_write),
            cycle, handle,
        )


class _CoreFabricView:
    """Per-replication fabric introspection backed by core counters."""

    __slots__ = ("_machine", "_rep")

    def __init__(self, machine: "BatchMachine", rep_index: int):
        self._machine = machine
        self._rep = rep_index

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        machine = self._machine
        buf = machine._link_buf
        machine._lib.bc_get_link_flits(machine._core, self._rep, buf)
        keys = machine._geometry.link_keys
        return {
            keys[i]: buf[i] for i in range(len(keys)) if buf[i]
        }

    @property
    def in_flight(self) -> int:
        machine = self._machine
        return machine._lib.bc_in_flight(machine._core, self._rep)


# ----------------------------------------------------------------------
# Lockstep driver.
# ----------------------------------------------------------------------


def _controller_node(controller) -> int:
    return controller.node


class _Rep:
    """Per-replication machine state tracked by the lockstep driver."""

    __slots__ = (
        "index", "seed", "cycle", "processors", "controllers", "stats",
        "fabric", "fabric_tick", "fabric_next", "telemetry", "heap", "woken",
        "woken_flag", "last_tick", "engine_ready", "ctrl_wake",
        "idle_before", "switches_before", "callbacks", "next_handle",
    )


class BatchMachine:
    """R independent replications of one machine config, run in lockstep.

    Construction mirrors ``Machine(config.with_seed(seed), mapping,
    programs)`` per seed — per-replication program deep copies, per-node
    RNG streams spawned from each seed — with the geometry, route cache,
    and thread-home table shared read-only across replications.
    :meth:`run` is single-use and returns per-seed summaries in seed
    order, each bit-identical to the serial machine's.
    """

    def __init__(
        self,
        config: SimulationConfig,
        mapping: Mapping,
        programs: Sequence[Sequence[ThreadProgram]],
        seeds: Sequence[int],
        telemetry: Optional[TelemetryConfig] = None,
    ):
        seeds = tuple(int(seed) for seed in seeds)
        if not seeds:
            raise ParameterError("need at least one replication seed")
        if config.switching not in ("cut_through", "wormhole"):
            raise SimulationError(
                f"batched replication supports the cut_through and wormhole "
                f"fabrics; got switching={config.switching!r}"
            )
        self.config = config
        self.seeds = seeds
        self.torus = Torus(radix=config.radix, dimensions=config.dimensions)
        nodes = self.torus.node_count
        # Validate the mapping/programs combination once, with the same
        # errors a solo Machine raises.
        place_programs(config, mapping, programs, nodes)
        homes = [mapping.processor_of(t) for t in range(mapping.threads)]
        geometry = (
            FabricGeometry(self.torus)
            if config.switching == "cut_through"
            else None
        )
        self._geometry = geometry
        self._homes = homes
        self._core = None
        self._ffi = None
        self._lib = None
        self._block_ids: Dict[Tuple[int, int], int] = {}
        mode = batchcore.engine_mode()
        if (
            geometry is not None
            and telemetry is None
            and mode != "py"
            and _core_flits_compatible()
        ):
            loaded = batchcore.load()
            if loaded is not None:
                ffi, lib = loaded
                core = lib.bc_create(
                    len(seeds), nodes, config.dimensions, config.radix,
                    config.cache_lines,
                    config.to_network(config.request_cycles),
                    config.to_network(config.receive_cycles),
                    config.to_network(config.send_cycles),
                    config.to_network(config.memory_cycles),
                )
                if core != ffi.NULL:
                    self._ffi = ffi
                    self._lib = lib
                    self._core = ffi.gc(core, lib.bc_destroy)
                    self._link_buf = ffi.new(
                        "long long[]", len(geometry.link_keys)
                    )
                    self._node_buf = ffi.new("long long[]", nodes)
                    self._counter_buf = ffi.new("long long[12]")
                    self._double_buf = ffi.new("double[1]")
            if self._core is None and mode == "c":
                raise SimulationError(
                    "REPRO_BATCH_ENGINE=c but the compiled batch core is "
                    f"unavailable: {batchcore.load_failure() or 'not built'}"
                )
        #: Selected engine for this batch: ``"c"`` (compiled core) or
        #: ``"py"`` (pure-Python reference path).
        self.engine = "c" if self._core is not None else "py"
        self._reps: List[_Rep] = []
        self._cycle = 0
        self._ran = False
        for index, seed in enumerate(seeds):
            rep = _Rep()
            rep.index = index
            rep.seed = seed
            rep.cycle = 0
            rep.stats = MachineStats(nodes=nodes)
            rep.engine_ready = []
            rep.ctrl_wake = []
            rep.heap = []
            rep.woken = []
            rep.woken_flag = [False] * nodes
            rep.last_tick = [-1] * nodes
            rep.callbacks = {}
            rep.next_handle = 0
            if self._core is not None:
                rep.controllers = [
                    _CoreController(self, index, node)
                    for node in range(nodes)
                ]
                fabric = _CoreFabricView(self, index)
                rep.fabric = fabric
                rep.fabric_tick = None
                rep.fabric_next = None
                rep.telemetry = None
            else:
                rep.controllers = [
                    BatchController(
                        node=node,
                        config=config,
                        homes=homes,
                        stats=rep.stats,
                        wake=rep.engine_ready.append,
                    )
                    for node in range(nodes)
                ]
                if geometry is not None:
                    fabric = BatchFabric(geometry)
                    fabric.bind(rep.stats, rep.controllers)
                else:
                    fabric = TorusFabric(
                        self.torus, on_delivery=self._make_deliver(rep)
                    )
                rep.fabric = fabric
                rep.fabric_tick = fabric.tick
                rep.fabric_next = fabric.next_event_cycle
                for controller in rep.controllers:
                    controller.fabric = fabric
                rep.telemetry = (
                    fabric.attach_telemetry(telemetry)
                    if telemetry is not None
                    else None
                )
            # Per-replication program copies (programs are stateful) and
            # RNG streams, exactly as the serial replication path builds
            # them from config.with_seed(seed).
            _, programs_at = place_programs(
                config, mapping, copy.deepcopy(programs), nodes
            )
            node_seeds = np.random.SeedSequence(seed).spawn(nodes)
            rep.processors = [
                Processor(
                    node=node,
                    config=config,
                    controller=rep.controllers[node],
                    programs=programs_at[node],
                    stats=rep.stats,
                    seed_seq=node_seeds[node],
                )
                for node in range(nodes)
            ]
            # Processor wake calendar (port of MachineEngine.__init__ at
            # cycle 0): every fresh processor is mid-run, so it lands on
            # the heap; the wake listener catches later idle wake-ups.
            wake = self._make_wake(rep)
            for processor in rep.processors:
                processor._wake_listener = wake
                distance = processor.next_event_ticks()
                if distance is not None:
                    heappush(rep.heap, (distance - 1, processor.node))
                elif processor._ready_count:  # pragma: no cover - defensive
                    rep.woken_flag[processor.node] = True
                    rep.woken.append(processor.node)
            self._reps.append(rep)

    # -- compiled-core plumbing ----------------------------------------

    def _intern_block(self, block: Tuple[int, int]) -> int:
        """Assign a dense core id to a block tuple (instance, thread)."""
        block_id = self._lib.bc_add_block(
            self._core, self._homes[block[1]]
        )
        self._block_ids[block] = block_id
        return block_id

    def _merge_core_stats(self, rep: _Rep) -> None:
        """Copy the core's measuring-gated counters into rep.stats."""
        lib = self._lib
        ints = self._counter_buf
        dbl = self._double_buf
        lib.bc_get_counters(self._core, rep.index, ints, dbl)
        stats = rep.stats
        stats.messages_sent = ints[0]
        stats.message_flits = ints[1]
        stats.message_flits_squared = ints[2]
        stats.messages_delivered = ints[3]
        stats.message_latency_total = ints[4]
        stats.message_hops_total = ints[5]
        stats.hop_latency_count = ints[6]
        stats.remote_started = ints[7]
        stats.remote_completed = ints[8]
        stats.local_completed = ints[9]
        stats.transaction_latency_total = ints[10]
        stats.cache_evictions_count = ints[11]
        stats.hop_latency_total = dbl[0]
        buf = self._node_buf
        lib.bc_get_per_node_sent(self._core, rep.index, buf)
        stats.per_node_messages = {
            node: buf[node]
            for node in range(self.torus.node_count)
            if buf[node]
        }

    @staticmethod
    def _make_wake(rep: _Rep):
        woken = rep.woken
        flag = rep.woken_flag

        def on_wake(processor):
            if (
                processor._active is None
                and processor._switch_remaining == 0
                and not flag[processor.node]
            ):
                flag[processor.node] = True
                woken.append(processor.node)

        return on_wake

    @staticmethod
    def _make_deliver(rep: _Rep):
        """Wormhole-kernel delivery callback (cycle read off the rep)."""

        def deliver(worm):
            message = worm.message
            rep.stats.message_delivered(
                message, worm.hops, worm.source_wait, rep.cycle
            )
            rep.controllers[message.destination].deliver(message)

        return deliver

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------

    def run(
        self,
        warmup: Optional[int] = None,
        measure: Optional[int] = None,
    ) -> List[MeasurementSummary]:
        """Warm up, measure, and summarize every replication."""
        if self._ran:
            raise SimulationError(
                "BatchMachine.run is single-use; build a new instance per "
                "batch"
            )
        self._ran = True
        config = self.config
        warmup = config.warmup_network_cycles if warmup is None else warmup
        measure = config.measure_network_cycles if measure is None else measure
        reps = self._reps
        with obs.span(
            "sim.batch",
            reps=len(reps),
            warmup=warmup,
            measure=measure,
            nodes=self.torus.node_count,
        ):
            self._run_window(warmup)
            for rep in reps:
                rep.idle_before = [p.idle_cycles for p in rep.processors]
                rep.switches_before = sum(
                    p.switch_count for p in rep.processors
                )
                rep.stats.start_measuring(self._cycle, rep.fabric.link_flits)
                if self._core is not None:
                    self._lib.bc_start_measuring(self._core, rep.index)
            self._run_window(measure)
            for rep in reps:
                rep.stats.stop_measuring(self._cycle)
                if self._core is not None:
                    self._merge_core_stats(rep)
        end = self._cycle
        physical_links = self.torus.node_count * 2 * self.torus.dimensions
        summaries = []
        for rep in reps:
            for processor in rep.processors:
                processor._wake_listener = None
            if rep.telemetry is not None:
                rep.telemetry.finalize(end)
            rep.stats.idle_cycles = sum(
                p.idle_cycles - before
                for p, before in zip(rep.processors, rep.idle_before)
            )
            rep.stats.switches = (
                sum(p.switch_count for p in rep.processors)
                - rep.switches_before
            )
            summary = rep.stats.summary(
                link_flits=rep.fabric.link_flits,
                physical_links=physical_links,
                network_speedup=config.network_speedup,
            )
            if rep.telemetry is not None and rep.telemetry.finalized:
                summary.telemetry = rep.telemetry.snapshot()
            summaries.append(summary)
        return summaries

    def _run_window(self, cycles: int) -> None:
        if self._core is not None:
            self._run_window_core(cycles)
        else:
            self._run_window_py(cycles)

    def _run_window_core(self, cycles: int) -> None:
        """Core-backed window: Python processors, C controllers/fabric.

        The per-cycle ctrl/fabric body lives in ``bc_advance``, which
        runs this replication up to the next *processor* boundary (the
        earliest processor-heap due tick or post-wake boundary) and
        additionally returns early whenever a cycle completed a memory
        transaction, so the Python side can run the completion
        callbacks — order-preserved, processor-state-only — and
        recompute the boundary.  Cycles the serial engine would visit
        idly are skipped inside the core with the same guards as the
        Python engine (ready controllers, controller wake heap, fabric
        horizon).
        """
        if cycles <= 0:
            return
        lib = self._lib
        core = self._core
        start = self._cycle
        end = start + cycles
        speedup = self.config.network_speedup
        reps = self._reps
        merged = [(start, index) for index in range(len(reps))]
        while merged and merged[0][0] < end:
            cycle, index = heappop(merged)
            rep = reps[index]
            rep.cycle = cycle
            heap = rep.heap
            if cycle % speedup == 0:
                tick = cycle // speedup
                batch: Optional[List[int]] = None
                while heap and heap[0][0] == tick:
                    node = heappop(heap)[1]
                    if batch is None:
                        batch = [node]
                    else:
                        batch.append(node)
                woken = rep.woken
                if woken:
                    if batch is None:
                        woken.sort()
                        batch = woken[:]
                    else:
                        batch.extend(woken)
                        batch.sort()
                    flag = rep.woken_flag
                    for node in woken:
                        flag[node] = False
                    woken.clear()
                if batch is not None:
                    processors = rep.processors
                    last_tick = rep.last_tick
                    for node in batch:
                        processor = processors[node]
                        gap = tick - last_tick[node] - 1
                        if gap > 0:
                            processor.skip_ticks(gap)
                        processor.tick(cycle)
                        last_tick[node] = tick
                        distance = processor.next_event_ticks()
                        if distance is not None:
                            heappush(heap, (tick + distance, node))
            # Advance ctrl + fabric in C up to the next processor
            # boundary (heap due or first post-wake boundary).
            stop = end
            if heap:
                due_at = heap[0][0] * speedup
                if due_at < stop:
                    stop = due_at
            if rep.woken:
                due_at = cycle + 1
                rem = due_at % speedup
                if rem:
                    due_at += speedup - rem
                if due_at < stop:
                    stop = due_at
            nxt = lib.bc_advance(core, index, stop)
            if nxt < 0:
                batchcore.raise_error(self._ffi, lib, core)
            count = lib.bc_comp_count(core, index)
            if count:
                buf = lib.bc_comp_ptr(core, index)
                pop = rep.callbacks.pop
                for i in range(count):
                    pop(buf[2 * i])(buf[2 * i + 1])
                lib.bc_comp_clear(core, index)
            if nxt < end:
                heappush(merged, (nxt, index))
        self._cycle = end
        tick = (end - 1) // speedup
        for rep in reps:
            last_tick = rep.last_tick
            for processor in rep.processors:
                node = processor.node
                gap = tick - last_tick[node]
                if gap > 0:
                    processor.skip_ticks(gap)
                    last_tick[node] = tick

    def _run_window_py(self, cycles: int) -> None:
        """Advance every replication ``cycles`` network cycles.

        Per replication this is an exact port of
        :meth:`~repro.sim.engine.MachineEngine.run_window`; the merged
        heap holds one ``(next_cycle, rep_index)`` entry per replication
        so quiescent spans of one replication cost nothing while another
        is stepped cycle by cycle.
        """
        if cycles <= 0:
            return
        start = self._cycle
        end = start + cycles
        speedup = self.config.network_speedup
        reps = self._reps
        merged = [(start, index) for index in range(len(reps))]
        while merged and merged[0][0] < end:
            cycle, index = heappop(merged)
            rep = reps[index]
            rep.cycle = cycle
            if cycle % speedup == 0:
                tick = cycle // speedup
                heap = rep.heap
                batch: Optional[List[int]] = None
                while heap and heap[0][0] == tick:
                    node = heappop(heap)[1]
                    if batch is None:
                        batch = [node]
                    else:
                        batch.append(node)
                woken = rep.woken
                if woken:
                    if batch is None:
                        woken.sort()
                        batch = woken[:]
                    else:
                        batch.extend(woken)
                        batch.sort()
                    flag = rep.woken_flag
                    for node in woken:
                        flag[node] = False
                    woken.clear()
                if batch is not None:
                    processors = rep.processors
                    last_tick = rep.last_tick
                    for node in batch:
                        processor = processors[node]
                        gap = tick - last_tick[node] - 1
                        if gap > 0:
                            processor.skip_ticks(gap)
                        processor.tick(cycle)
                        last_tick[node] = tick
                        distance = processor.next_event_ticks()
                        if distance is not None:
                            heappush(heap, (tick + distance, node))
            # Controllers with runnable engine work: those woken this
            # cycle plus those whose occupancy ends now, in node order
            # (port of Machine._tick_controllers).
            wake = rep.ctrl_wake
            due: Optional[List] = None
            while wake and wake[0][0] == cycle:
                controller = heappop(wake)[2]
                if due is None:
                    due = [controller]
                else:
                    due.append(controller)
            ready = rep.engine_ready
            if ready:
                batch = ready[:] if due is None else due + ready
                ready.clear()  # keep list identity: controllers hold .append
            else:
                batch = due
            if batch is not None:
                if len(batch) > 1:
                    batch.sort(key=_controller_node)
                for controller in batch:
                    controller._notified = False
                    controller.tick(cycle)
                    if controller._current is not None:
                        heappush(
                            wake,
                            (controller._done_at, controller.node, controller),
                        )
            rep.fabric_tick(cycle)
            # Quiescence fast-forward for this replication (port of the
            # engine's jump logic; `ready`/`woken` may have refilled
            # during the fabric tick).
            nxt = cycle + 1
            if not ready and not rep.woken:
                horizon = rep.fabric_next(nxt)
                if horizon is None or horizon > nxt:
                    target = end
                    heap = rep.heap
                    if heap:
                        due_at = heap[0][0] * speedup
                        if due_at < target:
                            target = due_at
                    if wake and wake[0][0] < target:
                        target = wake[0][0]
                    if horizon is not None and horizon < target:
                        target = horizon
                    if target > nxt:
                        nxt = target
            if nxt < end:
                heappush(merged, (nxt, index))
        self._cycle = end
        # Flush processors to the window's last boundary (port of
        # MachineEngine._flush): pure deferred countdown accounting.
        tick = (end - 1) // speedup
        for rep in reps:
            last_tick = rep.last_tick
            for processor in rep.processors:
                node = processor.node
                gap = tick - last_tick[node]
                if gap > 0:
                    processor.skip_ticks(gap)
                    last_tick[node] = tick


def run_batch(
    config: SimulationConfig,
    mapping: Mapping,
    programs: Sequence[Sequence[ThreadProgram]],
    seeds: Sequence[int],
    warmup: Optional[int] = None,
    measure: Optional[int] = None,
    telemetry: Optional[TelemetryConfig] = None,
) -> List[MeasurementSummary]:
    """Run ``len(seeds)`` lockstep replications; summaries in seed order.

    Each summary (and telemetry snapshot, with a ``telemetry`` config)
    is bit-identical to the serial
    ``Machine(config.with_seed(seed), mapping, programs).run(...)`` for
    the same seed.  Programs are deep-copied per replication internally;
    callers pass the pristine originals.
    """
    machine = BatchMachine(
        config, mapping, programs, seeds, telemetry=telemetry
    )
    return machine.run(warmup=warmup, measure=measure)

"""Per-channel fabric telemetry: epoch-sampled congestion instrumentation.

The analytical model speaks in one number — average channel utilization ρ
— while the fabric knows every channel's actual traffic.  This module
closes that gap with an epoch-sampled instrumentation layer shared by
all three fabrics (:class:`repro.sim.kernel.FabricKernel`,
:class:`repro.sim.reference.ReferenceTorusFabric`, and
:class:`repro.sim.cut_through.CutThroughFabric`):

* **busy-flit-cycle counters** — every channel grant books the message's
  ``flits`` against the granted channel (the same acquisition-time
  accounting the fabrics already do per physical link), so a channel's
  busy total over a window divided by the window length is its measured
  utilization ρ;
* **FIFO queue-depth sampling** — at each epoch boundary the per-channel
  waiting-worm counts are sampled, which is the raw signal behind the
  tree-saturation onset detector;
* **end-to-end worm latency histograms** — injection→delivery cycles per
  message, accumulated into a fixed-bucket
  :class:`~repro.obs.metrics.Histogram` so distributions merge across
  replications and pool workers bucket-for-bucket.

**Epoch model.**  Epoch ``e`` covers cycles ``[e*L, (e+1)*L)`` for epoch
length ``L``.  The fabric's ``tick`` rolls the open epoch *before*
advancing the crossing cycle, so an epoch boundary always observes the
state at the end of cycle ``e*L - 1`` — identical between the kernel and
the reference by the parity contract, which is what lets the telemetry
parity tests pin busy matrices, depth matrices, and latency histograms
across implementations.  :meth:`FabricTelemetry.finalize` closes the
trailing partial epoch, so the busy matrix always sums to the exact
per-channel flit totals.

**Cost model.**  Telemetry is attached per fabric instance and the hot
loop pays one ``is None`` branch per tick plus one per grant when it is
off (gated ≤ 2% on the uniform workload by the benchmark suite's
``uniform_telemetry`` row and the CI ``repro-bench compare`` step).
When on, each grant costs one list increment and each epoch boundary one
numpy copy + queue-depth sweep; everything is accumulated per fabric, so
simulation results never depend on telemetry being attached.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.obs.metrics import Histogram

__all__ = [
    "WORM_LATENCY_BUCKETS",
    "LATENCY_METRIC",
    "TelemetryConfig",
    "FabricTelemetry",
    "TelemetrySummary",
    "SaturationReport",
    "detect_saturation",
    "merge_snapshots",
    "write_telemetry_jsonl",
    "emit_trace_counters",
    "PROBE_WORKLOADS",
    "ProbeResult",
    "probe_schedule",
    "run_probe",
]

#: Worm latency bucket bounds, in network cycles.  Fixed so histograms
#: from different seeds, fabrics, and pool workers merge exactly.
WORM_LATENCY_BUCKETS: Tuple[float, ...] = (
    4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048, 4096,
)

#: Registry name the per-run latency histogram is folded into at
#: finalize time (what pool workers ship back for jobs-invariant merge).
LATENCY_METRIC = "sim.telemetry.worm_latency"

#: Snapshot schema revision.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class TelemetryConfig:
    """Parameters of one telemetry attachment.

    ``epoch_cycles`` is the sampling period ``L``; ``latency_buckets``
    the histogram bounds (network cycles); ``depth_threshold`` the
    queue depth at which a channel counts as saturated for the onset
    detector.
    """

    epoch_cycles: int = 256
    latency_buckets: Tuple[float, ...] = WORM_LATENCY_BUCKETS
    depth_threshold: int = 8

    def __post_init__(self) -> None:
        if self.epoch_cycles < 1:
            raise ParameterError(
                f"epoch_cycles must be >= 1, got {self.epoch_cycles!r}"
            )
        if self.depth_threshold < 1:
            raise ParameterError(
                f"depth_threshold must be >= 1, got {self.depth_threshold!r}"
            )

    def as_dict(self) -> Dict:
        """Manifest-facing parameters (recorded with traced runs)."""
        return {
            "epoch_cycles": self.epoch_cycles,
            "latency_buckets": list(self.latency_buckets),
            "depth_threshold": self.depth_threshold,
        }


class FabricTelemetry:
    """Live per-channel instrumentation attached to one fabric.

    Built by the fabric's ``attach_telemetry``; the fabric bumps
    ``channel_flits[channel]`` at every grant, calls :meth:`roll_to`
    when a tick crosses ``epoch_end``, and :meth:`record_delivery` at
    each delivery.  The driver (``Machine.run`` or the probe loop)
    calls :meth:`finalize` once, after the last tick.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        channels: int,
        link_of: Sequence[int],
        link_keys: Sequence[Tuple[int, int, int]],
        depth_probe: Callable[[], Sequence[int]],
        label: str = "fabric",
    ):
        self.config = config
        self.label = label
        self.channels = channels
        self._link_of = list(link_of)
        self._link_keys = [tuple(key) for key in link_keys]
        self._depth_probe = depth_probe
        #: Hot-path counter: the fabric grant loop does one scalar
        #: ``channel_flits[channel] += flits`` per grant.
        self.channel_flits: List[int] = [0] * channels
        self._last_flits = np.zeros(channels, dtype=np.int64)
        self._epoch_busy: List[np.ndarray] = []
        self._epoch_depth: List[np.ndarray] = []
        self._epoch_starts: List[int] = []
        self._epoch_lengths: List[int] = []
        self._epoch_delivered: List[int] = []
        self._delivered = 0
        self._delivered_at_close = 0
        self._latency = Histogram(
            LATENCY_METRIC, config.latency_buckets,
            help="end-to-end worm latency, network cycles",
        )
        self._epoch_start = 0
        #: Cycle at which the open epoch closes; the fabric tick's guard
        #: compares against this every cycle while telemetry is attached.
        self.epoch_end = config.epoch_cycles
        self.finalized = False
        self.total_cycles = 0

    # ------------------------------------------------------------------
    # Fabric-facing hooks.
    # ------------------------------------------------------------------

    def record_delivery(self, latency: int) -> None:
        """Book one delivered worm's injection→delivery latency."""
        self._latency.observe(latency)
        self._delivered += 1

    def roll_to(self, cycle: int) -> None:
        """Close every epoch that ends at or before ``cycle``.

        Called by the fabric tick when ``cycle >= epoch_end`` — before
        the cycle's own grants, so the boundary samples end-of-previous-
        cycle state.  Quiescent gaps spanning several epochs close each
        one in turn (the intermediate ones see zero busy deltas and the
        unchanged queue depths, which is exactly what happened).
        """
        while cycle >= self.epoch_end:
            self._close_epoch(self.epoch_end)

    def _close_epoch(self, end_cycle: int) -> None:
        current = np.asarray(self.channel_flits, dtype=np.int64)
        self._epoch_busy.append(current - self._last_flits)
        self._last_flits = current
        self._epoch_depth.append(
            np.asarray(self._depth_probe(), dtype=np.int64)
        )
        self._epoch_starts.append(self._epoch_start)
        self._epoch_lengths.append(end_cycle - self._epoch_start)
        self._epoch_delivered.append(self._delivered - self._delivered_at_close)
        self._delivered_at_close = self._delivered
        self._epoch_start = end_cycle
        self.epoch_end = end_cycle + self.config.epoch_cycles

    def finalize(self, total_cycles: int) -> None:
        """Close the trailing (possibly partial) epoch after the last tick.

        ``total_cycles`` is one past the last ticked cycle.  Idempotent;
        also folds the latency histogram into the process metrics
        registry under :data:`LATENCY_METRIC`, which is what pool
        workers ship back for the jobs-invariant cross-process merge.
        """
        if self.finalized:
            return
        self.roll_to(total_cycles)
        if total_cycles > self._epoch_start:
            self._close_epoch(total_cycles)
        self.total_cycles = total_cycles
        self.finalized = True
        from repro.obs.metrics import REGISTRY

        REGISTRY.merge_histograms({LATENCY_METRIC: self._latency.as_dict()})

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict:
        """The accumulated telemetry as a plain (picklable, JSON-able) dict."""
        if not self.finalized:
            raise SimulationError(
                "telemetry snapshot requested before finalize()"
            )
        return {
            "version": SNAPSHOT_VERSION,
            "label": self.label,
            "epoch_cycles": self.config.epoch_cycles,
            "depth_threshold": self.config.depth_threshold,
            "channels": self.channels,
            "links": len(self._link_keys),
            "link_of": list(self._link_of),
            "link_keys": [list(key) for key in self._link_keys],
            "total_cycles": self.total_cycles,
            "epoch_starts": list(self._epoch_starts),
            "epoch_lengths": list(self._epoch_lengths),
            "epoch_delivered": list(self._epoch_delivered),
            "busy": [epoch.tolist() for epoch in self._epoch_busy],
            "depth": [epoch.tolist() for epoch in self._epoch_depth],
            "delivered": self._delivered,
            "latency": self._latency.as_dict(),
        }

    def summary(self) -> "TelemetrySummary":
        return TelemetrySummary(self.snapshot())


class TelemetrySummary:
    """Read-side wrapper over a telemetry snapshot dict."""

    def __init__(self, snapshot: Dict):
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ParameterError(
                f"unsupported telemetry snapshot version "
                f"{snapshot.get('version')!r}"
            )
        self.data = snapshot
        self.busy = np.asarray(snapshot["busy"], dtype=np.int64).reshape(
            len(snapshot["busy"]), snapshot["channels"]
        )
        self.depth = np.asarray(snapshot["depth"], dtype=np.int64).reshape(
            len(snapshot["depth"]), snapshot["channels"]
        )

    @property
    def label(self) -> str:
        return self.data["label"]

    @property
    def epochs(self) -> int:
        return self.busy.shape[0]

    @property
    def channels(self) -> int:
        return self.data["channels"]

    @property
    def epoch_cycles(self) -> int:
        return self.data["epoch_cycles"]

    @property
    def total_cycles(self) -> int:
        return self.data["total_cycles"]

    @property
    def epoch_starts(self) -> List[int]:
        return list(self.data["epoch_starts"])

    @property
    def delivered(self) -> int:
        return self.data["delivered"]

    # -- utilization ---------------------------------------------------

    def channel_busy_total(self) -> np.ndarray:
        """Busy flit-cycles per channel over the whole window, ``(C,)``."""
        if self.epochs == 0:
            return np.zeros(self.channels, dtype=np.int64)
        return self.busy.sum(axis=0)

    def channel_utilization(self) -> np.ndarray:
        """Measured per-channel ρ: busy flit-cycles / window cycles."""
        window = self.total_cycles
        if window <= 0:
            return np.zeros(self.channels, dtype=float)
        return self.channel_busy_total() / float(window)

    def link_utilization(self) -> Dict[Tuple[int, int, int], float]:
        """Measured ρ per physical link (virtual channels summed)."""
        busy = self.channel_busy_total()
        totals: Dict[Tuple[int, int, int], float] = {
            tuple(key): 0.0 for key in self.data["link_keys"]
        }
        keys = self.data["link_keys"]
        window = float(self.total_cycles) or 1.0
        for channel, link in enumerate(self.data["link_of"]):
            if link >= 0:
                key = tuple(keys[link])
                totals[key] += busy[channel] / window
        return totals

    # -- latency -------------------------------------------------------

    def latency_histogram(self) -> Histogram:
        """The worm-latency distribution, rebuilt as a live Histogram."""
        data = self.data["latency"]
        histogram = Histogram(LATENCY_METRIC, data["buckets"])
        histogram.counts = [int(c) for c in data["counts"]]
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum"])
        return histogram

    def latency_mean(self) -> Optional[float]:
        data = self.data["latency"]
        return data["sum"] / data["count"] if data["count"] else None

    def latency_quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q!r}")
        data = self.data["latency"]
        total = data["count"]
        if not total:
            return None
        rank = q * total
        running = 0
        bounds = data["buckets"]
        for index, count in enumerate(data["counts"]):
            running += count
            if running >= rank:
                if index < len(bounds):
                    return float(bounds[index])
                return float(bounds[-1])  # overflow bucket: best bound known
        return float(bounds[-1])

    # -- congestion ----------------------------------------------------

    def max_depth_per_epoch(self) -> np.ndarray:
        if self.epochs == 0:
            return np.zeros(0, dtype=np.int64)
        return self.depth.max(axis=1)

    def saturated_extent_per_epoch(self, threshold: int) -> np.ndarray:
        """Channels at or above ``threshold`` queue depth, per epoch."""
        if self.epochs == 0:
            return np.zeros(0, dtype=np.int64)
        return (self.depth >= threshold).sum(axis=1)


def merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Merge same-shaped telemetry snapshots (e.g. one per replication).

    Busy matrices and delivered counts add; queue depths take the
    element-wise peak (the saturation question is "did any replication
    back up here"); latency histograms merge bucket-for-bucket; windows
    add, so utilization derived from the merge is the cross-replication
    mean.  Epoch counts may differ (drain tails vary by seed) — shorter
    runs are zero-padded.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise ParameterError("no telemetry snapshots to merge")
    first = snapshots[0]
    for snapshot in snapshots[1:]:
        for field in ("version", "epoch_cycles", "channels", "link_of"):
            if snapshot[field] != first[field]:
                raise ParameterError(
                    f"telemetry snapshots disagree on {field!r}; "
                    "cannot merge"
                )
    channels = first["channels"]
    epochs = max(len(s["busy"]) for s in snapshots)

    def padded(rows: List, count: int) -> np.ndarray:
        matrix = np.zeros((count, channels), dtype=np.int64)
        if rows:
            matrix[: len(rows)] = np.asarray(rows, dtype=np.int64)
        return matrix

    busy = sum(padded(s["busy"], epochs) for s in snapshots)
    depth = padded(first["depth"], epochs)
    for snapshot in snapshots[1:]:
        depth = np.maximum(depth, padded(snapshot["depth"], epochs))
    delivered_per_epoch = [0] * epochs
    for snapshot in snapshots:
        for index, count in enumerate(snapshot["epoch_delivered"]):
            delivered_per_epoch[index] += count
    longest = max(snapshots, key=lambda s: len(s["busy"]))
    latency = dict(first["latency"])
    latency["counts"] = list(latency["counts"])
    for snapshot in snapshots[1:]:
        other = snapshot["latency"]
        if list(other["buckets"]) != list(latency["buckets"]):
            raise ParameterError(
                "telemetry snapshots disagree on latency buckets"
            )
        latency["counts"] = [
            a + b for a, b in zip(latency["counts"], other["counts"])
        ]
        latency["count"] = latency["count"] + other["count"]
        latency["sum"] = latency["sum"] + other["sum"]
    return {
        "version": SNAPSHOT_VERSION,
        "label": f"merged[{len(snapshots)}x {first['label']}]",
        "epoch_cycles": first["epoch_cycles"],
        "depth_threshold": first["depth_threshold"],
        "channels": channels,
        "links": first["links"],
        "link_of": list(first["link_of"]),
        "link_keys": [list(key) for key in first["link_keys"]],
        "total_cycles": sum(s["total_cycles"] for s in snapshots),
        "epoch_starts": list(longest["epoch_starts"]),
        "epoch_lengths": list(longest["epoch_lengths"]),
        "epoch_delivered": delivered_per_epoch,
        "busy": busy.tolist(),
        "depth": depth.tolist(),
        "delivered": sum(s["delivered"] for s in snapshots),
        "latency": latency,
    }


# ----------------------------------------------------------------------
# Tree-saturation onset detection.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationReport:
    """Per-epoch saturation wavefront of one telemetry window.

    ``onset_epoch`` is the first epoch whose sampled max queue depth
    reaches ``threshold`` (``None`` if the run never saturates);
    ``extent`` counts channels at or beyond the threshold per epoch —
    the width of the blocked-channel tree's wavefront.
    """

    threshold: int
    epoch_cycles: int
    onset_epoch: Optional[int]
    onset_cycle: Optional[int]
    peak_depth: Tuple[int, ...]
    extent: Tuple[int, ...]

    @property
    def saturated(self) -> bool:
        return self.onset_epoch is not None

    @property
    def peak_extent(self) -> int:
        return max(self.extent, default=0)

    def as_dict(self) -> Dict:
        return {
            "threshold": self.threshold,
            "epoch_cycles": self.epoch_cycles,
            "saturated": self.saturated,
            "onset_epoch": self.onset_epoch,
            "onset_cycle": self.onset_cycle,
            "peak_depth": list(self.peak_depth),
            "extent": list(self.extent),
        }

    def render(self) -> str:
        if not self.saturated:
            return (
                f"no tree saturation: max queue depth "
                f"{max(self.peak_depth, default=0)} stayed below the "
                f"threshold of {self.threshold}"
            )
        lines = [
            f"tree saturation onset: epoch {self.onset_epoch} "
            f"(cycle {self.onset_cycle}, threshold depth {self.threshold})"
        ]
        for epoch, (depth, width) in enumerate(
            zip(self.peak_depth, self.extent)
        ):
            marker = " <- onset" if epoch == self.onset_epoch else ""
            lines.append(
                f"  epoch {epoch:>3} (cycle {epoch * self.epoch_cycles:>6}): "
                f"max depth {depth:>4}, saturated channels {width:>4}{marker}"
            )
        return "\n".join(lines)


def detect_saturation(
    summary: TelemetrySummary, threshold: Optional[int] = None
) -> SaturationReport:
    """Find the tree-saturation onset in one telemetry window.

    ``threshold`` defaults to the depth threshold the telemetry was
    configured with.  Epoch boundaries sample end-of-epoch state, so the
    onset cycle reported is the *end* of the first saturated epoch — the
    finest statement the sampling resolution supports.
    """
    if threshold is None:
        threshold = int(summary.data["depth_threshold"])
    if threshold < 1:
        raise ParameterError(f"threshold must be >= 1, got {threshold!r}")
    peaks = summary.max_depth_per_epoch()
    extent = summary.saturated_extent_per_epoch(threshold)
    onset_epoch: Optional[int] = None
    onset_cycle: Optional[int] = None
    hits = np.nonzero(peaks >= threshold)[0]
    if hits.size:
        onset_epoch = int(hits[0])
        starts = summary.epoch_starts
        lengths = summary.data["epoch_lengths"]
        onset_cycle = int(starts[onset_epoch] + lengths[onset_epoch])
    return SaturationReport(
        threshold=threshold,
        epoch_cycles=summary.epoch_cycles,
        onset_epoch=onset_epoch,
        onset_cycle=onset_cycle,
        peak_depth=tuple(int(d) for d in peaks),
        extent=tuple(int(w) for w in extent),
    )


# ----------------------------------------------------------------------
# Export: JSONL and Chrome-trace counter series.
# ----------------------------------------------------------------------


def write_telemetry_jsonl(snapshot: Dict, path: str) -> str:
    """Write one telemetry snapshot as JSONL: header, epochs, latency.

    The first line is a ``kind: "telemetry"`` header with the geometry,
    followed by one ``kind: "epoch"`` line per epoch (busy and depth
    vectors in dense channel-id order) and a closing ``kind: "latency"``
    line with the histogram.
    """
    summary = TelemetrySummary(snapshot)
    header = {
        "kind": "telemetry",
        "version": snapshot["version"],
        "label": snapshot["label"],
        "epoch_cycles": snapshot["epoch_cycles"],
        "channels": snapshot["channels"],
        "links": snapshot["links"],
        "total_cycles": snapshot["total_cycles"],
        "epochs": summary.epochs,
        "delivered": snapshot["delivered"],
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        peaks = summary.max_depth_per_epoch()
        for epoch in range(summary.epochs):
            record = {
                "kind": "epoch",
                "epoch": epoch,
                "start": snapshot["epoch_starts"][epoch],
                "cycles": snapshot["epoch_lengths"][epoch],
                "delivered": snapshot["epoch_delivered"][epoch],
                "busy": snapshot["busy"][epoch],
                "depth": snapshot["depth"][epoch],
                "max_depth": int(peaks[epoch]),
            }
            handle.write(json.dumps(record) + "\n")
        handle.write(
            json.dumps({"kind": "latency", **snapshot["latency"]}) + "\n"
        )
    return path


def emit_trace_counters(snapshot: Dict, prefix: str = "fabric") -> int:
    """Fold a telemetry window into the live trace as counter events.

    Emits one Chrome-trace counter sample per epoch — mean link ρ, max
    queue depth, deliveries — timestamped at the epoch's end cycle (one
    microsecond per network cycle), so channel time-series land in the
    same trace file as the spans.  No-op (returns 0) while observability
    is off.
    """
    from repro import obs

    if not obs.is_enabled():
        return 0
    summary = TelemetrySummary(snapshot)
    if summary.epochs == 0:
        return 0
    peaks = summary.max_depth_per_epoch()
    links = max(snapshot["links"], 1)
    window = float(snapshot["epoch_cycles"])
    link_of = np.asarray(snapshot["link_of"])
    link_mask = link_of >= 0
    emitted = 0
    for epoch in range(summary.epochs):
        cycles = snapshot["epoch_lengths"][epoch] or 1
        busy = summary.busy[epoch]
        mean_rho = float(busy[link_mask].sum()) / (links * cycles)
        end_cycle = snapshot["epoch_starts"][epoch] + cycles
        obs.trace_counter(
            f"{prefix}.telemetry",
            float(end_cycle),
            {
                "mean_link_rho": round(mean_rho, 6),
                "max_queue_depth": int(peaks[epoch]),
                "delivered": int(snapshot["epoch_delivered"][epoch]),
            },
        )
        emitted += 1
    return emitted


# ----------------------------------------------------------------------
# The probe driver: fabric-level workloads under telemetry.
# ----------------------------------------------------------------------

#: Fabric-level probe workloads (the benchmark suite's shapes): ``rate``
#: is mean injection attempts per cycle machine-wide, ``hot`` the
#: fraction aimed at the ``hot_count`` lowest-numbered nodes, ``data``
#: switches to long data replies.  ``tree_saturation`` is the canonical
#: congestion stress: one hot ejection port grows blocked-channel trees
#: across the fabric.
PROBE_WORKLOADS: Dict[str, Dict] = {
    "uniform": dict(rate=0.4, hot=0.0, hot_count=4, data=False),
    "saturated": dict(rate=2.0, hot=0.0, hot_count=4, data=False),
    "hotspot50": dict(rate=1.5, hot=0.5, hot_count=4, data=True),
    "tree_saturation": dict(rate=1.5, hot=1.0, hot_count=1, data=True),
}


def probe_schedule(
    radix: int,
    dimensions: int,
    cycles: int,
    workload: str,
    seed: int = 1992,
) -> List[List[Tuple]]:
    """Pre-generated per-cycle injection plan for one probe workload."""
    import random

    from repro.sim.message import MessageKind

    spec = PROBE_WORKLOADS.get(workload)
    if spec is None:
        known = ", ".join(sorted(PROBE_WORKLOADS))
        raise ParameterError(f"unknown workload {workload!r}; known: {known}")
    rng = random.Random(seed)
    nodes = radix**dimensions
    hot_nodes = tuple(range(min(spec["hot_count"], nodes)))
    kind = (
        MessageKind.DATA_REPLY if spec["data"] else MessageKind.READ_REQUEST
    )
    whole, fractional = divmod(spec["rate"], 1)
    plan: List[List[Tuple]] = []
    tag = 0
    for _ in range(cycles):
        injections = []
        attempts = int(whole) + (1 if rng.random() < fractional else 0)
        for _ in range(attempts):
            source = rng.randrange(nodes)
            if rng.random() < spec["hot"]:
                destination = rng.choice(hot_nodes)
            else:
                destination = rng.randrange(nodes)
            if source != destination:
                injections.append((kind, source, destination, tag))
                tag += 1
        plan.append(injections)
    return plan


@dataclass
class ProbeResult:
    """Everything one probe run measured."""

    workload: str
    radix: int
    dimensions: int
    fabric: str
    scheduled_cycles: int
    total_cycles: int
    injected: int
    delivered: int
    mean_hops: Optional[float]
    mean_flits: Optional[float]
    message_rate: Optional[float]
    snapshot: Dict
    saturation: SaturationReport

    @property
    def summary(self) -> TelemetrySummary:
        return TelemetrySummary(self.snapshot)


def run_probe(
    workload: str,
    radix: int = 8,
    dimensions: int = 2,
    cycles: int = 600,
    telemetry: Optional[TelemetryConfig] = None,
    fabric: str = "kernel",
    seed: int = 1992,
) -> ProbeResult:
    """Drive one fabric-level workload under telemetry and report.

    Injects the seeded schedule, ticks until the fabric drains, and
    returns the telemetry snapshot plus the measured traffic parameters
    (message rate per node per cycle, mean hops, mean flits) the
    analytical contention model needs for a model-vs-measured table.
    """
    from repro.sim.kernel import FabricKernel
    from repro.sim.message import Message
    from repro.sim.reference import ReferenceTorusFabric
    from repro.topology.torus import Torus

    fabric_classes = {
        "kernel": FabricKernel,
        "reference": ReferenceTorusFabric,
    }
    fabric_cls = fabric_classes.get(fabric)
    if fabric_cls is None:
        raise ParameterError(
            f"unknown fabric {fabric!r}; known: "
            f"{', '.join(sorted(fabric_classes))}"
        )
    if telemetry is None:
        telemetry = TelemetryConfig()
    plan = probe_schedule(radix, dimensions, cycles, workload, seed=seed)
    torus = Torus(radix=radix, dimensions=dimensions)
    delivered: List = []
    instance = fabric_cls(torus, on_delivery=delivered.append)
    channels = instance.attach_telemetry(telemetry)
    injected = 0
    cycle = 0
    for cycle, injections in enumerate(plan):
        for kind, source, destination, tag in injections:
            instance.inject(
                Message(kind, source, destination, (0, 0), tag), cycle
            )
            injected += 1
        instance.tick(cycle)
    while not instance.quiescent():
        cycle += 1
        instance.tick(cycle)
        if cycle > cycles + 200000:
            raise SimulationError("probe fabric did not drain")
    total_cycles = cycle + 1
    channels.finalize(total_cycles)
    snapshot = channels.snapshot()
    hops = [worm.hops for worm in delivered]
    flits = [worm.message.flits for worm in delivered]
    nodes = torus.node_count
    return ProbeResult(
        workload=workload,
        radix=radix,
        dimensions=dimensions,
        fabric=fabric,
        scheduled_cycles=cycles,
        total_cycles=total_cycles,
        injected=injected,
        delivered=len(delivered),
        mean_hops=(sum(hops) / len(hops)) if hops else None,
        mean_flits=(sum(flits) / len(flits)) if flits else None,
        message_rate=(
            len(delivered) / (total_cycles * nodes) if delivered else None
        ),
        snapshot=snapshot,
        saturation=detect_saturation(TelemetrySummary(snapshot)),
    )

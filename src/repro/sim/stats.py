"""Measurement collection for simulation runs.

Statistics accumulate only while measurement is enabled (after warmup),
and :meth:`MachineStats.summary` reduces them to the quantities the
analytical model speaks in — ``t_m``, ``T_m``, ``d``, ``B``, ``g``,
``t_t``, ``T_t``, channel utilization — so model-vs-simulation
comparisons (Figures 3-5) are a field-by-field affair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.sim.message import Message

__all__ = ["MachineStats", "MeasurementSummary"]


@dataclass
class MeasurementSummary:
    """Model-facing quantities measured over one window.

    Times are network cycles; rates are per node per network cycle.
    ``None`` fields indicate the window produced no relevant events.
    """

    window_cycles: int
    nodes: int
    # Message-level
    messages_sent: int
    mean_message_interval: Optional[float]   # t_m
    message_rate: Optional[float]            # r_m
    mean_message_latency: Optional[float]    # T_m
    mean_message_flits: Optional[float]      # B
    mean_message_flits_squared: Optional[float]  # E[S^2], for M/G/1 terms
    mean_message_hops: Optional[float]       # d
    mean_per_hop_latency: Optional[float]    # (T_m - B - 2) / d, see note
    channel_utilization: Optional[float]     # rho
    # Transaction-level
    remote_transactions: int
    local_transactions: int
    mean_issue_interval: Optional[float]     # t_t (remote transactions)
    mean_transaction_latency: Optional[float]  # T_t
    messages_per_transaction: Optional[float]  # g
    cache_hits: int
    cache_evictions: int
    # Processor-level
    idle_fraction: Optional[float]
    context_switches: int
    #: Per-channel telemetry snapshot (see :mod:`repro.sim.telemetry`);
    #: attached by :meth:`Machine.summary` when telemetry was enabled.
    #: Structured (not a scalar), so it is excluded from :meth:`as_dict`
    #: and therefore from replication aggregation.
    telemetry: Optional[Dict] = field(default=None, repr=False, compare=False)

    @property
    def transactions(self) -> int:
        return self.remote_transactions + self.local_transactions

    def as_dict(self) -> Dict[str, Optional[float]]:
        """All measured *scalar* fields by name, plus ``transactions``.

        The replication harness aggregates over these; ``None`` fields
        (windows with no relevant events) stay ``None`` and are skipped
        by the aggregator.  The structured ``telemetry`` snapshot is
        excluded — it merges via
        :func:`repro.sim.telemetry.merge_snapshots`, not by averaging.
        """
        data = dict(vars(self))
        data.pop("telemetry", None)
        data["transactions"] = self.transactions
        return data


class MachineStats:
    """Event counters with an explicit measurement gate."""

    def __init__(self, nodes: int):
        self.nodes = nodes
        self.measuring = False
        self._window_start = 0
        self._window_end: Optional[int] = None
        #: Optional tracer; receives every event regardless of the
        #: measurement gate (warmup behavior is often what one debugs).
        self.listener = None
        self.reset(0)

    # ------------------------------------------------------------------
    # Window control.
    # ------------------------------------------------------------------

    def reset(self, cycle: int) -> None:
        """Zero all counters; measurement resumes from ``cycle``."""
        self._window_start = cycle
        self._window_end = None
        self.messages_sent = 0
        self.message_flits = 0
        self.message_flits_squared = 0
        self.messages_delivered = 0
        self.message_latency_total = 0
        self.message_hops_total = 0
        self.hop_latency_total = 0.0
        self.hop_latency_count = 0
        self.remote_started = 0
        self.remote_completed = 0
        self.local_completed = 0
        self.transaction_latency_total = 0
        self.cache_hits_count = 0
        self.cache_evictions_count = 0
        self.link_flits_at_reset: Dict = {}
        self.idle_cycles = 0
        self.switches = 0
        self.per_node_messages: Dict[int, int] = {}

    def start_measuring(self, cycle: int, link_flits: Dict) -> None:
        """End warmup: zero counters and snapshot link-flit totals."""
        self.reset(cycle)
        self.link_flits_at_reset = dict(link_flits)
        self.measuring = True

    def stop_measuring(self, cycle: int) -> None:
        self._window_end = cycle
        self.measuring = False

    @property
    def window_cycles(self) -> int:
        if self._window_end is None:
            raise SimulationError("measurement window not closed yet")
        return self._window_end - self._window_start

    # ------------------------------------------------------------------
    # Recording hooks (called by controllers/processors/fabric).
    # ------------------------------------------------------------------

    def message_sent(self, node: int, message: Message, cycle: int) -> None:
        if self.listener is not None:
            self.listener.record(
                "message_sent", cycle, node,
                message_kind=message.kind.value,
                destination=message.destination,
                flits=message.flits,
            )
        if not self.measuring:
            return
        self.messages_sent += 1
        self.message_flits += message.flits
        self.message_flits_squared += message.flits**2
        self.per_node_messages[node] = self.per_node_messages.get(node, 0) + 1

    def message_delivered(
        self, message: Message, hops: int, source_wait: int, cycle: int
    ) -> None:
        if self.listener is not None:
            self.listener.record(
                "message_delivered", cycle, message.destination,
                message_kind=message.kind.value, source=message.source,
                latency=message.latency, hops=hops,
            )
        if not self.measuring:
            return
        latency = message.latency
        if latency is None:
            return
        self.messages_delivered += 1
        self.message_latency_total += latency
        self.message_hops_total += hops
        if hops > 0:
            # Head latency net of flit serialization (B covers the
            # injection hop, ejection hop, and drain at zero load) and of
            # queueing at the source's injection channel; the remainder
            # per hop is the measured counterpart of the model's T_h.
            head = latency - message.flits - source_wait
            self.hop_latency_total += head / hops
            self.hop_latency_count += 1

    def transaction_started(self, node: int, cycle: int) -> None:
        if self.listener is not None:
            self.listener.record("transaction_started", cycle, node)
        if not self.measuring:
            return
        self.remote_started += 1

    def transaction_completed(
        self, node: int, issued_at: int, cycle: int, remote: bool
    ) -> None:
        if self.listener is not None:
            self.listener.record(
                "transaction_completed", cycle, node,
                latency=cycle - issued_at, remote=remote,
            )
        if not self.measuring:
            return
        if remote:
            self.remote_completed += 1
            self.transaction_latency_total += cycle - issued_at
        else:
            self.local_completed += 1

    def cache_hit(self, node: int) -> None:
        if self.listener is not None:
            self.listener.record("cache_hit", -1, node)
        if not self.measuring:
            return
        self.cache_hits_count += 1

    def cache_eviction(self, node: int) -> None:
        if self.listener is not None:
            self.listener.record("cache_eviction", -1, node)
        if not self.measuring:
            return
        self.cache_evictions_count += 1

    def processor_idle(self, cycles: int) -> None:
        if self.measuring:
            self.idle_cycles += cycles

    def context_switched(self, count: int) -> None:
        if self.measuring:
            self.switches += count

    # ------------------------------------------------------------------
    # Reduction.
    # ------------------------------------------------------------------

    def summary(
        self,
        link_flits: Dict,
        physical_links: int,
        network_speedup: int,
    ) -> MeasurementSummary:
        """Reduce the window's counters to model-facing quantities."""
        window = self.window_cycles
        if window <= 0:
            raise SimulationError("empty measurement window")

        def ratio(num, den) -> Optional[float]:
            return num / den if den else None

        flits_crossed = sum(link_flits.values()) - sum(
            self.link_flits_at_reset.values()
        )
        utilization = (
            flits_crossed / (window * physical_links) if physical_links else None
        )
        per_node_rate = ratio(self.messages_sent, window * self.nodes)
        idle_fraction = ratio(
            self.idle_cycles, (window // network_speedup) * self.nodes
        )
        # Remote transactions define the communication-transaction rate
        # (local write upgrades never touch the network).
        issue_interval = ratio(window * self.nodes, self.remote_completed)
        return MeasurementSummary(
            window_cycles=window,
            nodes=self.nodes,
            messages_sent=self.messages_sent,
            mean_message_interval=(
                1.0 / per_node_rate if per_node_rate else None
            ),
            message_rate=per_node_rate,
            mean_message_latency=ratio(
                self.message_latency_total, self.messages_delivered
            ),
            mean_message_flits=ratio(self.message_flits, self.messages_sent),
            mean_message_flits_squared=ratio(
                self.message_flits_squared, self.messages_sent
            ),
            mean_message_hops=ratio(
                self.message_hops_total, self.messages_delivered
            ),
            mean_per_hop_latency=ratio(
                self.hop_latency_total, self.hop_latency_count
            ),
            channel_utilization=utilization,
            remote_transactions=self.remote_completed,
            local_transactions=self.local_completed,
            mean_issue_interval=issue_interval,
            mean_transaction_latency=ratio(
                self.transaction_latency_total, self.remote_completed
            ),
            messages_per_transaction=ratio(
                self.messages_sent, self.remote_completed
            ),
            cache_hits=self.cache_hits_count,
            cache_evictions=self.cache_evictions_count,
            idle_fraction=idle_fraction,
            context_switches=self.switches,
        )

"""Tracing and time-series sampling for simulation runs.

The aggregate :class:`~repro.sim.stats.MeasurementSummary` answers the
model's questions; a :class:`Tracer` answers *debugging* questions — what
happened, when, where.  It captures two kinds of data:

* **events** — message sends/deliveries, transaction starts/completions,
  cache hits and evictions, each stamped with cycle and node, kept in a
  bounded ring buffer;
* **samples** — periodic machine snapshots (in-flight messages,
  cumulative counters), for time-series views of warmup and steady state.

Attach with :meth:`repro.sim.machine.Machine.attach_tracer`; tracing is
entirely optional and costs nothing when absent.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.errors import ParameterError

__all__ = ["TraceEvent", "MachineSample", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced protocol event."""

    cycle: int
    kind: str
    node: Optional[int]
    detail: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class MachineSample:
    """Periodic machine snapshot."""

    cycle: int
    in_flight_messages: int
    messages_sent: int
    transactions_completed: int
    cache_hits: int


#: Event kinds the stats hooks emit.
EVENT_KINDS = (
    "message_sent",
    "message_delivered",
    "transaction_started",
    "transaction_completed",
    "cache_hit",
    "cache_eviction",
)


class Tracer:
    """Bounded event recorder plus periodic sampler.

    Parameters
    ----------
    kinds:
        Event kinds to keep (default: all of :data:`EVENT_KINDS`).
        Filtering at capture keeps high-rate runs cheap.
    capacity:
        Ring-buffer size; the oldest events fall off first.
    sample_interval:
        Cycles between machine snapshots (0 disables sampling).
    """

    def __init__(
        self,
        kinds: Optional[Sequence[str]] = None,
        capacity: int = 100_000,
        sample_interval: int = 0,
    ):
        if capacity < 1:
            raise ParameterError(f"capacity must be >= 1, got {capacity!r}")
        if sample_interval < 0:
            raise ParameterError(
                f"sample_interval must be >= 0, got {sample_interval!r}"
            )
        if kinds is not None:
            unknown = set(kinds) - set(EVENT_KINDS)
            if unknown:
                raise ParameterError(
                    f"unknown event kinds: {sorted(unknown)}; "
                    f"known: {list(EVENT_KINDS)}"
                )
        self._kinds = set(kinds) if kinds is not None else set(EVENT_KINDS)
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.samples: List[MachineSample] = []
        self.sample_interval = sample_interval
        self._dropped = 0

    # ------------------------------------------------------------------
    # Capture (called by the stats hooks / machine step).
    # ------------------------------------------------------------------

    def wants(self, kind: str) -> bool:
        return kind in self._kinds

    def record(self, kind: str, cycle: int, node: Optional[int], **detail) -> None:
        if kind not in self._kinds:
            return
        if len(self.events) == self.events.maxlen:
            # The deque evicts the oldest event on append; count the
            # loss so a full buffer is visible rather than silent.  The
            # counter is monotonically increasing for the tracer's
            # lifetime (never reset by queries or exports).
            self._dropped += 1
        self.events.append(
            TraceEvent(cycle=cycle, kind=kind, node=node, detail=detail)
        )

    def on_cycle(self, machine, cycle: int) -> None:
        """Periodic sampling hook (called by ``Machine.step``)."""
        if self.sample_interval <= 0 or cycle % self.sample_interval != 0:
            return
        stats = machine.stats
        self.samples.append(
            MachineSample(
                cycle=cycle,
                in_flight_messages=machine.fabric.in_flight,
                messages_sent=stats.messages_sent,
                transactions_completed=(
                    stats.remote_completed + stats.local_completed
                ),
                cache_hits=stats.cache_hits_count,
            )
        )

    def on_skip(self, machine, start: int, stop: int) -> None:
        """Emit the samples cycles ``[start, stop)`` would have taken.

        Fast-forward hook for the event-calendar engine: machine state
        is frozen across a skipped span (no deliveries, no sends, no
        hits), so each sample-interval boundary inside it reads the
        same counters ``on_cycle`` would have read cycle by cycle.
        """
        interval = self.sample_interval
        if interval <= 0:
            return
        first = start + (-start % interval)
        for cycle in range(first, stop, interval):
            self.on_cycle(machine, cycle)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events evicted because the ring buffer was full (monotonic)."""
        return self._dropped

    def summary(self) -> Dict:
        """Aggregate view: event counts, drops, and sampling coverage.

        ``dropped_events`` is always present so eviction loss is never
        silent: a non-zero value means the ring buffer overflowed and
        ``events`` holds only the most recent ``capacity`` records.
        """
        return {
            "events": len(self.events),
            "by_kind": self.count_by_kind(),
            "dropped_events": self._dropped,
            "capacity": self.events.maxlen,
            "samples": len(self.samples),
        }

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def count_by_kind(self) -> Dict[str, int]:
        return dict(Counter(event.kind for event in self.events))

    def events_at_node(self, node: int) -> List[TraceEvent]:
        return [event for event in self.events if event.node == node]

    def between(self, start: int, stop: int) -> List[TraceEvent]:
        """Events with ``start <= cycle < stop``."""
        return [e for e in self.events if start <= e.cycle < stop]

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str) -> str:
        """Write events (one JSON object per line); returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps({
                    "cycle": event.cycle,
                    "kind": event.kind,
                    "node": event.node,
                    **event.detail,
                }))
                handle.write("\n")
        return path

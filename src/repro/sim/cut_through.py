"""Pipelined cut-through torus fabric (buffered switches).

The Alewife switches provide "a moderate amount of buffering" (Section
3.1), which moves their behavior away from pure single-flit-buffer
wormhole (where a stalled head freezes its whole worm across many
channels, amplifying contention through blocking trees) toward virtual
cut-through: a blocked message accumulates in switch buffers, holding
each channel only for the ``B`` cycles its flits actually cross it.

This fabric models that regime: each channel is a FIFO server with
service time ``B`` (the message's flits), and the head moves one switch
per cycle when un-contended.  Zero-load latency is ``d + B + 1`` network
cycles (one injection hop, ``d`` switch hops, ejection + drain), matching
the analytical model's ``d * T_h + B`` to within a cycle, and channel
queueing matches the model's contention term far better than the rigid
worm does — which is precisely why it is the default for the Section 3
validation runs.  The rigid-worm fabric (:mod:`repro.sim.network`)
remains available via ``SimulationConfig(switching="wormhole")`` and is
compared against this one in the buffering ablation benchmark.

E-cube routing is shared with the wormhole fabric; no virtual channels
are needed here because a message occupying a channel always drains into
the next switch's buffer — channel holds are time-bounded, so the torus
ring cycle cannot deadlock.

**Implementation.**  The channel population is fixed by the torus
geometry, so channels are enumerated up front and identified by dense
integer ids; per-channel state (busy-until cycle, head-of-queue
eligibility, link flit totals) lives in flat int lists indexed by
channel id, replacing the reference implementation's tuple-keyed dicts.
Channel grants are order-independent within a cycle *as decisions* — a
channel grants iff it is free and its FIFO head is eligible, and
in-cycle enqueues carry ``cycle + 1`` eligibility — but the order grants
*apply* determines FIFO arrival order on downstream queues, so the tick
walks the ordered pending list, where each channel's grant condition is
two list reads and two int compares (measured faster at this channel
count than gathering the grantable set with vectorized numpy compares,
which this fabric went through an iteration of).  The seeded
golden-parity tests pin this to the reference implementation cycle for
cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.message import Message
from repro.sim.telemetry import FabricTelemetry, TelemetryConfig
from repro.topology.torus import Torus

__all__ = ["Transit", "CutThroughFabric"]

ChannelKey = Tuple

#: Head-eligibility sentinel for a channel with an empty queue; any
#: real cycle compares below it, keeping the hot compare all-int.
_NEVER = 1 << 62


@dataclass(slots=True)
class Transit:
    """One message's passage through the fabric (delivery record).

    ``route`` holds dense channel ids (the key form is available from
    :meth:`CutThroughFabric.build_route`); it is borrowed from the
    fabric's route cache and must not be mutated.
    """

    message: Message
    route: List[int]
    #: Index of the next route channel to acquire.
    next_hop: int = 0
    #: Cycles spent queued at the source's injection channel.
    source_wait: int = 0

    @property
    def hops(self) -> int:
        """Switch-to-switch hops (route minus injection/ejection)."""
        return len(self.route) - 2

    @property
    def flits(self) -> int:
        return self.message.flits


class CutThroughFabric:
    """Cycle-driven cut-through network with per-channel FIFO queueing."""

    def __init__(
        self,
        torus: Torus,
        on_delivery: Callable[[Transit], None],
        stall_limit: int = 10000,  # accepted for interface parity; unused
    ):
        self.torus = torus
        self.on_delivery = on_delivery

        # Enumerate every channel the geometry admits: one injection and
        # one ejection channel per node, one link channel per (node,
        # dimension, direction).
        self._channel_index: Dict[ChannelKey, int] = {}
        self._link_keys: List[Tuple[int, int, int]] = []
        link_of: List[int] = []
        for node in torus.nodes():
            self._channel_index[("inj", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            self._channel_index[("ej", node)] = len(link_of)
            link_of.append(-1)
        for node in torus.nodes():
            for dim in range(torus.dimensions):
                for step in (1, -1):
                    self._channel_index[("link", node, dim, step)] = len(link_of)
                    link_of.append(len(self._link_keys))
                    self._link_keys.append((node, dim, step))
        count = len(link_of)
        self._link_of = link_of
        #: Cycle each channel is busy until (exclusive).
        self._free_at = [0] * count
        #: Eligibility cycle of each channel's FIFO head (_NEVER = empty).
        self._head_eligible = [_NEVER] * count
        self._queues: List[Deque[Tuple[int, Transit]]] = [
            deque() for _ in range(count)
        ]
        #: Flits pushed across each physical link, by link id (a plain
        #: list: the counter is bumped one scalar at a time on grants,
        #: where list indexing beats numpy scalar indexing).
        self._link_flit_counts = [0] * len(self._link_keys)

        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        #: Channels with queued traffic, in activation order.
        self._pending: List[int] = []
        self._deliveries: Dict[int, List[Transit]] = {}
        #: Transits sitting in ``_deliveries``; lets the tick skip the
        #: per-cycle dict pop entirely while nothing is scheduled.
        self._delivery_count = 0
        self._in_flight = 0
        self.delivered_count = 0
        #: Optional per-channel instrumentation (see :mod:`..telemetry`).
        self._telemetry: Optional[FabricTelemetry] = None

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    def build_route(self, source: int, destination: int) -> List[ChannelKey]:
        """E-cube route, injection and ejection channels inclusive."""
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        route: List[ChannelKey] = [("inj", source)]
        for node, dim, step in self.torus.route_hops(source, destination):
            route.append(("link", node, dim, step))
        route.append(("ej", destination))
        return route

    def _route_ids(self, source: int, destination: int) -> List[int]:
        """The channel-id route, memoized per (source, destination).

        E-cube routes are a pure function of the endpoint pair and
        transits never mutate them, so the cached list is shared.
        """
        pair = (source, destination)
        route = self._route_cache.get(pair)
        if route is None:
            index = self._channel_index
            route = [
                index[key] for key in self.build_route(source, destination)
            ]
            self._route_cache[pair] = route
        return route

    # ------------------------------------------------------------------
    # Injection.
    # ------------------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> None:
        message.injected_at = cycle
        transit = Transit(
            message=message,
            route=self._route_ids(message.source, message.destination),
        )
        self._in_flight += 1
        self._enqueue(transit, cycle)

    def _enqueue(self, transit: Transit, eligible_from: int) -> None:
        channel = transit.route[transit.next_hop]
        queue = self._queues[channel]
        if not queue:
            self._pending.append(channel)
            self._head_eligible[channel] = eligible_from
        queue.append((eligible_from, transit))

    # ------------------------------------------------------------------
    # Per-cycle advance.
    # ------------------------------------------------------------------

    def attach_telemetry(self, config: TelemetryConfig) -> FabricTelemetry:
        """Attach per-channel instrumentation (see :mod:`..telemetry`)."""
        if self._telemetry is not None:
            raise SimulationError("telemetry already attached to this fabric")
        self._telemetry = FabricTelemetry(
            config=config,
            channels=len(self._free_at),
            link_of=self._link_of,
            link_keys=self._link_keys,
            depth_probe=self._queue_depths,
            label="cut_through",
        )
        return self._telemetry

    def _queue_depths(self) -> List[int]:
        """Waiting messages per channel FIFO (telemetry epoch sampling)."""
        return [len(queue) for queue in self._queues]

    def tick(self, cycle: int) -> None:
        # Telemetry epoch roll first (before deliveries and the empty-
        # pending early return), so boundaries sample end-of-previous-
        # cycle state.
        telemetry = self._telemetry
        if telemetry is not None and cycle >= telemetry.epoch_end:
            telemetry.roll_to(cycle)
        # Complete deliveries scheduled for this cycle.  Delivery
        # callbacks may inject replies, which land on self._pending
        # before it is read below — same-cycle eligibility, exactly as
        # the reference implementation had it.
        if self._delivery_count:
            arrivals = self._deliveries.pop(cycle, None)
            if arrivals:
                self._delivery_count -= len(arrivals)
                for transit in arrivals:
                    transit.message.delivered_at = cycle
                    self.delivered_count += 1
                    self._in_flight -= 1
                    if telemetry is not None:
                        telemetry.record_delivery(
                            cycle - transit.message.injected_at
                        )
                    self.on_delivery(transit)

        # Grant channels.  Each channel serves one message at a time for
        # ``flits`` cycles; the head moves on after a single cycle.  A
        # channel grants iff it is free and its FIFO head is eligible;
        # grants apply in pending order so downstream FIFO arrival order
        # matches the reference implementation.  The state is dense
        # int lists indexed by channel id, so each pending channel costs
        # two list reads and two int compares.
        pending = self._pending
        if not pending:
            return
        free_at = self._free_at
        head_eligible = self._head_eligible
        queues = self._queues
        new_pending: List[int] = []
        append = new_pending.append
        self._pending = new_pending
        for channel in pending:
            if free_at[channel] > cycle or head_eligible[channel] > cycle:
                append(channel)
                continue
            queue = queues[channel]
            _, transit = queue.popleft()
            head_eligible[channel] = queue[0][0] if queue else _NEVER
            self._grant(transit, channel, cycle)
            if queue:
                append(channel)

    def _grant(self, transit: Transit, channel: int, cycle: int) -> None:
        flits = transit.message.flits
        self._free_at[channel] = cycle + flits
        if self._telemetry is not None:
            # Busy flit-cycles at grant time, every channel (the service
            # occupancy just booked into _free_at).
            self._telemetry.channel_flits[channel] += flits
        hop = transit.next_hop
        if hop == 0:
            transit.source_wait = cycle - transit.message.injected_at
        else:
            link = self._link_of[channel]
            if link >= 0:
                self._link_flit_counts[link] += flits
        transit.next_hop = hop + 1
        if hop + 1 >= len(transit.route):
            # Ejection granted at ``cycle``: the tail arrives after all
            # flits cross the ejection channel.
            when = cycle + flits
            self._deliveries.setdefault(when, []).append(transit)
            self._delivery_count += 1
        else:
            # The head reaches the next switch one cycle later.
            self._enqueue(transit, cycle + 1)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def link_flits(self) -> Dict[Tuple[int, int, int], int]:
        """Flits crossed per physical link (links with traffic only)."""
        keys = self._link_keys
        return {
            keys[i]: count
            for i, count in enumerate(self._link_flit_counts)
            if count
        }

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def quiescent(self) -> bool:
        return self._in_flight == 0

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Quiescence horizon: the earliest cycle a tick could do work.

        A pending channel grants exactly when it is past both its
        busy-until cycle and its head's eligibility cycle, and both are
        frozen between grants — so with nothing grantable now, the
        fabric is provably inert until the earliest of those thresholds
        or the earliest scheduled delivery.  This is what lets the
        machine engine jump clean over the ``B``-cycle drain windows of
        24-flit data replies (and over heads queued behind them) in one
        step.  ``None`` means empty: ticks are no-ops until an
        injection.
        """
        earliest = min(self._deliveries) if self._delivery_count else None
        if self._pending:
            free_at = self._free_at
            head_eligible = self._head_eligible
            for channel in self._pending:
                at = free_at[channel]
                eligible = head_eligible[channel]
                if eligible > at:
                    at = eligible
                if at <= cycle:
                    return cycle
                if earliest is None or at < earliest:
                    earliest = at
        return earliest

"""Pipelined cut-through torus fabric (buffered switches).

The Alewife switches provide "a moderate amount of buffering" (Section
3.1), which moves their behavior away from pure single-flit-buffer
wormhole (where a stalled head freezes its whole worm across many
channels, amplifying contention through blocking trees) toward virtual
cut-through: a blocked message accumulates in switch buffers, holding
each channel only for the ``B`` cycles its flits actually cross it.

This fabric models that regime: each channel is a FIFO server with
service time ``B`` (the message's flits), and the head moves one switch
per cycle when un-contended.  Zero-load latency is ``d + B + 1`` network
cycles (one injection hop, ``d`` switch hops, ejection + drain), matching
the analytical model's ``d * T_h + B`` to within a cycle, and channel
queueing matches the model's contention term far better than the rigid
worm does — which is precisely why it is the default for the Section 3
validation runs.  The rigid-worm fabric (:mod:`repro.sim.network`)
remains available via ``SimulationConfig(switching="wormhole")`` and is
compared against this one in the buffering ablation benchmark.

E-cube routing is shared with the wormhole fabric; no virtual channels
are needed here because a message occupying a channel always drains into
the next switch's buffer — channel holds are time-bounded, so the torus
ring cycle cannot deadlock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Tuple

from repro.errors import SimulationError
from repro.sim.message import Message
from repro.topology.torus import Torus

__all__ = ["Transit", "CutThroughFabric"]

ChannelKey = Tuple


@dataclass
class Transit:
    """One message's passage through the fabric (delivery record)."""

    message: Message
    route: List[ChannelKey]
    #: Index of the next route channel to acquire.
    next_hop: int = 0
    #: Cycles spent queued at the source's injection channel.
    source_wait: int = 0

    @property
    def hops(self) -> int:
        """Switch-to-switch hops (route minus injection/ejection)."""
        return len(self.route) - 2

    @property
    def flits(self) -> int:
        return self.message.flits


@dataclass
class _Channel:
    free_at: int = 0
    queue: Deque[Tuple[int, Transit]] = field(default_factory=deque)


class CutThroughFabric:
    """Cycle-driven cut-through network with per-channel FIFO queueing."""

    def __init__(
        self,
        torus: Torus,
        on_delivery: Callable[[Transit], None],
        stall_limit: int = 10000,  # accepted for interface parity; unused
    ):
        self.torus = torus
        self.on_delivery = on_delivery
        self._channels: Dict[ChannelKey, _Channel] = {}
        self._pending: List[ChannelKey] = []
        #: (deliver_cycle, transit) heap-free ordered list per cycle.
        self._deliveries: Dict[int, List[Transit]] = {}
        self._in_flight = 0
        self.link_flits: Dict[Tuple[int, int, int], int] = {}
        self.delivered_count = 0

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    def build_route(self, source: int, destination: int) -> List[ChannelKey]:
        """E-cube route, injection and ejection channels inclusive."""
        if source == destination:
            raise SimulationError(
                f"messages to self must not enter the network (node {source})"
            )
        route: List[ChannelKey] = [("inj", source)]
        for node, dim, step in self.torus.route_hops(source, destination):
            route.append(("link", node, dim, step))
        route.append(("ej", destination))
        return route

    # ------------------------------------------------------------------
    # Injection.
    # ------------------------------------------------------------------

    def inject(self, message: Message, cycle: int) -> None:
        message.injected_at = cycle
        transit = Transit(
            message=message,
            route=self.build_route(message.source, message.destination),
        )
        self._in_flight += 1
        self._enqueue(transit, cycle)

    def _enqueue(self, transit: Transit, eligible_from: int) -> None:
        key = transit.route[transit.next_hop]
        channel = self._channels.get(key)
        if channel is None:
            channel = _Channel()
            self._channels[key] = channel
        if not channel.queue:
            self._pending.append(key)
        channel.queue.append((eligible_from, transit))

    # ------------------------------------------------------------------
    # Per-cycle advance.
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        # Complete deliveries scheduled for this cycle.
        arrivals = self._deliveries.pop(cycle, None)
        if arrivals:
            for transit in arrivals:
                transit.message.delivered_at = cycle
                self.delivered_count += 1
                self._in_flight -= 1
                self.on_delivery(transit)

        # Grant channels.  Each channel serves one message at a time for
        # ``flits`` cycles; the head moves on after a single cycle.
        # _enqueue may append to self._pending while we iterate (a grant
        # feeding the next channel), so swap the list out first.
        pending, self._pending = self._pending, []
        for key in pending:
            channel = self._channels[key]
            if channel.queue:
                eligible_from, transit = channel.queue[0]
                if channel.free_at <= cycle and eligible_from <= cycle:
                    channel.queue.popleft()
                    self._grant(transit, key, channel, cycle)
            if channel.queue:
                self._pending.append(key)

    def _grant(
        self, transit: Transit, key: ChannelKey, channel: _Channel, cycle: int
    ) -> None:
        flits = transit.flits
        channel.free_at = cycle + flits
        if key[0] == "inj":
            transit.source_wait = cycle - transit.message.injected_at
        elif key[0] == "link":
            link = (key[1], key[2], key[3])
            self.link_flits[link] = self.link_flits.get(link, 0) + flits
        transit.next_hop += 1
        if transit.next_hop >= len(transit.route):
            # Ejection granted at ``cycle``: the tail arrives after all
            # flits cross the ejection channel.
            when = cycle + flits
            self._deliveries.setdefault(when, []).append(transit)
        else:
            # The head reaches the next switch one cycle later.
            self._enqueue(transit, cycle + 1)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def quiescent(self) -> bool:
        return self._in_flight == 0

"""Cycle-level multiprocessor simulator (the validation substrate).

Reconstructs the machine the paper simulates in Section 3: multithreaded
processors, a full-map invalidate directory protocol behind a single
per-node controller, and a flit-level wormhole-routed torus network whose
switches run twice as fast as the processors.
"""

from repro.sim.coherence import CacheState, CoherenceController, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.message import CONTROL_FLITS, DATA_FLITS, Message, MessageKind
from repro.sim.network import TorusFabric, Worm
from repro.sim.processor import ContextState, HardwareContext, Processor
from repro.sim.stats import MachineStats, MeasurementSummary
from repro.sim.trace import MachineSample, TraceEvent, Tracer

__all__ = [
    "SimulationConfig",
    "Machine",
    "MeasurementSummary",
    "MachineStats",
    "TorusFabric",
    "Worm",
    "Message",
    "MessageKind",
    "CONTROL_FLITS",
    "DATA_FLITS",
    "CoherenceController",
    "CacheState",
    "DirectoryState",
    "Processor",
    "HardwareContext",
    "ContextState",
    "Tracer",
    "TraceEvent",
    "MachineSample",
]

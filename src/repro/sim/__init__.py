"""Cycle-level multiprocessor simulator (the validation substrate).

Reconstructs the machine the paper simulates in Section 3: multithreaded
processors, a full-map invalidate directory protocol behind a single
per-node controller, and a flit-level wormhole-routed torus network whose
switches run twice as fast as the processors.

The wormhole fabric's hot path is the array kernel
(:mod:`repro.sim.kernel`, exported here as ``TorusFabric``); the
object-based implementation it replaced survives as
:class:`repro.sim.reference.ReferenceTorusFabric`, the executable
specification the parity suite pins the kernel to cycle for cycle.
Multi-seed replication with error bars lives in
:mod:`repro.sim.replicate`; :mod:`repro.sim.batch` runs many seeds of
one config in lockstep (one engine pass, bit-identical per-seed
summaries), behind ``run_replications(..., batch=R)``.
"""

from repro.sim.batch import BatchMachine, run_batch
from repro.sim.coherence import CacheState, CoherenceController, DirectoryState
from repro.sim.config import SimulationConfig
from repro.sim.kernel import FabricKernel
from repro.sim.machine import Machine
from repro.sim.message import CONTROL_FLITS, DATA_FLITS, Message, MessageKind
from repro.sim.network import TorusFabric, Worm
from repro.sim.processor import ContextState, HardwareContext, Processor
from repro.sim.reference import ReferenceTorusFabric, ReferenceWorm
from repro.sim.replicate import (
    MetricAggregate,
    ReplicationResult,
    aggregate_summaries,
    default_seeds,
    run_replications,
)
from repro.sim.stats import MachineStats, MeasurementSummary
from repro.sim.telemetry import (
    FabricTelemetry,
    ProbeResult,
    SaturationReport,
    TelemetryConfig,
    TelemetrySummary,
    detect_saturation,
    merge_snapshots,
    run_probe,
    write_telemetry_jsonl,
)
from repro.sim.trace import MachineSample, TraceEvent, Tracer

__all__ = [
    "SimulationConfig",
    "Machine",
    "MeasurementSummary",
    "MachineStats",
    "TorusFabric",
    "Worm",
    "FabricKernel",
    "ReferenceTorusFabric",
    "ReferenceWorm",
    "BatchMachine",
    "run_batch",
    "MetricAggregate",
    "ReplicationResult",
    "aggregate_summaries",
    "default_seeds",
    "run_replications",
    "Message",
    "MessageKind",
    "CONTROL_FLITS",
    "DATA_FLITS",
    "CoherenceController",
    "CacheState",
    "DirectoryState",
    "Processor",
    "HardwareContext",
    "ContextState",
    "Tracer",
    "TraceEvent",
    "MachineSample",
    "TelemetryConfig",
    "FabricTelemetry",
    "TelemetrySummary",
    "SaturationReport",
    "ProbeResult",
    "detect_saturation",
    "merge_snapshots",
    "run_probe",
    "write_telemetry_jsonl",
]

/* Batched replication core: C transliteration of repro.sim.batch's
 * coherence controller + cut-through fabric + per-cycle advance loop.
 *
 * The pure-Python BatchController/BatchFabric in batch.py is the
 * behavioral spec (itself parity-pinned against the serial machine);
 * this file ports it line for line so every replication's
 * MeasurementSummary stays bit-identical to the serial run.  Python
 * keeps the processors (unmodified RNG draw order) and drives this
 * core between processor boundaries via bc_advance().
 *
 * Compiled on demand by repro.sim.batchcore with the system C
 * compiler; no Python.h dependency (pure ABI, loaded via cffi).
 */

#include <stdlib.h>
#include <string.h>
#include <stdint.h>
#include <stdio.h>

typedef long long i64;
typedef unsigned long long u64;

#define NEVER (1LL << 62)

/* ------------------------------------------------------------------ */
/* CPython set-order emulation.                                        */
/*                                                                     */
/* Directory sharer fan-out iterates a Python set in the serial        */
/* engine, and message emission order feeds fabric arbitration, so     */
/* bit-exactness requires reproducing CPython 3.11 setobject.c slot    */
/* order exactly: same probe sequence (LINEAR_PROBES=9, perturb>>=5,   */
/* i = i*5+1+perturb), same resize points (fill*5 >= mask*3 -> grow    */
/* to used*4), same insert_clean rebuild.  Keys here are node ids      */
/* (small non-negative ints, hash(x) == x), so a slot holds the key    */
/* itself with -2 = empty, -1 = dummy.                                 */
/* ------------------------------------------------------------------ */

#define SET_EMPTY (-2LL)
#define SET_DUMMY (-1LL)

typedef struct {
    i64 *t;
    i64 mask;
    i64 fill;  /* active + dummy */
    i64 used;  /* active */
} Set;

static void set_init(Set *s) {
    s->t = (i64 *)malloc(8 * sizeof(i64));
    for (int i = 0; i < 8; i++) s->t[i] = SET_EMPTY;
    s->mask = 7;
    s->fill = 0;
    s->used = 0;
}

static void set_free(Set *s) {
    free(s->t);
    s->t = NULL;
}

/* Rebind to a fresh empty set (Python: entry.sharers = set() / {...}). */
static void set_reset(Set *s) {
    if (s->mask == 7 && s->fill == 0) return;
    free(s->t);
    set_init(s);
}

static void set_insert_clean(i64 *table, i64 mask, i64 key) {
    u64 perturb = (u64)key;
    i64 i = key & mask;
    for (;;) {
        i64 *entry = &table[i];
        i64 probes = (i + 9 <= mask) ? 10 : 1;
        do {
            if (*entry == SET_EMPTY) { *entry = key; return; }
            entry++;
        } while (--probes);
        perturb >>= 5;
        i = (i * 5 + 1 + (i64)perturb) & mask;
    }
}

static void set_resize(Set *s, i64 minused) {
    i64 newsize = 8;
    while (newsize <= minused) newsize <<= 1;
    i64 *old = s->t;
    i64 oldmask = s->mask;
    s->t = (i64 *)malloc((size_t)newsize * sizeof(i64));
    for (i64 i = 0; i < newsize; i++) s->t[i] = SET_EMPTY;
    s->mask = newsize - 1;
    s->fill = s->used;
    for (i64 i = 0; i <= oldmask; i++)
        if (old[i] >= 0) set_insert_clean(s->t, s->mask, old[i]);
    free(old);
}

static void set_add(Set *s, i64 key) {
    i64 mask = s->mask;
    u64 perturb = (u64)key;
    i64 i = key & mask;
    i64 *freeslot = NULL;
    for (;;) {
        i64 *entry = &s->t[i];
        i64 probes = (i + 9 <= mask) ? 10 : 1;
        do {
            i64 h = *entry;
            if (h == SET_EMPTY) {
                if (freeslot != NULL) {
                    *freeslot = key;
                    s->used++;
                    return;
                }
                *entry = key;
                s->fill++;
                s->used++;
                if ((u64)s->fill * 5 < (u64)mask * 3) return;
                set_resize(s, s->used > 50000 ? s->used * 2 : s->used * 4);
                return;
            }
            if (h == key) return;
            if (h == SET_DUMMY) freeslot = entry;  /* last dummy wins */
            entry++;
        } while (--probes);
        perturb >>= 5;
        i = (i * 5 + 1 + (i64)perturb) & mask;
    }
}

static i64 *set_find(Set *s, i64 key) {
    i64 mask = s->mask;
    u64 perturb = (u64)key;
    i64 i = key & mask;
    for (;;) {
        i64 *entry = &s->t[i];
        i64 probes = (i + 9 <= mask) ? 10 : 1;
        do {
            if (*entry == key) return entry;
            if (*entry == SET_EMPTY) return NULL;
            entry++;
        } while (--probes);
        perturb >>= 5;
        i = (i * 5 + 1 + (i64)perturb) & mask;
    }
}

static int set_contains(Set *s, i64 key) {
    return set_find(s, key) != NULL;
}

static void set_discard(Set *s, i64 key) {
    i64 *entry = set_find(s, key);
    if (entry != NULL) {
        *entry = SET_DUMMY;
        s->used--;
    }
}

/* -- standalone test API (fuzzed against real interpreter sets) ----- */

void *ts_new(void) {
    Set *s = (Set *)malloc(sizeof(Set));
    set_init(s);
    return s;
}

void ts_free(void *p) {
    set_free((Set *)p);
    free(p);
}

void ts_add(void *p, i64 key) { set_add((Set *)p, key); }
void ts_discard(void *p, i64 key) { set_discard((Set *)p, key); }
int ts_contains(void *p, i64 key) { return set_contains((Set *)p, key); }
i64 ts_len(void *p) { return ((Set *)p)->used; }

i64 ts_items(void *p, i64 *out) {
    Set *s = (Set *)p;
    i64 n = 0;
    for (i64 i = 0; i <= s->mask; i++)
        if (s->t[i] >= 0) out[n++] = s->t[i];
    return n;
}

/* ------------------------------------------------------------------ */
/* Protocol constants (mirrors repro.sim.message / coherence enums).   */
/* ------------------------------------------------------------------ */

enum {
    K_READ = 0, K_WRITE = 1, K_DATA = 2, K_INV = 3,
    K_ACK = 4, K_FETCH = 5, K_FETCHINV = 6, K_WB = 7,
};

/* DATA_REPLY and WRITEBACK carry data (24 flits); the rest are
 * control (8).  Guarded at load time by batchcore.py against
 * repro.sim.message._FLITS_BY_KIND. */
static const int FLITS_OF[8] = {8, 8, 24, 8, 8, 8, 8, 24};

enum { CS_INVALID = 0, CS_SHARED = 1, CS_MODIFIED = 2 };
enum { DS_UNOWNED = 0, DS_SHARED = 1, DS_MODIFIED = 2 };

enum {
    OP_HANDLE = 0, OP_BEGIN = 1, OP_LAUNCH = 2, OP_REPLY = 3,
    OP_FINISH = 4, OP_DEFER = 5, OP_NOP = 6,
};

#define UID_STRIDE (1LL << 20)

/* ------------------------------------------------------------------ */
/* Pooled objects.                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    int kind, source, dest, block, flits;
    i64 txn, injected_at;
    int next_free;
} Msg;

typedef struct {
    int msg, route_off, route_len, hop;
    i64 wait;
    int next_free;
} Transit;

typedef struct {
    int is_write;
    i64 handle;
    int next;
} Waiter;

typedef struct {
    int block, is_write, messages;
    i64 issued_at, uid, handle;
    int whead, wtail;
    int next_free;
} Req;

/* Engine event (one opcode tuple of the Python port). */
typedef struct {
    int cost, op, b0, a0, a1;
    i64 a2;
} Ev;

typedef struct {
    Ev *q;
    int head, count, cap;
    Ev cur;
    int has_cur, ticking, notified;
    i64 done_at, next_uid;
} Ctrl;

typedef struct {
    int requester, is_write;
    i64 txn;
} DefItem;

typedef struct {
    int8_t state, busy, init, txn_active, txn_is_write, txn_wb;
    int owner, txn_requester, txn_pending;
    i64 txn_uid;
    Set sharers;
    DefItem *ditems;
    int dhead, dcount, dcap;
} Dir;

/* LRU-as-dict-order cache: append-only (block, seq) log per
 * (rep, node); an entry is live iff the block's state is non-invalid
 * and its seq matches.  Compacted when the log outgrows the live set. */
typedef struct {
    int *items;  /* pairs (block, seq) */
    int start, end, cap;
    int live, seq;
} CacheLog;

typedef struct {
    i64 elig;
    int transit;
} QEnt;

typedef struct {
    QEnt *q;
    int head, count, cap;
} Queue;

typedef struct {
    u64 key;  /* (cycle << 32) | seq */
    int transit;
} DHEnt;

typedef struct {
    i64 *free_at;
    i64 *head_elig;
    Queue *queues;
    int *pending, *pend2;
    int pcount;
    i64 *link_flits;
    DHEnt *dheap;
    int dcount, dcap;
    u64 dseq;
    i64 in_flight;
} Fab;

typedef struct {
    i64 cycle;
    Ctrl *ctrl;
    int *ready;
    int ready_count;
    u64 *wake;  /* heap of (done_at << 20) | node */
    int wcount, wcap;
    Fab fab;
    int measuring;
    i64 sent, flits_sum, flits_sq, delivered, lat_total, hops_total;
    i64 hopl_count, started, rcompleted, lcompleted, txn_lat, evictions;
    double hopl_total;
    i64 *per_node_sent;
    i64 *comp;  /* pairs (handle, cycle) */
    int comp_count, comp_cap;
    int *batch;  /* ctrl-phase scratch */
} Rep;

typedef struct Batch {
    int R, N, dims, radix, capacity, channels, links;
    int req_cost, recv_cost, send_cost, mem_cost;
    i64 RN;
    int errcode;
    char errmsg[256];
    /* blocks (block-major so adding a block appends, never relayouts) */
    int nblocks, blocks_cap;
    int *block_home;
    int8_t *cache_state;  /* [block*R*N + rep*N + node] */
    int *cache_seq;       /* same layout */
    int *outstanding;     /* same layout; -1 or Req index */
    Dir *dir;             /* [block*R + rep] */
    CacheLog *clog;       /* [rep*N + node] */
    /* pools */
    Msg *msgs;
    int msgs_cap, msg_free;
    Transit *transits;
    int transits_cap, transit_free;
    Req *reqs;
    int reqs_cap, req_free;
    Waiter *waiters;
    int waiters_cap, waiter_free;
    /* shared e-cube routes */
    int **route_rows;  /* [N] -> [N] arena offsets or -1 */
    int *arena;        /* [len, ch...] records */
    int arena_len, arena_cap;
    int *pow_radix;    /* [dims] */
    Rep *reps;
} Batch;

static void fail(Batch *b, int code, const char *msg) {
    if (b->errcode) return;
    b->errcode = code;
    snprintf(b->errmsg, sizeof(b->errmsg), "%s", msg);
}

/* -- pool allocators ------------------------------------------------ */

static int msg_new(Batch *b, int kind, int source, int dest, int block,
                   i64 txn) {
    int idx = b->msg_free;
    if (idx < 0) {
        int old = b->msgs_cap;
        b->msgs_cap = old ? old * 2 : 256;
        b->msgs = (Msg *)realloc(b->msgs, (size_t)b->msgs_cap * sizeof(Msg));
        for (int i = old; i < b->msgs_cap; i++)
            b->msgs[i].next_free = (i + 1 < b->msgs_cap) ? i + 1 : -1;
        idx = old;
    }
    Msg *m = &b->msgs[idx];
    b->msg_free = m->next_free;
    m->kind = kind;
    m->source = source;
    m->dest = dest;
    m->block = block;
    m->flits = FLITS_OF[kind];
    m->txn = txn;
    m->injected_at = -1;
    return idx;
}

static void msg_del(Batch *b, int idx) {
    b->msgs[idx].next_free = b->msg_free;
    b->msg_free = idx;
}

static int transit_new(Batch *b, int msg, int route_off, int route_len) {
    int idx = b->transit_free;
    if (idx < 0) {
        int old = b->transits_cap;
        b->transits_cap = old ? old * 2 : 256;
        b->transits = (Transit *)realloc(
            b->transits, (size_t)b->transits_cap * sizeof(Transit));
        for (int i = old; i < b->transits_cap; i++)
            b->transits[i].next_free = (i + 1 < b->transits_cap) ? i + 1 : -1;
        idx = old;
    }
    Transit *t = &b->transits[idx];
    b->transit_free = t->next_free;
    t->msg = msg;
    t->route_off = route_off;
    t->route_len = route_len;
    t->hop = 0;
    t->wait = 0;
    return idx;
}

static void transit_del(Batch *b, int idx) {
    b->transits[idx].next_free = b->transit_free;
    b->transit_free = idx;
}

static int req_new(Batch *b, int block, int is_write, i64 issued_at,
                   i64 uid, i64 handle) {
    int idx = b->req_free;
    if (idx < 0) {
        int old = b->reqs_cap;
        b->reqs_cap = old ? old * 2 : 128;
        b->reqs = (Req *)realloc(b->reqs,
                                 (size_t)b->reqs_cap * sizeof(Req));
        for (int i = old; i < b->reqs_cap; i++)
            b->reqs[i].next_free = (i + 1 < b->reqs_cap) ? i + 1 : -1;
        idx = old;
    }
    Req *r = &b->reqs[idx];
    b->req_free = r->next_free;
    r->block = block;
    r->is_write = is_write;
    r->messages = 0;
    r->issued_at = issued_at;
    r->uid = uid;
    r->handle = handle;
    r->whead = -1;
    r->wtail = -1;
    return idx;
}

static void req_del(Batch *b, int idx) {
    int w = b->reqs[idx].whead;
    while (w >= 0) {
        int nxt = b->waiters[w].next;
        b->waiters[w].next = b->waiter_free;
        b->waiter_free = w;
        w = nxt;
    }
    b->reqs[idx].next_free = b->req_free;
    b->req_free = idx;
}

static void req_add_waiter(Batch *b, int ridx, int is_write, i64 handle) {
    int idx = b->waiter_free;
    if (idx < 0) {
        int old = b->waiters_cap;
        b->waiters_cap = old ? old * 2 : 128;
        b->waiters = (Waiter *)realloc(
            b->waiters, (size_t)b->waiters_cap * sizeof(Waiter));
        for (int i = old; i < b->waiters_cap; i++)
            b->waiters[i].next = (i + 1 < b->waiters_cap) ? i + 1 : -1;
        idx = old;
    }
    Waiter *w = &b->waiters[idx];
    b->waiter_free = w->next;
    w->is_write = is_write;
    w->handle = handle;
    w->next = -1;
    Req *r = &b->reqs[ridx];
    if (r->wtail < 0) r->whead = idx;
    else b->waiters[r->wtail].next = idx;
    r->wtail = idx;
}

/* ------------------------------------------------------------------ */
/* Cache (LRU-as-dict-order) over the append-only log.                 */
/* ------------------------------------------------------------------ */

#define CSTATE(b, blk, r, node) \
    ((b)->cache_state[(size_t)(blk) * (b)->RN + (size_t)(r) * (b)->N + (node)])
#define CSEQ(b, blk, r, node) \
    ((b)->cache_seq[(size_t)(blk) * (b)->RN + (size_t)(r) * (b)->N + (node)])
#define OUTST(b, blk, r, node) \
    ((b)->outstanding[(size_t)(blk) * (b)->RN + (size_t)(r) * (b)->N + (node)])

static void clog_append(Batch *b, CacheLog *cl, int r, int node,
                        int block, int seq) {
    if (cl->end >= cl->cap) {
        /* Compact first if the log is mostly stale, else grow. */
        if (cl->end - cl->start > 4 * cl->live + 16) {
            int w = cl->start;
            for (int i = cl->start; i < cl->end; i++) {
                int blk = cl->items[2 * i], sq = cl->items[2 * i + 1];
                if (CSTATE(b, blk, r, node) != CS_INVALID &&
                    CSEQ(b, blk, r, node) == sq) {
                    cl->items[2 * w] = blk;
                    cl->items[2 * w + 1] = sq;
                    w++;
                }
            }
            /* slide to origin */
            memmove(cl->items, cl->items + 2 * cl->start,
                    (size_t)(w - cl->start) * 2 * sizeof(int));
            cl->end = w - cl->start;
            cl->start = 0;
        }
        if (cl->end >= cl->cap) {
            cl->cap = cl->cap ? cl->cap * 2 : 16;
            cl->items = (int *)realloc(cl->items,
                                       (size_t)cl->cap * 2 * sizeof(int));
        }
    }
    cl->items[2 * cl->end] = block;
    cl->items[2 * cl->end + 1] = seq;
    cl->end++;
}

static int cache_get(Batch *b, int r, int node, int block) {
    return CSTATE(b, block, r, node);
}

/* cache.pop(block, None): returns prior state (CS_INVALID if absent). */
static int cache_pop(Batch *b, int r, int node, int block) {
    int st = CSTATE(b, block, r, node);
    if (st != CS_INVALID) {
        CSTATE(b, block, r, node) = CS_INVALID;
        b->clog[(size_t)r * b->N + node].live--;
    }
    return st;
}

/* cache[block] = state after a pop: append to the back of LRU order. */
static void cache_put(Batch *b, int r, int node, int block, int state) {
    CacheLog *cl = &b->clog[(size_t)r * b->N + node];
    int seq = ++cl->seq;
    CSTATE(b, block, r, node) = (int8_t)state;
    CSEQ(b, block, r, node) = seq;
    cl->live++;
    clog_append(b, cl, r, node, block, seq);
}

/* record_access: pop + reinsert (touch). */
void bc_record_access(Batch *b, int r, int node, int block) {
    if (CSTATE(b, block, r, node) == CS_INVALID) return;
    CacheLog *cl = &b->clog[(size_t)r * b->N + node];
    int seq = ++cl->seq;
    CSEQ(b, block, r, node) = seq;
    clog_append(b, cl, r, node, block, seq);
}

int bc_is_hit(Batch *b, int r, int node, int block, int is_write) {
    int st = CSTATE(b, block, r, node);
    if (is_write) return st == CS_MODIFIED;
    return st != CS_INVALID;
}

/* First live entry in LRU order that is neither `block` nor
 * outstanding (port of the _install victim scan over dict order). */
static int cache_victim(Batch *b, int r, int node, int block) {
    CacheLog *cl = &b->clog[(size_t)r * b->N + node];
    for (int i = cl->start; i < cl->end; i++) {
        int blk = cl->items[2 * i], sq = cl->items[2 * i + 1];
        if (CSTATE(b, blk, r, node) == CS_INVALID ||
            CSEQ(b, blk, r, node) != sq) {
            if (i == cl->start) cl->start++;
            continue;
        }
        if (blk == block || OUTST(b, blk, r, node) >= 0) continue;
        return blk;
    }
    return -1;
}

/* ------------------------------------------------------------------ */
/* Directory entries.                                                  */
/* ------------------------------------------------------------------ */

static Dir *dir_entry(Batch *b, int r, int block) {
    Dir *d = &b->dir[(size_t)block * b->R + r];
    if (!d->init) {
        d->init = 1;
        d->state = DS_UNOWNED;
        d->busy = 0;
        d->txn_active = 0;
        d->owner = -1;
        set_init(&d->sharers);
        d->ditems = NULL;
        d->dhead = 0;
        d->dcount = 0;
        d->dcap = 0;
    }
    return d;
}

static void dir_defer(Dir *d, int requester, int is_write, i64 txn) {
    if (d->dcount >= d->dcap) {
        int old = d->dcap;
        d->dcap = old ? old * 2 : 4;
        DefItem *ni = (DefItem *)malloc((size_t)d->dcap * sizeof(DefItem));
        for (int i = 0; i < d->dcount; i++)
            ni[i] = d->ditems[(d->dhead + i) % (old ? old : 1)];
        free(d->ditems);
        d->ditems = ni;
        d->dhead = 0;
    }
    DefItem *it = &d->ditems[(d->dhead + d->dcount) % d->dcap];
    it->requester = requester;
    it->is_write = is_write;
    it->txn = txn;
    d->dcount++;
}

/* ------------------------------------------------------------------ */
/* Engine queue / wake heap / completions.                             */
/* ------------------------------------------------------------------ */

static void ev_push(Ctrl *c, Ev ev) {
    if (c->count >= c->cap) {
        int old = c->cap;
        c->cap = old ? old * 2 : 8;
        Ev *nq = (Ev *)malloc((size_t)c->cap * sizeof(Ev));
        for (int i = 0; i < c->count; i++)
            nq[i] = c->q[(c->head + i) % (old ? old : 1)];
        free(c->q);
        c->q = nq;
        c->head = 0;
    }
    c->q[(c->head + c->count) % c->cap] = ev;
    c->count++;
}

static Ev ev_pop(Ctrl *c) {
    Ev ev = c->q[c->head];
    c->head = (c->head + 1) % c->cap;
    c->count--;
    return ev;
}

static void wheap_push(Rep *rep, u64 key) {
    if (rep->wcount >= rep->wcap) {
        rep->wcap = rep->wcap ? rep->wcap * 2 : 16;
        rep->wake = (u64 *)realloc(rep->wake,
                                   (size_t)rep->wcap * sizeof(u64));
    }
    int i = rep->wcount++;
    u64 *h = rep->wake;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p] <= key) break;
        h[i] = h[p];
        i = p;
    }
    h[i] = key;
}

static u64 wheap_pop(Rep *rep) {
    u64 *h = rep->wake;
    u64 top = h[0];
    u64 last = h[--rep->wcount];
    int n = rep->wcount, i = 0;
    for (;;) {
        int l = 2 * i + 1;
        if (l >= n) break;
        if (l + 1 < n && h[l + 1] < h[l]) l++;
        if (h[l] >= last) break;
        h[i] = h[l];
        i = l;
    }
    if (n) h[i] = last;
    return top;
}

static void comp_push(Rep *rep, i64 handle, i64 cycle) {
    if (rep->comp_count * 2 + 2 > rep->comp_cap) {
        rep->comp_cap = rep->comp_cap ? rep->comp_cap * 2 : 64;
        rep->comp = (i64 *)realloc(rep->comp,
                                   (size_t)rep->comp_cap * sizeof(i64));
    }
    rep->comp[2 * rep->comp_count] = handle;
    rep->comp[2 * rep->comp_count + 1] = cycle;
    rep->comp_count++;
}

/* ------------------------------------------------------------------ */
/* Shared e-cube routes (port of Torus.route_hops + FabricGeometry).   */
/* Channel ids: inj(s)=s, ej(d)=N+d, link(node,dim,step) =             */
/* 2N + (node*dims + dim)*2 + (step==+1 ? 0 : 1).                      */
/* ------------------------------------------------------------------ */

static int route_get(Batch *b, int src, int dst, int *len_out) {
    int *row = b->route_rows[src];
    if (row == NULL) {
        row = (int *)malloc((size_t)b->N * sizeof(int));
        for (int i = 0; i < b->N; i++) row[i] = -1;
        b->route_rows[src] = row;
    }
    int off = row[dst];
    if (off >= 0) {
        *len_out = b->arena[off];
        return off + 1;
    }
    /* build */
    int chans[2 + 64];  /* dims * radix hops max; guarded in bc_create */
    int len = 0;
    chans[len++] = src;  /* injection channel */
    int node = src;
    int ca[8], cb[8];
    int tmp = src;
    for (int d = 0; d < b->dims; d++) { ca[d] = tmp % b->radix; tmp /= b->radix; }
    tmp = dst;
    for (int d = 0; d < b->dims; d++) { cb[d] = tmp % b->radix; tmp /= b->radix; }
    for (int d = 0; d < b->dims; d++) {
        int forward = cb[d] - ca[d];
        if (forward < 0) forward += b->radix;
        if (forward == 0) continue;
        int backward = b->radix - forward;
        int step, n;
        if (forward <= backward) { step = 1; n = forward; }
        else { step = -1; n = backward; }
        for (int i = 0; i < n; i++) {
            chans[len++] = 2 * b->N + (node * b->dims + d) * 2 +
                           (step == 1 ? 0 : 1);
            int oldc = ca[d];
            int newc = oldc + step;
            if (newc < 0) newc += b->radix;
            if (newc >= b->radix) newc -= b->radix;
            node += (newc - oldc) * b->pow_radix[d];
            ca[d] = newc;
        }
    }
    chans[len++] = b->N + dst;  /* ejection channel */
    if (b->arena_len + len + 1 > b->arena_cap) {
        b->arena_cap = b->arena_cap ? b->arena_cap * 2 : 4096;
        while (b->arena_len + len + 1 > b->arena_cap) b->arena_cap *= 2;
        b->arena = (int *)realloc(b->arena,
                                  (size_t)b->arena_cap * sizeof(int));
    }
    off = b->arena_len;
    b->arena[off] = len;
    memcpy(b->arena + off + 1, chans, (size_t)len * sizeof(int));
    b->arena_len += len + 1;
    row[dst] = off;
    *len_out = len;
    return off + 1;
}

/* ------------------------------------------------------------------ */
/* Fabric (port of BatchFabric).                                       */
/* ------------------------------------------------------------------ */

static void qe_push(Queue *q, i64 elig, int transit) {
    if (q->count >= q->cap) {
        int old = q->cap;
        q->cap = old ? old * 2 : 4;
        QEnt *nq = (QEnt *)malloc((size_t)q->cap * sizeof(QEnt));
        for (int i = 0; i < q->count; i++)
            nq[i] = q->q[(q->head + i) % (old ? old : 1)];
        free(q->q);
        q->q = nq;
        q->head = 0;
    }
    q->q[(q->head + q->count) % q->cap].elig = elig;
    q->q[(q->head + q->count) % q->cap].transit = transit;
    q->count++;
}

static QEnt qe_pop(Queue *q) {
    QEnt e = q->q[q->head];
    q->head = (q->head + 1) % q->cap;
    q->count--;
    return e;
}

static void dheap_push(Fab *f, u64 key, int transit) {
    if (f->dcount >= f->dcap) {
        f->dcap = f->dcap ? f->dcap * 2 : 32;
        f->dheap = (DHEnt *)realloc(f->dheap,
                                    (size_t)f->dcap * sizeof(DHEnt));
    }
    int i = f->dcount++;
    DHEnt *h = f->dheap;
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (h[p].key <= key) break;
        h[i] = h[p];
        i = p;
    }
    h[i].key = key;
    h[i].transit = transit;
}

static DHEnt dheap_pop(Fab *f) {
    DHEnt *h = f->dheap;
    DHEnt top = h[0];
    DHEnt last = h[--f->dcount];
    int n = f->dcount, i = 0;
    for (;;) {
        int l = 2 * i + 1;
        if (l >= n) break;
        if (l + 1 < n && h[l + 1].key < h[l].key) l++;
        if (h[l].key >= last.key) break;
        h[i] = h[l];
        i = l;
    }
    if (n) h[i] = last;
    return top;
}

static void fab_inject(Batch *b, Rep *rep, int midx, i64 cycle) {
    Fab *f = &rep->fab;
    Msg *m = &b->msgs[midx];
    m->injected_at = cycle;
    int rlen;
    int roff = route_get(b, m->source, m->dest, &rlen);
    int tidx = transit_new(b, midx, roff, rlen);
    int ch = b->arena[roff];
    Queue *q = &f->queues[ch];
    if (!q->count) {
        f->pending[f->pcount++] = ch;
        f->head_elig[ch] = cycle;
    }
    qe_push(q, cycle, tidx);
    f->in_flight++;
}

static i64 fab_next(Batch *b, Rep *rep, i64 cycle) {
    Fab *f = &rep->fab;
    i64 earliest = f->dcount ? (i64)(f->dheap[0].key >> 32) : -1;
    for (int i = 0; i < f->pcount; i++) {
        int ch = f->pending[i];
        i64 at = f->free_at[ch];
        i64 el = f->head_elig[ch];
        if (el > at) at = el;
        if (at <= cycle) return cycle;
        if (earliest < 0 || at < earliest) earliest = at;
    }
    return earliest;
}

/* ------------------------------------------------------------------ */
/* Controller engine + protocol handlers (port of BatchController).    */
/* ------------------------------------------------------------------ */

static void ctrl_execute(Batch *b, Rep *rep, int r, int node, Ev *ev,
                         i64 done);

static void ctrl_schedule(Rep *rep, int node, int cost, int op, int b0,
                          int a0, int a1, i64 a2) {
    Ctrl *c = &rep->ctrl[node];
    Ev ev;
    ev.cost = cost;
    ev.op = op;
    ev.b0 = b0;
    ev.a0 = a0;
    ev.a1 = a1;
    ev.a2 = a2;
    ev_push(c, ev);
    if (!c->has_cur && !c->ticking && !c->notified) {
        c->notified = 1;
        rep->ready[rep->ready_count++] = node;
    }
}

static void ctrl_tick(Batch *b, Rep *rep, int r, int node, i64 cycle) {
    Ctrl *c = &rep->ctrl[node];
    c->ticking = 1;
    for (;;) {
        if (c->has_cur) {
            if (c->done_at > cycle) break;
            c->has_cur = 0;
            Ev ev = c->cur;
            ctrl_execute(b, rep, r, node, &ev, c->done_at);
            if (b->errcode) break;
            continue;
        }
        if (!c->count) break;
        Ev ev = ev_pop(c);
        if (ev.cost == 0) {
            ctrl_execute(b, rep, r, node, &ev, cycle);
            if (b->errcode) break;
            continue;
        }
        c->done_at = cycle + ev.cost;
        c->cur = ev;
        c->has_cur = 1;
    }
    c->ticking = 0;
}

static void do_emit(Batch *b, Rep *rep, int r, int node, int kind,
                    int dest, int block, i64 txn) {
    int midx = msg_new(b, kind, node, dest, block, txn);
    ctrl_schedule(rep, node, b->send_cost, OP_LAUNCH, 0, midx, -1, 0);
}

static void do_reply_with_data(Batch *b, Rep *rep, int r, int node,
                               int block, int requester, i64 txn) {
    Dir *d = dir_entry(b, r, block);
    d->busy = 1;
    if (requester == node)
        ctrl_schedule(rep, node, b->mem_cost, OP_FINISH, 0, 0, block, 0);
    else
        ctrl_schedule(rep, node, b->mem_cost, OP_REPLY, 0, requester, block,
                      txn);
}

static void do_run_deferred(Batch *b, Rep *rep, int r, int node, int block) {
    Dir *d = dir_entry(b, r, block);
    if (!d->dcount || d->busy) return;
    DefItem it = d->ditems[d->dhead];
    d->dhead = (d->dhead + 1) % d->dcap;
    d->dcount--;
    ctrl_schedule(rep, node, b->req_cost, OP_DEFER, it.is_write,
                  it.requester, block, it.txn);
}

static void do_absorb_writeback(Batch *b, Rep *rep, int r, int node,
                                int block, int source, int source_retains);
static void do_evict(Batch *b, Rep *rep, int r, int node, int block);

static void do_install(Batch *b, Rep *rep, int r, int node, int block,
                       int state) {
    cache_pop(b, r, node, block);
    cache_put(b, r, node, block, state);
    if (b->capacity <= 0) return;
    CacheLog *cl = &b->clog[(size_t)r * b->N + node];
    while (cl->live > b->capacity) {
        int victim = cache_victim(b, r, node, block);
        if (victim < 0) return;
        do_evict(b, rep, r, node, victim);
        if (b->errcode) return;
    }
}

static void do_evict(Batch *b, Rep *rep, int r, int node, int block) {
    int state = cache_pop(b, r, node, block);
    if (rep->measuring) rep->evictions++;
    if (state != CS_MODIFIED) return;
    int home = b->block_home[block];
    if (home == node) {
        do_absorb_writeback(b, rep, r, node, block, node, 0);
        ctrl_schedule(rep, node, b->mem_cost, OP_NOP, 0, 0, 0, 0);
    } else {
        do_emit(b, rep, r, node, K_WB, home, block, -1);
    }
}

static void do_grant_write(Batch *b, Rep *rep, int r, int node, int block,
                           int requester, i64 txn) {
    Dir *d = dir_entry(b, r, block);
    d->state = DS_MODIFIED;
    set_reset(&d->sharers);
    d->owner = requester;
    do_reply_with_data(b, rep, r, node, block, requester, txn);
}

static void do_home_read(Batch *b, Rep *rep, int r, int node, int block,
                         int requester, i64 txn) {
    Dir *d = dir_entry(b, r, block);
    if (d->state == DS_MODIFIED && d->owner != requester) {
        if (d->owner == node) {
            do_install(b, rep, r, node, block, CS_SHARED);
            d = dir_entry(b, r, block);
            d->state = DS_SHARED;
            set_reset(&d->sharers);
            set_add(&d->sharers, node);
            set_add(&d->sharers, requester);
            d->owner = -1;
            do_reply_with_data(b, rep, r, node, block, requester, txn);
            return;
        }
        d->busy = 1;
        d->txn_active = 1;
        d->txn_requester = requester;
        d->txn_is_write = 0;
        d->txn_uid = txn;
        d->txn_pending = 0;
        d->txn_wb = 1;
        do_emit(b, rep, r, node, K_FETCH, d->owner, block, txn);
        return;
    }
    if (d->state == DS_MODIFIED) {
        int owner = d->owner;
        set_reset(&d->sharers);
        set_add(&d->sharers, owner);
        d->owner = -1;
    }
    d->state = DS_SHARED;
    set_add(&d->sharers, requester);
    do_reply_with_data(b, rep, r, node, block, requester, txn);
}

static void do_home_write(Batch *b, Rep *rep, int r, int node, int block,
                          int requester, i64 txn) {
    Dir *d = dir_entry(b, r, block);
    if (d->state == DS_MODIFIED && d->owner != requester) {
        if (d->owner == node) {
            cache_pop(b, r, node, block);
            d->owner = requester;
            do_reply_with_data(b, rep, r, node, block, requester, txn);
            return;
        }
        d->busy = 1;
        d->txn_active = 1;
        d->txn_requester = requester;
        d->txn_is_write = 1;
        d->txn_uid = txn;
        d->txn_pending = 0;
        d->txn_wb = 1;
        do_emit(b, rep, r, node, K_FETCHINV, d->owner, block, txn);
        return;
    }
    /* remote_sharers = {s for s in entry.sharers if s != requester} */
    Set rs;
    set_init(&rs);
    for (i64 i = 0; i <= d->sharers.mask; i++) {
        i64 s = d->sharers.t[i];
        if (s >= 0 && s != requester) set_add(&rs, s);
    }
    if (set_contains(&rs, node)) {
        cache_pop(b, r, node, block);
        set_discard(&rs, node);
    }
    if (rs.used) {
        d->busy = 1;
        d->txn_active = 1;
        d->txn_requester = requester;
        d->txn_is_write = 1;
        d->txn_uid = txn;
        d->txn_pending = (int)rs.used;
        d->txn_wb = 0;
        for (i64 i = 0; i <= rs.mask; i++) {
            i64 s = rs.t[i];
            if (s >= 0)
                do_emit(b, rep, r, node, K_INV, (int)s, block, txn);
        }
        set_free(&rs);
        return;
    }
    set_free(&rs);
    do_grant_write(b, rep, r, node, block, requester, txn);
}

static void do_home_handle_request(Batch *b, Rep *rep, int r, int node,
                                   int block, int requester, int is_write,
                                   i64 txn) {
    if (b->block_home[block] != node) {
        fail(b, 2, "request received at a non-home node");
        return;
    }
    Dir *d = dir_entry(b, r, block);
    if (d->busy) {
        dir_defer(d, requester, is_write, txn);
        return;
    }
    if (is_write)
        do_home_write(b, rep, r, node, block, requester, txn);
    else
        do_home_read(b, rep, r, node, block, requester, txn);
}

static void do_home_handle_ack(Batch *b, Rep *rep, int r, int node,
                               int block) {
    Dir *d = dir_entry(b, r, block);
    if (!d->txn_active || d->txn_pending <= 0) {
        fail(b, 2, "unexpected invalidate ack");
        return;
    }
    d->txn_pending--;
    if (d->txn_pending > 0) return;
    int requester = d->txn_requester;
    i64 uid = d->txn_uid;
    d->txn_active = 0;
    d->busy = 0;
    do_grant_write(b, rep, r, node, block, requester, uid);
    do_run_deferred(b, rep, r, node, block);
}

static void do_absorb_writeback(Batch *b, Rep *rep, int r, int node,
                                int block, int source, int source_retains) {
    Dir *d = dir_entry(b, r, block);
    if (d->txn_active && d->txn_wb) {
        int requester = d->txn_requester;
        int is_write = d->txn_is_write;
        i64 uid = d->txn_uid;
        d->txn_active = 0;
        d->busy = 0;
        if (is_write) {
            d->state = DS_MODIFIED;
            set_reset(&d->sharers);
            d->owner = requester;
        } else {
            d->state = DS_SHARED;
            set_reset(&d->sharers);
            set_add(&d->sharers, requester);
            if (source_retains) set_add(&d->sharers, source);
            d->owner = -1;
        }
        do_reply_with_data(b, rep, r, node, block, requester, uid);
        do_run_deferred(b, rep, r, node, block);
        return;
    }
    if (d->txn_active) {
        fail(b, 2, "writeback collided with a non-fetch transaction");
        return;
    }
    if (d->state != DS_MODIFIED || d->owner != source) {
        fail(b, 2, "eviction writeback does not match directory state");
        return;
    }
    d->state = DS_UNOWNED;
    set_reset(&d->sharers);
    d->owner = -1;
    do_run_deferred(b, rep, r, node, block);
}

static void do_handle_fetch(Batch *b, Rep *rep, int r, int node, int block,
                            int source, i64 txn, int invalidate) {
    int state = cache_get(b, r, node, block);
    if (state == CS_INVALID) return;
    if (state != CS_MODIFIED) {
        fail(b, 2, "fetch for a block not in M state");
        return;
    }
    if (invalidate)
        cache_pop(b, r, node, block);
    else
        do_install(b, rep, r, node, block, CS_SHARED);
    do_emit(b, rep, r, node, K_WB, source, block, txn);
}

static void do_release_waiters(Batch *b, Rep *rep, int r, int node,
                               int block, int whead, int state, i64 cycle);
static void request_internal(Batch *b, Rep *rep, int r, int node, int block,
                             int is_write, i64 cycle, i64 handle);

static void do_complete_remote_miss(Batch *b, Rep *rep, int r, int node,
                                    int block, i64 cycle) {
    int ridx = OUTST(b, block, r, node);
    if (ridx < 0) {
        fail(b, 2, "data reply with no outstanding request");
        return;
    }
    OUTST(b, block, r, node) = -1;
    Req *req = &b->reqs[ridx];
    int state = req->is_write ? CS_MODIFIED : CS_SHARED;
    do_install(b, rep, r, node, block, state);
    if (rep->measuring) {
        rep->rcompleted++;
        rep->txn_lat += cycle - req->issued_at;
    }
    comp_push(rep, req->handle, cycle);
    int whead = req->whead;
    req->whead = -1;
    req->wtail = -1;
    do_release_waiters(b, rep, r, node, block, whead, state, cycle);
    req_del(b, ridx);
}

static void do_finish_local(Batch *b, Rep *rep, int r, int node, int block,
                            i64 cycle) {
    int ridx = OUTST(b, block, r, node);
    if (ridx < 0) {
        fail(b, 2, "local completion with no outstanding request");
        return;
    }
    OUTST(b, block, r, node) = -1;
    Req *req = &b->reqs[ridx];
    int state = req->is_write ? CS_MODIFIED : CS_SHARED;
    do_install(b, rep, r, node, block, state);
    Dir *d = dir_entry(b, r, block);
    d->busy = 0;
    int remote = req->messages > 0;
    if (rep->measuring) {
        if (remote) {
            rep->rcompleted++;
            rep->txn_lat += cycle - req->issued_at;
        } else {
            rep->lcompleted++;
        }
    }
    comp_push(rep, req->handle, cycle);
    int whead = req->whead;
    req->whead = -1;
    req->wtail = -1;
    do_run_deferred(b, rep, r, node, block);
    do_release_waiters(b, rep, r, node, block, whead, state, cycle);
    req_del(b, ridx);
}

static void do_release_waiters(Batch *b, Rep *rep, int r, int node,
                               int block, int whead, int state, i64 cycle) {
    int w = whead;
    while (w >= 0) {
        Waiter wt = b->waiters[w];
        if (wt.is_write && state != CS_MODIFIED)
            request_internal(b, rep, r, node, block, 1, cycle, wt.handle);
        else
            comp_push(rep, wt.handle, cycle);
        int nxt = wt.next;
        b->waiters[w].next = b->waiter_free;
        b->waiter_free = w;
        w = nxt;
    }
}

static void request_internal(Batch *b, Rep *rep, int r, int node, int block,
                             int is_write, i64 cycle, i64 handle) {
    int existing = OUTST(b, block, r, node);
    if (existing >= 0) {
        req_add_waiter(b, existing, is_write, handle);
        return;
    }
    Ctrl *c = &rep->ctrl[node];
    i64 uid = c->next_uid;
    c->next_uid = uid + UID_STRIDE;
    int ridx = req_new(b, block, is_write, cycle, uid, handle);
    OUTST(b, block, r, node) = ridx;
    if (rep->measuring) rep->started++;
    ctrl_schedule(rep, node, b->req_cost, OP_BEGIN, 0, ridx, 0, 0);
}

static void do_launch(Batch *b, Rep *rep, int r, int node, int midx,
                      i64 cycle) {
    Msg *m = &b->msgs[midx];
    int ridx = OUTST(b, m->block, r, node);
    if (ridx >= 0 && b->reqs[ridx].uid == m->txn) b->reqs[ridx].messages++;
    if (rep->measuring) {
        rep->sent++;
        rep->flits_sum += m->flits;
        rep->flits_sq += (i64)m->flits * m->flits;
        rep->per_node_sent[node]++;
    }
    if (m->dest == node) {
        fail(b, 1, "self-addressed message; local transactions must "
                   "complete without the network");
        return;
    }
    fab_inject(b, rep, midx, cycle);
}

static void do_handle(Batch *b, Rep *rep, int r, int node, int midx,
                      i64 cycle) {
    Msg *m = &b->msgs[midx];
    int kind = m->kind, block = m->block, source = m->source;
    i64 txn = m->txn;
    msg_del(b, midx);
    switch (kind) {
    case K_READ:
        do_home_handle_request(b, rep, r, node, block, source, 0, txn);
        break;
    case K_DATA:
        do_complete_remote_miss(b, rep, r, node, block, cycle);
        break;
    case K_WRITE:
        do_home_handle_request(b, rep, r, node, block, source, 1, txn);
        break;
    case K_INV:
        cache_pop(b, r, node, block);
        do_emit(b, rep, r, node, K_ACK, source, block, txn);
        break;
    case K_ACK:
        do_home_handle_ack(b, rep, r, node, block);
        break;
    case K_FETCH:
        do_handle_fetch(b, rep, r, node, block, source, txn, 0);
        break;
    case K_FETCHINV:
        do_handle_fetch(b, rep, r, node, block, source, txn, 1);
        break;
    case K_WB:
        do_absorb_writeback(b, rep, r, node, block, source, txn != -1);
        break;
    default:
        fail(b, 2, "unhandled message kind");
    }
}

static void ctrl_execute(Batch *b, Rep *rep, int r, int node, Ev *ev,
                         i64 done) {
    switch (ev->op) {
    case OP_HANDLE:
        do_handle(b, rep, r, node, ev->a0, done);
        break;
    case OP_LAUNCH:
        do_launch(b, rep, r, node, ev->a0, done);
        if (ev->a1 >= 0) {
            Dir *d = dir_entry(b, r, ev->a1);
            d->busy = 0;
            do_run_deferred(b, rep, r, node, ev->a1);
        }
        break;
    case OP_REPLY: {
        int midx = msg_new(b, K_DATA, node, ev->a0, ev->a1, ev->a2);
        ctrl_schedule(rep, node, b->send_cost, OP_LAUNCH, 0, midx, ev->a1,
                      0);
        break;
    }
    case OP_FINISH:
        do_finish_local(b, rep, r, node, ev->a1, done);
        break;
    case OP_BEGIN: {
        Req *req = &b->reqs[ev->a0];
        int block = req->block;
        int home = b->block_home[block];
        if (home == node) {
            do_home_handle_request(b, rep, r, node, block, node,
                                   req->is_write, req->uid);
        } else {
            do_emit(b, rep, r, node, req->is_write ? K_WRITE : K_READ, home,
                    block, req->uid);
        }
        break;
    }
    case OP_DEFER:
        do_home_handle_request(b, rep, r, node, ev->a1, ev->a0, ev->b0,
                               ev->a2);
        do_run_deferred(b, rep, r, node, ev->a1);
        break;
    case OP_NOP:
        break;
    }
}

/* ------------------------------------------------------------------ */
/* Fabric tick (port of BatchFabric.tick; telemetry-free path).        */
/* ------------------------------------------------------------------ */

static void fab_tick(Batch *b, Rep *rep, int r, i64 cycle) {
    Fab *f = &rep->fab;
    /* Deliveries first: heap keyed (cycle, seq) reproduces the serial
     * per-cycle insertion-order arrival lists. */
    while (f->dcount && (i64)(f->dheap[0].key >> 32) == cycle) {
        DHEnt e = dheap_pop(f);
        Transit *t = &b->transits[e.transit];
        Msg *m = &b->msgs[t->msg];
        i64 latency = cycle - m->injected_at;
        f->in_flight--;
        if (rep->measuring) {
            rep->delivered++;
            rep->lat_total += latency;
            int hops = t->route_len - 2;
            rep->hops_total += hops;
            if (hops > 0) {
                i64 head = latency - m->flits - t->wait;
                rep->hopl_total += (double)head / (double)hops;
                rep->hopl_count++;
            }
        }
        ctrl_schedule(rep, m->dest, b->recv_cost, OP_HANDLE, 0, t->msg, -1,
                      0);
        transit_del(b, e.transit);
    }
    if (!f->pcount) return;
    int *pending = f->pending;
    int n = f->pcount;
    int *newp = f->pend2;
    int nn = 0;
    for (int i = 0; i < n; i++) {
        int ch = pending[i];
        if (f->free_at[ch] > cycle || f->head_elig[ch] > cycle) {
            newp[nn++] = ch;
            continue;
        }
        Queue *q = &f->queues[ch];
        int tidx = qe_pop(q).transit;
        f->head_elig[ch] = q->count ? q->q[q->head].elig : NEVER;
        Transit *t = &b->transits[tidx];
        Msg *m = &b->msgs[t->msg];
        int flits = m->flits;
        i64 until = cycle + flits;
        f->free_at[ch] = until;
        int hop = t->hop;
        if (hop == 0) {
            t->wait = cycle - m->injected_at;
        } else {
            int link = ch - 2 * b->N;
            if (link >= 0) f->link_flits[link] += flits;
        }
        hop++;
        t->hop = hop;
        if (hop >= t->route_len) {
            dheap_push(f, ((u64)until << 32) | (f->dseq++ & 0xffffffffULL),
                       tidx);
        } else {
            int nxt = b->arena[t->route_off + hop];
            Queue *nq = &f->queues[nxt];
            if (!nq->count) {
                newp[nn++] = nxt;
                f->head_elig[nxt] = cycle + 1;
            }
            qe_push(nq, cycle + 1, tidx);
        }
        if (q->count) newp[nn++] = ch;
    }
    f->pending = newp;
    f->pend2 = pending;
    f->pcount = nn;
}

/* ------------------------------------------------------------------ */
/* Advance loop (ctrl phase + fabric phase + quiescence jump).         */
/* Processes cycles in [rep->cycle, stop); returns early with          */
/* cycle + 1 as soon as a cycle produced completions so Python can     */
/* run the callbacks and recompute the next processor boundary.        */
/* ------------------------------------------------------------------ */

i64 bc_advance(Batch *b, int r, i64 stop) {
    Rep *rep = &b->reps[r];
    i64 cycle = rep->cycle;
    while (cycle < stop) {
        /* ctrl phase: wake-heap dues + ready list, ascending node */
        int bn = 0;
        int *batch = rep->batch;
        while (rep->wcount && (i64)(rep->wake[0] >> 20) == cycle)
            batch[bn++] = (int)(wheap_pop(rep) & 0xFFFFF);
        if (rep->ready_count) {
            memcpy(batch + bn, rep->ready,
                   (size_t)rep->ready_count * sizeof(int));
            bn += rep->ready_count;
            rep->ready_count = 0;
        }
        if (bn) {
            if (bn > 1) {
                for (int i = 1; i < bn; i++) {  /* insertion sort */
                    int v = batch[i], j = i - 1;
                    while (j >= 0 && batch[j] > v) {
                        batch[j + 1] = batch[j];
                        j--;
                    }
                    batch[j + 1] = v;
                }
            }
            for (int i = 0; i < bn; i++) {
                int node = batch[i];
                Ctrl *c = &rep->ctrl[node];
                c->notified = 0;
                ctrl_tick(b, rep, r, node, cycle);
                if (b->errcode) return -1;
                if (c->has_cur)
                    wheap_push(rep, ((u64)c->done_at << 20) | (u64)node);
            }
        }
        fab_tick(b, rep, r, cycle);
        if (b->errcode) return -1;
        if (rep->comp_count) {
            rep->cycle = cycle + 1;
            return cycle + 1;
        }
        i64 nxt = cycle + 1;
        if (!rep->ready_count) {
            i64 horizon = fab_next(b, rep, nxt);
            if (horizon < 0 || horizon > nxt) {
                i64 target = stop;
                if (rep->wcount) {
                    i64 wt = (i64)(rep->wake[0] >> 20);
                    if (wt < target) target = wt;
                }
                if (horizon >= 0 && horizon < target) target = horizon;
                if (target > nxt) nxt = target;
            }
        }
        cycle = nxt;
    }
    rep->cycle = stop;
    return stop;
}

/* ------------------------------------------------------------------ */
/* Public API.                                                         */
/* ------------------------------------------------------------------ */

Batch *bc_create(int R, int N, int dims, int radix, int capacity,
                 int req_cost, int recv_cost, int send_cost, int mem_cost) {
    if (N >= (1 << 20) || dims > 8 || dims * radix > 62) return NULL;
    Batch *b = (Batch *)calloc(1, sizeof(Batch));
    b->R = R;
    b->N = N;
    b->dims = dims;
    b->radix = radix;
    b->capacity = capacity;
    b->req_cost = req_cost;
    b->recv_cost = recv_cost;
    b->send_cost = send_cost;
    b->mem_cost = mem_cost;
    b->RN = (i64)R * N;
    b->channels = 2 * N + 2 * N * dims;
    b->links = 2 * N * dims;
    b->msg_free = -1;
    b->transit_free = -1;
    b->req_free = -1;
    b->waiter_free = -1;
    b->route_rows = (int **)calloc((size_t)N, sizeof(int *));
    b->pow_radix = (int *)malloc((size_t)dims * sizeof(int));
    int p = 1;
    for (int d = 0; d < dims; d++) { b->pow_radix[d] = p; p *= radix; }
    b->clog = (CacheLog *)calloc((size_t)R * N, sizeof(CacheLog));
    b->reps = (Rep *)calloc((size_t)R, sizeof(Rep));
    for (int r = 0; r < R; r++) {
        Rep *rep = &b->reps[r];
        rep->ctrl = (Ctrl *)calloc((size_t)N, sizeof(Ctrl));
        for (int i = 0; i < N; i++) rep->ctrl[i].next_uid = i;
        rep->ready = (int *)malloc((size_t)N * sizeof(int));
        rep->batch = (int *)malloc((size_t)2 * N * sizeof(int));
        rep->per_node_sent = (i64 *)calloc((size_t)N, sizeof(i64));
        Fab *f = &rep->fab;
        f->free_at = (i64 *)calloc((size_t)b->channels, sizeof(i64));
        f->head_elig = (i64 *)malloc((size_t)b->channels * sizeof(i64));
        for (int c = 0; c < b->channels; c++) f->head_elig[c] = NEVER;
        f->queues = (Queue *)calloc((size_t)b->channels, sizeof(Queue));
        f->pending = (int *)malloc((size_t)b->channels * sizeof(int));
        f->pend2 = (int *)malloc((size_t)b->channels * sizeof(int));
        f->link_flits = (i64 *)calloc((size_t)b->links, sizeof(i64));
    }
    return b;
}

void bc_destroy(Batch *b) {
    if (b == NULL) return;
    for (int r = 0; r < b->R; r++) {
        Rep *rep = &b->reps[r];
        for (int i = 0; i < b->N; i++) free(rep->ctrl[i].q);
        free(rep->ctrl);
        free(rep->ready);
        free(rep->batch);
        free(rep->per_node_sent);
        free(rep->wake);
        free(rep->comp);
        Fab *f = &rep->fab;
        for (int c = 0; c < b->channels; c++) free(f->queues[c].q);
        free(f->queues);
        free(f->free_at);
        free(f->head_elig);
        free(f->pending);
        free(f->pend2);
        free(f->link_flits);
        free(f->dheap);
    }
    free(b->reps);
    for (int i = 0; i < b->nblocks * b->R; i++) {
        if (b->dir[i].init) {
            set_free(&b->dir[i].sharers);
            free(b->dir[i].ditems);
        }
    }
    free(b->dir);
    for (int i = 0; i < b->R * b->N; i++) free(b->clog[i].items);
    free(b->clog);
    for (int i = 0; i < b->N; i++) free(b->route_rows[i]);
    free(b->route_rows);
    free(b->arena);
    free(b->pow_radix);
    free(b->block_home);
    free(b->cache_state);
    free(b->cache_seq);
    free(b->outstanding);
    free(b->msgs);
    free(b->transits);
    free(b->reqs);
    free(b->waiters);
    free(b);
}

int bc_add_block(Batch *b, int home) {
    if (b->nblocks >= b->blocks_cap) {
        int old = b->blocks_cap;
        b->blocks_cap = old ? old * 2 : 64;
        b->block_home = (int *)realloc(
            b->block_home, (size_t)b->blocks_cap * sizeof(int));
        b->cache_state = (int8_t *)realloc(
            b->cache_state, (size_t)b->blocks_cap * b->RN);
        b->cache_seq = (int *)realloc(
            b->cache_seq, (size_t)b->blocks_cap * b->RN * sizeof(int));
        b->outstanding = (int *)realloc(
            b->outstanding, (size_t)b->blocks_cap * b->RN * sizeof(int));
        b->dir = (Dir *)realloc(
            b->dir, (size_t)b->blocks_cap * b->R * sizeof(Dir));
    }
    int blk = b->nblocks++;
    b->block_home[blk] = home;
    memset(b->cache_state + (size_t)blk * b->RN, 0, (size_t)b->RN);
    memset(b->cache_seq + (size_t)blk * b->RN, 0,
           (size_t)b->RN * sizeof(int));
    for (i64 i = 0; i < b->RN; i++)
        b->outstanding[(size_t)blk * b->RN + i] = -1;
    memset(b->dir + (size_t)blk * b->R, 0, (size_t)b->R * sizeof(Dir));
    return blk;
}

void bc_request(Batch *b, int r, int node, int block, int is_write,
                i64 cycle, i64 handle) {
    request_internal(b, &b->reps[r], r, node, block, is_write, cycle,
                     handle);
}

i64 bc_cycle(Batch *b, int r) { return b->reps[r].cycle; }

int bc_comp_count(Batch *b, int r) { return b->reps[r].comp_count; }
i64 *bc_comp_ptr(Batch *b, int r) { return b->reps[r].comp; }
void bc_comp_clear(Batch *b, int r) { b->reps[r].comp_count = 0; }

void bc_start_measuring(Batch *b, int r) {
    Rep *rep = &b->reps[r];
    rep->measuring = 1;
    rep->sent = rep->flits_sum = rep->flits_sq = 0;
    rep->delivered = rep->lat_total = rep->hops_total = 0;
    rep->hopl_count = rep->started = 0;
    rep->rcompleted = rep->lcompleted = rep->txn_lat = rep->evictions = 0;
    rep->hopl_total = 0.0;
    memset(rep->per_node_sent, 0, (size_t)b->N * sizeof(i64));
}

void bc_get_counters(Batch *b, int r, i64 *out_i, double *out_d) {
    Rep *rep = &b->reps[r];
    out_i[0] = rep->sent;
    out_i[1] = rep->flits_sum;
    out_i[2] = rep->flits_sq;
    out_i[3] = rep->delivered;
    out_i[4] = rep->lat_total;
    out_i[5] = rep->hops_total;
    out_i[6] = rep->hopl_count;
    out_i[7] = rep->started;
    out_i[8] = rep->rcompleted;
    out_i[9] = rep->lcompleted;
    out_i[10] = rep->txn_lat;
    out_i[11] = rep->evictions;
    out_d[0] = rep->hopl_total;
}

void bc_get_link_flits(Batch *b, int r, i64 *out) {
    memcpy(out, b->reps[r].fab.link_flits,
           (size_t)b->links * sizeof(i64));
}

void bc_get_per_node_sent(Batch *b, int r, i64 *out) {
    memcpy(out, b->reps[r].per_node_sent, (size_t)b->N * sizeof(i64));
}

i64 bc_in_flight(Batch *b, int r) { return b->reps[r].fab.in_flight; }

int bc_errcode(Batch *b) { return b->errcode; }
const char *bc_errmsg(Batch *b) { return b->errmsg; }

"""Simulator configuration.

One :class:`SimulationConfig` describes a complete machine + application
setup: the torus shape, the clock ratio, the processor's multithreading
parameters, the coherence controller's timing, and the measurement
windows.  Defaults reconstruct the Alewife-like machine of Section 3.1:
a radix-8 two-dimensional torus whose switches run twice as fast as the
processors, four-context-capable processors with an 11-cycle context
switch, and a full-map invalidate directory protocol.

Time-base convention: fields ending in ``_cycles`` are **processor**
cycles (they describe processor/controller work); fields ending in
``_network_cycles`` are network cycles.  The simulator itself advances in
network cycles and converts at the boundary, exactly as the analytical
model does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Machine, protocol, and measurement parameters for one simulation."""

    # --- machine shape -------------------------------------------------
    radix: int = 8
    dimensions: int = 2
    #: Network clock frequency over processor clock frequency.  The
    #: simulator requires a positive integer (processors tick every
    #: ``network_speedup`` network cycles).
    network_speedup: int = 2
    #: Switch architecture: "cut_through" models the moderately buffered
    #: Alewife switches (default, used for the validation experiments);
    #: "wormhole" is the pure single-flit-buffer rigid-worm fabric.
    switching: str = "cut_through"

    # --- processor -----------------------------------------------------
    contexts: int = 1
    #: Cache capacity in lines; 0 means unbounded (the validation
    #: workload touches only ~5 lines per thread, so the paper's 64 KB
    #: cache never evicts — finite values enable temporal-locality
    #: experiments via LRU capacity misses).
    cache_lines: int = 0
    #: Sparcle's context-switch time, processor cycles.
    switch_cycles: int = 11
    #: Mean compute run between memory accesses, processor cycles.
    compute_cycles: int = 8
    #: Half-width of the uniform jitter applied to each compute run, as a
    #: fraction of ``compute_cycles`` (0 disables jitter).  Jitter breaks
    #: the lock-step artifacts a fully deterministic workload produces.
    compute_jitter: float = 0.5

    # --- coherence controller timing (processor cycles) ----------------
    # Defaults model a pipelined hardware controller (Alewife's CMMU);
    # raising them shifts the bottleneck from network to controller.
    #: Handling a request from the local processor (miss detection,
    #: transaction setup).
    request_cycles: int = 1
    #: Receiving and decoding one network message (includes directory
    #: lookup at the home node).
    receive_cycles: int = 2
    #: Composing and launching one network message.
    send_cycles: int = 1
    #: DRAM access for a data reply or writeback merge.
    memory_cycles: int = 4
    #: Completing a cache hit (no transaction).
    hit_cycles: int = 1

    # --- measurement ---------------------------------------------------
    #: Network cycles to run before statistics start accumulating.
    warmup_network_cycles: int = 4000
    #: Network cycles of measured execution after warmup.
    measure_network_cycles: int = 20000
    seed: int = 1992

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ParameterError(f"radix must be >= 2, got {self.radix!r}")
        if self.dimensions < 1:
            raise ParameterError(
                f"dimensions must be >= 1, got {self.dimensions!r}"
            )
        if self.network_speedup < 1:
            raise ParameterError(
                f"network_speedup must be a positive integer, "
                f"got {self.network_speedup!r}"
            )
        if self.switching not in ("cut_through", "wormhole"):
            raise ParameterError(
                f"switching must be 'cut_through' or 'wormhole', "
                f"got {self.switching!r}"
            )
        if self.contexts < 1:
            raise ParameterError(f"contexts must be >= 1, got {self.contexts!r}")
        if self.cache_lines < 0:
            raise ParameterError(
                f"cache_lines must be >= 0, got {self.cache_lines!r}"
            )
        if self.switch_cycles < 0:
            raise ParameterError(
                f"switch_cycles must be >= 0, got {self.switch_cycles!r}"
            )
        if self.compute_cycles < 1:
            raise ParameterError(
                f"compute_cycles must be >= 1, got {self.compute_cycles!r}"
            )
        if not 0.0 <= self.compute_jitter < 1.0:
            raise ParameterError(
                f"compute_jitter must be in [0, 1), got {self.compute_jitter!r}"
            )
        for name in (
            "request_cycles",
            "receive_cycles",
            "send_cycles",
            "memory_cycles",
            "hit_cycles",
        ):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be >= 0")
        if self.warmup_network_cycles < 0:
            raise ParameterError("warmup_network_cycles must be >= 0")
        if self.measure_network_cycles <= 0:
            raise ParameterError("measure_network_cycles must be positive")

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Machine size ``N = k**n``."""
        return self.radix**self.dimensions

    @property
    def total_network_cycles(self) -> int:
        """Warmup plus measurement window."""
        return self.warmup_network_cycles + self.measure_network_cycles

    def to_network(self, processor_cycles: int) -> int:
        """Convert a processor-cycle count to network cycles."""
        return processor_cycles * self.network_speedup

    # ------------------------------------------------------------------
    # Variants.
    # ------------------------------------------------------------------

    def with_contexts(self, contexts: int) -> "SimulationConfig":
        """Same machine with a different degree of multithreading."""
        return replace(self, contexts=contexts)

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Same configuration with a different random seed."""
        return replace(self, seed=seed)

    def scaled_for_testing(self) -> "SimulationConfig":
        """A short-window variant for unit tests."""
        return replace(
            self, warmup_network_cycles=500, measure_network_cycles=2500
        )

"""Clock-domain bookkeeping between processors and network switches.

The paper's architecture (MIT Alewife, Section 3.1) clocks network switches
twice as fast as processors, and Section 4.2 / Table 1 study what happens as
that ratio changes.  Mixing the two time bases is the single easiest way to
get the model wrong, so this module makes the conversion explicit.

Conventions used throughout :mod:`repro`:

* Quantities that originate at the *processor* — computation grain ``T_r``,
  fixed transaction overhead ``T_f``, context-switch time ``T_s`` — are
  naturally measured in **processor cycles**.
* Quantities that originate in the *network* — per-hop latency ``T_h``,
  message latency ``T_m``, message size ``B`` (one flit crosses a channel
  per network cycle) — are naturally measured in **network cycles**.
* The analytical models in :mod:`repro.core` do all arithmetic in **network
  cycles**; a :class:`ClockDomain` converts processor-side inputs on the way
  in and converts results back on the way out.

A :class:`ClockDomain` is described by ``network_speedup``: the frequency of
the network clock divided by the frequency of the processor clock.  The
Alewife baseline has ``network_speedup = 2.0`` ("network clocked twice as
fast as processors"); Table 1's "4x slower" row has
``network_speedup = 0.25``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["ClockDomain", "ALEWIFE_CLOCKS", "EQUAL_CLOCKS"]


@dataclass(frozen=True)
class ClockDomain:
    """Conversion between processor-cycle and network-cycle time bases.

    Parameters
    ----------
    network_speedup:
        Network clock frequency divided by processor clock frequency.
        Must be positive.  A value of ``2.0`` means one processor cycle
        lasts two network cycles.
    """

    network_speedup: float = 2.0

    def __post_init__(self) -> None:
        if not self.network_speedup > 0:
            raise ParameterError(
                f"network_speedup must be positive, got {self.network_speedup!r}"
            )

    @property
    def processor_cycle_in_network_cycles(self) -> float:
        """Duration of one processor cycle, expressed in network cycles."""
        return self.network_speedup

    @property
    def network_cycle_in_processor_cycles(self) -> float:
        """Duration of one network cycle, expressed in processor cycles."""
        return 1.0 / self.network_speedup

    def to_network(self, processor_cycles: float) -> float:
        """Convert a duration from processor cycles to network cycles."""
        return processor_cycles * self.network_speedup

    def to_processor(self, network_cycles: float) -> float:
        """Convert a duration from network cycles to processor cycles."""
        return network_cycles / self.network_speedup

    def rate_to_network(self, per_processor_cycle: float) -> float:
        """Convert a rate from events/processor-cycle to events/network-cycle."""
        return per_processor_cycle / self.network_speedup

    def rate_to_processor(self, per_network_cycle: float) -> float:
        """Convert a rate from events/network-cycle to events/processor-cycle."""
        return per_network_cycle * self.network_speedup

    def slowed(self, factor: float) -> "ClockDomain":
        """Return a domain whose network is ``factor``x slower than this one.

        ``factor`` must be positive; ``factor > 1`` slows the network (as in
        Table 1's sweep), ``factor < 1`` speeds it up.
        """
        if not factor > 0:
            raise ParameterError(f"slowdown factor must be positive, got {factor!r}")
        return ClockDomain(network_speedup=self.network_speedup / factor)


#: The Alewife baseline: network switches clocked 2x the processors.
ALEWIFE_CLOCKS = ClockDomain(network_speedup=2.0)

#: Network and processor share a clock (Table 1's "same" row).
EQUAL_CLOCKS = ClockDomain(network_speedup=1.0)

"""The transaction model (Section 2.2 of the paper).

A *communication transaction* is the unit of inter-processor communication
as seen by the application — in the validated architecture, a cache
coherence transaction, but the framework is agnostic to the mechanism.
The transaction model captures the network resources each transaction
consumes with three constants:

``c``
    number of messages on the transaction's *critical path* — the extent
    to which transaction latency depends on message latency.  A simple
    request/reply exchange has ``c = 2``.
``g``
    average number of messages sent per transaction (a coherence
    transaction may also fan out invalidations and acks off the critical
    path, so ``g >= c`` is typical — the paper's application measures
    ``g = 3.2``).
``fixed_overhead``
    ``T_f``: latency (processor cycles) inherent in the mechanism and
    independent of message latency — send/receive occupancy, memory
    access, directory processing.

The two defining relations are

    ``T_t = c * T_m + T_f``        (Eq 7)
    ``t_t = g * t_m``              (Eq 8)

``T_f`` is stored in processor cycles (it is processor/controller work);
:meth:`fixed_overhead_network` converts it for composition with the
network model, which works in network cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError
from repro.units import ClockDomain

__all__ = ["TransactionModel"]


@dataclass(frozen=True)
class TransactionModel:
    """Resource requirements of one communication transaction (Section 2.2).

    Parameters
    ----------
    critical_messages:
        ``c``, the number of messages on the critical path; must be > 0.
    messages_per_transaction:
        ``g``, the average number of messages injected per transaction;
        must be >= ``critical_messages`` is *not* required (some protocols
        piggyback), but it must be positive.
    fixed_overhead:
        ``T_f`` in processor cycles; must be >= 0.
    """

    critical_messages: float = 2.0
    messages_per_transaction: float = 2.0
    fixed_overhead: float = 0.0

    def __post_init__(self) -> None:
        if not self.critical_messages > 0:
            raise ParameterError(
                f"critical_messages c must be positive, got {self.critical_messages!r}"
            )
        if not self.messages_per_transaction > 0:
            raise ParameterError(
                "messages_per_transaction g must be positive, "
                f"got {self.messages_per_transaction!r}"
            )
        if self.fixed_overhead < 0:
            raise ParameterError(
                f"fixed_overhead T_f must be >= 0, got {self.fixed_overhead!r}"
            )

    # ------------------------------------------------------------------
    # Eq 7: transaction latency from message latency.
    # ------------------------------------------------------------------

    def transaction_latency_network(self, message_latency: float) -> float:
        """``T_t`` in network cycles, given ``T_m`` in network cycles.

        This variant keeps everything in the network time base and
        therefore needs ``T_f`` converted by the caller; prefer
        :meth:`transaction_latency` unless composing models manually.
        """
        return self.critical_messages * message_latency + 0.0

    def transaction_latency(
        self, message_latency: float, clocks: ClockDomain
    ) -> float:
        """``T_t`` in *processor* cycles, given ``T_m`` in network cycles.

        Implements Eq 7 with the clock-domain conversion made explicit:
        the ``c * T_m`` term is network time, ``T_f`` is processor time.
        """
        return (
            clocks.to_processor(self.critical_messages * message_latency)
            + self.fixed_overhead
        )

    def fixed_overhead_network(self, clocks: ClockDomain) -> float:
        """``T_f`` expressed in network cycles."""
        return clocks.to_network(self.fixed_overhead)

    # ------------------------------------------------------------------
    # Eq 8: messages-per-transaction bookkeeping.
    # ------------------------------------------------------------------

    def issue_time_from_message_time(self, message_time: float) -> float:
        """``t_t = g * t_m`` (Eq 8); any consistent time base."""
        return self.messages_per_transaction * message_time

    def message_time_from_issue_time(self, issue_time: float) -> float:
        """``t_m = t_t / g`` (Eq 8 inverted); any consistent time base."""
        return issue_time / self.messages_per_transaction

    def message_rate_from_transaction_rate(self, transaction_rate: float) -> float:
        """``r_m = g * r_t``; any consistent time base."""
        return self.messages_per_transaction * transaction_rate

    def transaction_rate_from_message_rate(self, message_rate: float) -> float:
        """``r_t = r_m / g``; any consistent time base."""
        return message_rate / self.messages_per_transaction

    # ------------------------------------------------------------------
    # Variants.
    # ------------------------------------------------------------------

    def with_critical_messages(self, critical_messages: float) -> "TransactionModel":
        """Same mechanism with a different critical-path length.

        Section 3.3 measures ``c`` growing ~15 % from one to four contexts
        because of an interaction between the asynchronous benchmark and
        the coherence protocol; experiments use this to apply the
        correction.
        """
        return replace(self, critical_messages=critical_messages)

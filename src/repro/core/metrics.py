"""Performance metrics and locality-gain comparisons (Section 2.6).

The paper's metric of per-processor performance is the average transaction
issue rate ``r_t = 1 / t_t``: with the computation grain ``T_r`` held
constant, useful work is done at rate ``T_r / t_t``, which is proportional
to ``r_t``.  Aggregate performance of an ``N``-processor machine is
``N * r_t``, and two configurations are compared by the ratio of their
aggregate performance.

The headline comparison (Section 4.2) is the **expected gain from
exploiting physical locality**: the ratio of the transaction rate under an
*ideal* mapping (every communication one hop) to that under a *random*
mapping (uniform traffic at the Eq 17 distance) for the same application
and machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.combined import (
    OperatingPoint,
    solve_batch,
    solve_cached,
)
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError
from repro.topology.distance import (
    random_traffic_distance,
    random_traffic_distance_for_size,
)

__all__ = [
    "useful_work_rate",
    "aggregate_performance",
    "performance_ratio",
    "GainResult",
    "expected_gain",
    "expected_gain_batch",
    "expected_gain_for_radix",
]


def useful_work_rate(point: OperatingPoint, grain_network: float) -> float:
    """Fraction of time spent on useful work, ``T_r / t_t``.

    ``grain_network`` is the computation grain expressed in network cycles
    (the time base of ``point``).  Dimensionless, in (0, 1].
    """
    if not grain_network > 0:
        raise ParameterError(
            f"grain must be positive, got {grain_network!r}"
        )
    return grain_network / point.issue_time


def aggregate_performance(point: OperatingPoint, processors: float) -> float:
    """``N * r_t`` in transactions per network cycle (Section 2.6)."""
    if not processors > 0:
        raise ParameterError(f"processors N must be positive, got {processors!r}")
    return processors * point.transaction_rate


def performance_ratio(numerator: OperatingPoint, denominator: OperatingPoint) -> float:
    """Ratio of transaction rates — the paper's configuration comparator.

    Machine size cancels when both points describe the same machine, so
    the per-processor rate ratio equals the aggregate ratio.
    """
    return numerator.transaction_rate / denominator.transaction_rate


@dataclass(frozen=True)
class GainResult:
    """Expected gain from exploiting physical locality at one machine size."""

    processors: float
    ideal_distance: float
    random_distance: float
    ideal: OperatingPoint
    random: OperatingPoint

    @property
    def gain(self) -> float:
        """Transaction-rate ratio, ideal over random mapping."""
        return performance_ratio(self.ideal, self.random)

    @property
    def distance_ratio(self) -> float:
        """How much the ideal mapping shortens communication."""
        return self.random_distance / self.ideal_distance


def expected_gain(
    node: NodeModel,
    network: TorusNetworkModel,
    processors: float,
    ideal_distance: float = 1.0,
) -> GainResult:
    """Expected gain for a machine of ``processors`` nodes (Figure 7).

    The random-mapping distance comes from Eq 17 with the continuous
    radix ``N**(1/n)``; the ideal mapping communicates over
    ``ideal_distance`` hops (1 for the paper's torus-neighbor
    application).
    """
    if not ideal_distance > 0:
        raise ParameterError(
            f"ideal_distance must be positive, got {ideal_distance!r}"
        )
    random_distance = random_traffic_distance_for_size(
        processors, network.dimensions
    )
    return GainResult(
        processors=processors,
        ideal_distance=ideal_distance,
        random_distance=random_distance,
        ideal=solve_cached(node, network, ideal_distance),
        random=solve_cached(node, network, random_distance),
    )


def expected_gain_batch(
    node: NodeModel,
    network: TorusNetworkModel,
    sizes: Sequence[float],
    ideal_distance: float = 1.0,
) -> List[GainResult]:
    """Expected gain at many machine sizes in one batched solve.

    Semantically identical to calling :func:`expected_gain` per size,
    but all random-mapping operating points are found by one
    :func:`~repro.core.combined.solve_batch` call, and the
    ideal-mapping point — shared by every size — is solved exactly once.
    """
    if not ideal_distance > 0:
        raise ParameterError(
            f"ideal_distance must be positive, got {ideal_distance!r}"
        )
    sizes = [float(n) for n in np.asarray(sizes, dtype=float).ravel()]
    random_distances = np.array(
        [
            random_traffic_distance_for_size(n, network.dimensions)
            for n in sizes
        ]
    )
    if not random_distances.size:
        return []
    randoms = solve_batch(node, network, random_distances)
    ideal = solve_cached(node, network, ideal_distance)
    return [
        GainResult(
            processors=processors,
            ideal_distance=ideal_distance,
            random_distance=float(random_distances[i]),
            ideal=ideal,
            random=randoms.point(i),
        )
        for i, processors in enumerate(sizes)
    ]


def expected_gain_for_radix(
    node: NodeModel,
    network: TorusNetworkModel,
    radix: float,
    ideal_distance: float = 1.0,
) -> GainResult:
    """Expected gain with the machine specified by its radix instead of N."""
    random_distance = random_traffic_distance(radix, network.dimensions)
    processors = float(radix) ** network.dimensions
    return GainResult(
        processors=processors,
        ideal_distance=ideal_distance,
        random_distance=random_distance,
        ideal=solve_cached(node, network, ideal_distance),
        random=solve_cached(node, network, random_distance),
    )

"""The node model (Section 2.3 of the paper).

The node model is the composition of the application model (Section 2.1)
and the transaction model (Section 2.2): it describes a whole
processor/memory node *as the interconnection network sees it*, i.e. how
fast the node injects messages as a function of the average message
latency it observes.  Substituting Eqs 7 and 8 into Eq 6 gives the
*application message curve* (Eq 9):

    ``T_m = (p * g / c) * t_m - (T_r + T_f) / c``

— again a line.  Its slope is the **latency sensitivity**

    ``s = p * g / c``

(the paper's central application parameter: ``s`` is proportional to the
number of outstanding transactions ``p``), and its intercept is set by the
computation grain and the fixed transaction overhead.

Everything in this module is expressed in **network cycles** — the node
model exists to be intersected with the network model, which lives in
network time.  :meth:`NodeModel.from_components` performs the
processor-to-network conversion of ``T_r`` and ``T_f`` exactly once, at
composition time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.application import ApplicationModel
from repro.core.transaction import TransactionModel
from repro.errors import ParameterError
from repro.units import ClockDomain

__all__ = ["NodeModel"]


@dataclass(frozen=True)
class NodeModel:
    """Application message curve ``T_m = s * t_m - intercept`` (Eq 9).

    Parameters
    ----------
    sensitivity:
        Latency sensitivity ``s = p * g / c``; must be positive.  Larger
        values mean the node's injection rate reacts *less* to latency.
    intercept:
        ``(T_r + T_f) / c`` in network cycles; must be >= 0.
    messages_per_transaction:
        ``g``, kept so transaction-level quantities (``t_t``, ``r_t``)
        can be recovered from message-level ones.
    """

    sensitivity: float
    intercept: float
    messages_per_transaction: float = 1.0

    def __post_init__(self) -> None:
        if not self.sensitivity > 0:
            raise ParameterError(
                f"latency sensitivity s must be positive, got {self.sensitivity!r}"
            )
        if self.intercept < 0:
            raise ParameterError(
                f"message-curve intercept must be >= 0, got {self.intercept!r}"
            )
        if not self.messages_per_transaction > 0:
            raise ParameterError(
                "messages_per_transaction g must be positive, "
                f"got {self.messages_per_transaction!r}"
            )

    # ------------------------------------------------------------------
    # Construction from the component models.
    # ------------------------------------------------------------------

    @classmethod
    def from_components(
        cls,
        application: ApplicationModel,
        transaction: TransactionModel,
        clocks: ClockDomain,
    ) -> "NodeModel":
        """Compose application and transaction models into a node model.

        ``T_r`` and ``T_f`` arrive in processor cycles and are converted
        to network cycles here, so the resulting curve can be intersected
        directly with the network model.
        """
        sensitivity = (
            application.contexts
            * transaction.messages_per_transaction
            / transaction.critical_messages
        )
        fixed_network = clocks.to_network(
            application.grain + transaction.fixed_overhead
        )
        intercept = fixed_network / transaction.critical_messages
        return cls(
            sensitivity=sensitivity,
            intercept=intercept,
            messages_per_transaction=transaction.messages_per_transaction,
        )

    # ------------------------------------------------------------------
    # The application message curve (Eq 9) in both directions.
    # ------------------------------------------------------------------

    def message_latency(self, message_time: float) -> float:
        """``T_m`` the node can absorb at inter-message time ``t_m`` (Eq 9)."""
        return self.sensitivity * message_time - self.intercept

    def message_latency_at_rate(self, message_rate: float) -> float:
        """``T_m`` as a function of injection rate ``r_m = 1 / t_m``."""
        if not message_rate > 0:
            raise ParameterError(
                f"message rate r_m must be positive, got {message_rate!r}"
            )
        return self.sensitivity / message_rate - self.intercept

    def message_time(self, message_latency: float) -> float:
        """Invert Eq 9: ``t_m = (T_m + intercept) / s``."""
        return (message_latency + self.intercept) / self.sensitivity

    def message_rate(self, message_latency: float) -> float:
        """Injection rate ``r_m`` the node sustains at latency ``T_m``."""
        return 1.0 / self.message_time(message_latency)

    # ------------------------------------------------------------------
    # Recovering transaction-level quantities.
    # ------------------------------------------------------------------

    def issue_time(self, message_time: float) -> float:
        """``t_t = g * t_m`` in network cycles."""
        return self.messages_per_transaction * message_time

    def transaction_rate(self, message_rate: float) -> float:
        """``r_t = r_m / g`` in transactions per network cycle."""
        return message_rate / self.messages_per_transaction

    @property
    def zero_latency_message_time(self) -> float:
        """``t_m`` at ``T_m = 0``: the node's compute-bound message period."""
        return self.intercept / self.sensitivity

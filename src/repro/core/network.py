"""The network model (Section 2.4 of the paper).

This is Agarwal's closed-form model of packet-switched, wormhole-routed
k-ary n-dimensional **torus** networks with separate unidirectional
channels in both directions of each dimension and e-cube (dimension-order)
routing.  Given a per-node message injection rate ``r_m`` (messages per
network cycle), an average message size ``B`` (flits), and an average
communication distance ``d`` (hops), the model gives:

    ``k_d = d / n``                                            (Eq 13)
    ``rho = r_m * B * k_d / 2``                                (Eq 10)
    ``T_h = 1 + rho*B/(1-rho) * (k_d-1)/k_d**2 * (n+1)/n``     (Eq 14)
    ``T_m = n * k_d * T_h + B``                                (Eq 11)

All times are **network cycles**; one flit crosses one channel per network
cycle, so ``B`` doubles as the channel service time of a message.

The paper extends the base model in two ways, both implemented here:

1. **Local-traffic clamp** — Eq 14 is only valid for ``k_d >= 1``.  Highly
   local mappings (``d < n``) see essentially no network contention, so
   ``T_h = 1`` is used when ``k_d < 1``.
2. **Node-channel contention** — the pair of channels connecting a node to
   its switch is a queueing point ignored by Eq 14; at 64 nodes it adds
   two to five network cycles of latency.  We model each of the two
   channels (injection and ejection) as an M/D/1 queue with service time
   ``B`` and arrival rate ``r_m`` (in steady state a node receives as many
   messages as it sends), adding the classic Pollaczek-Khinchine waiting
   time ``rho_c * B / (2 * (1 - rho_c))`` with ``rho_c = r_m * B`` per
   channel.  The paper defers the algebra to Johnson's technical report
   [7]; this reconstruction reproduces the reported 2-5 cycle magnitude
   (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ParameterError, SaturationError

__all__ = ["TorusNetworkModel"]


@dataclass(frozen=True)
class TorusNetworkModel:
    """Agarwal's torus model (Eqs 10-14) with the paper's extensions.

    Parameters
    ----------
    dimensions:
        ``n``, the number of mesh dimensions; must be >= 1.
    message_size:
        ``B``, the average message size in flits; must be positive.
    clamp_local:
        Apply the paper's ``T_h = 1`` clamp for ``k_d < 1``.  Disabled
        only by the ablation experiments.
    node_channel_contention:
        Include Pollaczek-Khinchine waiting at the node's injection and
        ejection channels.  Disabled only by the ablation experiments.
    message_size_second_moment:
        ``E[S^2]`` of the message-size distribution, for the node-channel
        queueing term.  ``None`` (default) assumes deterministic sizes
        (``E[S^2] = B^2``, the M/D/1 case); protocols with bimodal
        control/data messages (like the validated coherence protocol: 8-
        and 24-flit messages) queue measurably more, and passing the true
        second moment captures that.  Must be >= ``B^2`` when given.
    """

    dimensions: int = 2
    message_size: float = 12.0
    clamp_local: bool = True
    node_channel_contention: bool = True
    message_size_second_moment: Optional[float] = None

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ParameterError(
                f"dimensions n must be >= 1, got {self.dimensions!r}"
            )
        if not self.message_size > 0:
            raise ParameterError(
                f"message_size B must be positive, got {self.message_size!r}"
            )
        if self.message_size_second_moment is not None:
            minimum = self.message_size**2
            if self.message_size_second_moment < minimum * (1.0 - 1e-9):
                raise ParameterError(
                    "message_size_second_moment E[S^2] cannot be below "
                    f"B^2 = {minimum:.4g}, got "
                    f"{self.message_size_second_moment!r}"
                )

    # ------------------------------------------------------------------
    # Basic per-dimension geometry (Eq 13).
    # ------------------------------------------------------------------

    def per_dimension_distance(self, distance: float) -> float:
        """``k_d = d / n`` (Eq 13)."""
        if not distance > 0:
            raise ParameterError(f"distance d must be positive, got {distance!r}")
        return distance / self.dimensions

    # ------------------------------------------------------------------
    # Channel utilization (Eq 10) and saturation.
    # ------------------------------------------------------------------

    def channel_utilization(self, message_rate: float, distance: float) -> float:
        """``rho = r_m * B * k_d / 2`` (Eq 10)."""
        if message_rate < 0:
            raise ParameterError(
                f"message rate r_m must be >= 0, got {message_rate!r}"
            )
        return message_rate * self.message_size * self.per_dimension_distance(distance) / 2.0

    def saturation_rate(self, distance: float) -> float:
        """Injection rate at which ``rho`` reaches 1 (network capacity)."""
        return 2.0 / (self.message_size * self.per_dimension_distance(distance))

    def node_channel_saturation_rate(self) -> float:
        """Injection rate at which the node's own channel saturates."""
        return 1.0 / self.message_size

    def max_rate(self, distance: float) -> float:
        """Smallest of the saturation rates that bound feasible operation.

        The clamp disables the Eq 14 contention term for ``k_d < 1`` but
        the channel-capacity constraint ``rho < 1`` still binds; when node
        channels are modeled, their capacity ``r_m * B < 1`` binds too.
        """
        limit = self.saturation_rate(distance)
        if self.node_channel_contention:
            limit = min(limit, self.node_channel_saturation_rate())
        return limit

    # ------------------------------------------------------------------
    # Per-hop latency (Eq 14 plus the local clamp).
    # ------------------------------------------------------------------

    def contention_geometry(self, distance: float) -> float:
        """The geometric factor ``(k_d - 1)/k_d**2 * (n + 1)/n`` of Eq 14.

        Returns 0 when the local clamp applies (``k_d < 1``), which also
        covers ``k_d <= 1`` where the base expression would go negative.
        """
        k_d = self.per_dimension_distance(distance)
        if k_d <= 1.0:
            return 0.0 if self.clamp_local else max((k_d - 1.0) / k_d**2, 0.0) * (
                (self.dimensions + 1) / self.dimensions
            )
        return ((k_d - 1.0) / k_d**2) * ((self.dimensions + 1) / self.dimensions)

    def per_hop_latency(self, message_rate: float, distance: float) -> float:
        """``T_h`` for a given injection rate and distance (Eq 14).

        Raises :class:`SaturationError` if the implied channel utilization
        is >= 1 (the open-loop model has no finite latency there).
        """
        rho = self.channel_utilization(message_rate, distance)
        geometry = self.contention_geometry(distance)
        if geometry == 0.0:
            return 1.0
        if rho >= 1.0:
            raise SaturationError(
                f"channel utilization rho = {rho:.4f} >= 1 at "
                f"r_m = {message_rate:.6g}, d = {distance:.4g}"
            )
        return 1.0 + (rho * self.message_size / (1.0 - rho)) * geometry

    # ------------------------------------------------------------------
    # Node-channel contention (the paper's second extension).
    # ------------------------------------------------------------------

    @property
    def _size_second_moment(self) -> float:
        if self.message_size_second_moment is not None:
            return self.message_size_second_moment
        return self.message_size**2

    def node_channel_delay(self, message_rate: float) -> float:
        """P-K waiting time summed over injection and ejection channels.

        ``W = r_m * E[S^2] / (2 * (1 - rho_c))`` per channel — M/D/1 when
        no second moment is configured, M/G/1 otherwise.  Zero when the
        extension is disabled.  Raises :class:`SaturationError` when a
        single node's traffic alone exceeds its channel bandwidth
        (``r_m * B >= 1``).
        """
        if not self.node_channel_contention:
            return 0.0
        rho_c = message_rate * self.message_size
        if rho_c >= 1.0:
            raise SaturationError(
                f"node channel utilization {rho_c:.4f} >= 1 at r_m = {message_rate:.6g}"
            )
        per_channel = (
            message_rate * self._size_second_moment / (2.0 * (1.0 - rho_c))
        )
        return 2.0 * per_channel

    # ------------------------------------------------------------------
    # Message latency (Eq 11 plus extensions).
    # ------------------------------------------------------------------

    def message_latency(self, message_rate: float, distance: float) -> float:
        """``T_m = n * k_d * T_h + B`` (Eq 11), plus node-channel delay.

        Note ``n * k_d`` is just ``d``: a message crosses ``d`` hops at
        ``T_h`` cycles each, then spends ``B`` cycles streaming its flits
        into the destination.
        """
        head_latency = distance * self.per_hop_latency(message_rate, distance)
        return head_latency + self.message_size + self.node_channel_delay(message_rate)

    def zero_load_latency(self, distance: float) -> float:
        """``T_m`` in an empty network: ``d + B``."""
        if not distance > 0:
            raise ParameterError(f"distance d must be positive, got {distance!r}")
        return distance + self.message_size

    # ------------------------------------------------------------------
    # Variants for experiments.
    # ------------------------------------------------------------------

    def without_extensions(self) -> "TorusNetworkModel":
        """Agarwal's base model: no local clamp, no node-channel term."""
        return replace(self, clamp_local=False, node_channel_contention=False)

    def with_dimensions(self, dimensions: int) -> "TorusNetworkModel":
        """Same network parameters in a different dimensionality."""
        return replace(self, dimensions=dimensions)

    def bisection_bandwidth_per_node(self, radix: int) -> float:
        """Flits/cycle each node may push through the bisection (context).

        For a k-ary n-cube torus with unidirectional channel pairs, the
        bisection has ``4 * k**(n-1)`` channels, shared by ``k**n`` nodes;
        uniform random traffic crosses it with probability 1/2.  Useful
        for sanity checks against Eq 10's saturation point.
        """
        if radix < 1:
            raise ParameterError(f"radix k must be >= 1, got {radix!r}")
        channels = 4 * radix ** (self.dimensions - 1)
        nodes = radix**self.dimensions
        return channels / nodes / 0.5

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------

    def describe(self, message_rate: float, distance: float) -> dict:
        """All intermediate model quantities at one operating point."""
        rho = self.channel_utilization(message_rate, distance)
        t_h = self.per_hop_latency(message_rate, distance)
        return {
            "k_d": self.per_dimension_distance(distance),
            "rho": rho,
            "T_h": t_h,
            "node_channel_delay": self.node_channel_delay(message_rate),
            "T_m": self.message_latency(message_rate, distance),
            "saturation_rate": self.max_rate(distance),
        }

"""High-level facade over the modeling framework.

:class:`SystemModel` bundles the three component models (application,
transaction, network) with the clock-domain relationship between
processors and switches, and exposes the questions the paper asks as
single method calls: *what is the operating point at distance d?*, *what
is the expected locality gain at machine size N?*, *where does the issue
time go?*.

The ``with_*`` methods return modified copies, mirroring the paper's
controlled experiments: change one component model while holding the
others fixed (Section 2's stated motivation for the framework's
modularity).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.application import ApplicationModel
from repro.core.breakdown import IssueTimeBreakdown, decompose
from repro.core.combined import OperatingPoint, solve_cached, solve_with_floor
from repro.core.limits import limiting_per_hop_latency_for, per_hop_curve
from repro.core.metrics import GainResult, expected_gain
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.transaction import TransactionModel
from repro.topology.distance import random_traffic_distance_for_size
from repro.units import ALEWIFE_CLOCKS, ClockDomain

__all__ = ["SystemModel"]


@dataclass(frozen=True)
class SystemModel:
    """A complete application + architecture description.

    Parameters
    ----------
    application:
        The Section 2.1 application model (``T_r``, ``p``, ``T_s``).
    transaction:
        The Section 2.2 transaction model (``c``, ``g``, ``T_f``).
    network:
        The Section 2.4 network model (``n``, ``B``, extensions).
    clocks:
        Processor/network clock relationship; defaults to the Alewife
        baseline (network 2x faster than processors).
    """

    application: ApplicationModel
    transaction: TransactionModel
    network: TorusNetworkModel
    clocks: ClockDomain = ALEWIFE_CLOCKS

    # ------------------------------------------------------------------
    # Composition.
    # ------------------------------------------------------------------

    @property
    def node(self) -> NodeModel:
        """The composed node model (Eq 9) for this system."""
        return NodeModel.from_components(
            self.application, self.transaction, self.clocks
        )

    @property
    def latency_sensitivity(self) -> float:
        """``s = p * g / c`` — the application's key tolerance parameter."""
        return self.node.sensitivity

    # ------------------------------------------------------------------
    # Solving.
    # ------------------------------------------------------------------

    def operating_point(
        self, distance: float, respect_issue_floor: bool = False
    ) -> OperatingPoint:
        """Combined-model solution at average communication distance ``d``.

        With ``respect_issue_floor=True`` the Eq 4 lower bound
        ``t_t >= T_r + T_s`` is enforced (the paper drops it; see
        :func:`repro.core.combined.solve_with_floor`).

        Solutions are memoized on the (node, network, distance) key, so
        repeated queries against the same system — e.g. the shared
        ideal-mapping point inside ``expected_gain`` sweeps — cost one
        solve total.
        """
        if respect_issue_floor:
            floor_network = self.clocks.to_network(
                self.application.min_issue_time
            )
            return solve_with_floor(
                self.node, self.network, distance, floor_network
            )
        return solve_cached(self.node, self.network, distance)

    def operating_point_random(self, processors: float) -> OperatingPoint:
        """Operating point under a random mapping on an N-node machine."""
        distance = random_traffic_distance_for_size(
            processors, self.network.dimensions
        )
        return self.operating_point(distance)

    def expected_gain(
        self, processors: float, ideal_distance: float = 1.0
    ) -> GainResult:
        """Ideal-vs-random mapping gain at machine size ``N`` (Figure 7)."""
        return expected_gain(
            self.node, self.network, processors, ideal_distance=ideal_distance
        )

    def breakdown(self, distance: float) -> IssueTimeBreakdown:
        """Eq 18 issue-time decomposition at distance ``d`` (Figure 8)."""
        point = self.operating_point(distance)
        return decompose(
            point, self.application, self.transaction, self.network, self.clocks
        )

    def limiting_per_hop_latency(self) -> float:
        """Eq 16's asymptotic ``T_h`` for this system."""
        return limiting_per_hop_latency_for(self.node, self.network)

    def per_hop_curve(self, sizes: Sequence[float]):
        """``T_h`` vs machine size under random mappings (Figure 6)."""
        return per_hop_curve(self.node, self.network, sizes)

    # ------------------------------------------------------------------
    # Controlled-experiment variants.
    # ------------------------------------------------------------------

    def with_contexts(self, contexts: float) -> "SystemModel":
        """Same system with a different degree of multithreading ``p``."""
        return replace(self, application=self.application.with_contexts(contexts))

    def with_grain_scaled(self, factor: float) -> "SystemModel":
        """Same system with the computation grain scaled (Figure 6)."""
        return replace(
            self, application=self.application.with_grain_scaled(factor)
        )

    def with_network_slowdown(self, factor: float) -> "SystemModel":
        """Same system with the network ``factor``x slower (Table 1)."""
        return replace(self, clocks=self.clocks.slowed(factor))

    def with_dimensions(self, dimensions: int) -> "SystemModel":
        """Same system with an ``n``-dimensional network (Section 4.2)."""
        return replace(self, network=self.network.with_dimensions(dimensions))

    def with_critical_messages(self, critical_messages: float) -> "SystemModel":
        """Same system with a corrected critical-path length ``c``."""
        return replace(
            self,
            transaction=self.transaction.with_critical_messages(critical_messages),
        )

    def without_network_extensions(self) -> "SystemModel":
        """Same system on Agarwal's base network model (ablation)."""
        return replace(self, network=self.network.without_extensions())

    # ------------------------------------------------------------------
    # Presentation.
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable card of the system's parameters and deriveds."""
        app = self.application
        txn = self.transaction
        net = self.network
        lines = [
            "SystemModel",
            f"  application : T_r = {app.grain:g} proc cycles, "
            f"p = {app.contexts:g}, T_s = {app.switch_time:g}",
            f"  transaction : c = {txn.critical_messages:g}, "
            f"g = {txn.messages_per_transaction:g}, "
            f"T_f = {txn.fixed_overhead:g} proc cycles",
            f"  network     : {net.dimensions}-D torus, B = "
            f"{net.message_size:g} flits"
            + ("" if net.clamp_local else ", no local clamp")
            + (
                ", node-channel contention"
                if net.node_channel_contention
                else ""
            ),
            f"  clocks      : network at {self.clocks.network_speedup:g}x "
            "the processor clock",
            f"  derived     : s = {self.latency_sensitivity:.3g}, "
            f"limiting T_h = {self.limiting_per_hop_latency():.3g} "
            "network cycles",
        ]
        return "\n".join(lines)

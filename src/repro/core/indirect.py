"""Indirect (multistage) network model — the UCL counterpart.

Section 2.4 notes the framework "can easily accommodate models for other
types of packet-switched networks such as that for indirect networks
given in [8]" (Agarwal's companion analysis).  This module provides that
model: a buffered, packet-switched k-ary butterfly/banyan, the canonical
*uniform communication latency* (UCL) network of the paper's
introduction — every source/destination pair crosses the same
``ceil(log_k N)`` switch stages, so there is no physical locality to
exploit, and all latency grows with machine size.

Per stage, a message waits in an M/D/1-style queue for its output link
(service time ``B`` flits, per-link utilization ``rho = r_m * B`` for
uniform traffic — a k-ary banyan has exactly one stage-link per node) and
pays one switch cycle:

    ``T_stage = 1 + rho * B / (2 * (1 - rho)) * (1 - 1/k)``
    ``T_m     = stages * T_stage + B``

The ``(1 - 1/k)`` factor is the standard banyan correction (a fraction
``1/k`` of arrivals continue straight through a k x k switch without
conflicting).

The class implements the same operating-point protocol as
:class:`~repro.core.network.TorusNetworkModel`, with the **number of
stages playing the role of the distance argument** — use
:meth:`stages_for` to derive it from the machine size — so
:func:`repro.core.combined.solve` closes the application/network feedback
loop over it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError, SaturationError

__all__ = ["IndirectNetworkModel"]


@dataclass(frozen=True)
class IndirectNetworkModel:
    """Buffered k-ary multistage (butterfly/banyan) network model.

    Parameters
    ----------
    switch_radix:
        ``k``, the switch degree; must be >= 2.  Stages for an N-node
        machine: ``ceil(log_k N)``.
    message_size:
        ``B`` in flits; must be positive.
    """

    switch_radix: int = 2
    message_size: float = 12.0
    #: Interface parity with the torus model (no node-channel extension).
    node_channel_contention: bool = False

    def __post_init__(self) -> None:
        if self.switch_radix < 2:
            raise ParameterError(
                f"switch_radix k must be >= 2, got {self.switch_radix!r}"
            )
        if not self.message_size > 0:
            raise ParameterError(
                f"message_size B must be positive, got {self.message_size!r}"
            )

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------

    def stages_for(self, processors: float) -> int:
        """``ceil(log_k N)`` switch stages for an N-node machine."""
        if not processors > 1:
            raise ParameterError(
                f"machine size N must exceed 1, got {processors!r}"
            )
        return max(1, math.ceil(math.log(processors, self.switch_radix) - 1e-9))

    def _check_stages(self, stages: float) -> float:
        if not stages > 0:
            raise ParameterError(f"stages must be positive, got {stages!r}")
        return stages

    # ------------------------------------------------------------------
    # Operating-point protocol (stages stand in for "distance").
    # ------------------------------------------------------------------

    def channel_utilization(self, message_rate: float, stages: float) -> float:
        """Per-link utilization ``rho = r_m * B`` (one link per node)."""
        self._check_stages(stages)
        if message_rate < 0:
            raise ParameterError(
                f"message rate r_m must be >= 0, got {message_rate!r}"
            )
        return message_rate * self.message_size

    def saturation_rate(self, stages: float) -> float:
        """Injection rate at which stage links saturate."""
        self._check_stages(stages)
        return 1.0 / self.message_size

    def max_rate(self, stages: float) -> float:
        return self.saturation_rate(stages)

    def contention_geometry(self, stages: float) -> float:
        """Banyan conflict factor ``1 - 1/k`` (never zero: no fast path)."""
        self._check_stages(stages)
        return 1.0 - 1.0 / self.switch_radix

    def per_hop_latency(self, message_rate: float, stages: float) -> float:
        """Per-stage latency ``T_stage`` (switch cycle + queueing)."""
        rho = self.channel_utilization(message_rate, stages)
        if rho >= 1.0:
            raise SaturationError(
                f"stage-link utilization rho = {rho:.4f} >= 1 at "
                f"r_m = {message_rate:.6g}"
            )
        waiting = rho * self.message_size / (2.0 * (1.0 - rho))
        return 1.0 + waiting * self.contention_geometry(stages)

    def node_channel_delay(self, message_rate: float) -> float:
        """No separate node-channel term (the first stage is the entry)."""
        return 0.0

    def message_latency(self, message_rate: float, stages: float) -> float:
        """``T_m = stages * T_stage + B``."""
        return stages * self.per_hop_latency(message_rate, stages) + self.message_size

    def zero_load_latency(self, stages: float) -> float:
        """``stages + B`` — identical for *every* node pair (UCL)."""
        self._check_stages(stages)
        return stages + self.message_size

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def describe(self, message_rate: float, stages: float) -> dict:
        """All intermediate quantities at one operating point."""
        return {
            "stages": stages,
            "rho": self.channel_utilization(message_rate, stages),
            "T_stage": self.per_hop_latency(message_rate, stages),
            "T_m": self.message_latency(message_rate, stages),
            "saturation_rate": self.saturation_rate(stages),
        }

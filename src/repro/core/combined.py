"""The combined model (Section 2.5 of the paper).

The node model (Eq 9) says how much latency a node can *absorb* at a given
injection rate; the network model (Eq 11) says how much latency the
network *imposes* at that rate.  The combined model closes the loop:
nodes "back off" as latencies rise, injecting only at the rate consistent
with the latency they actually observe.  Formally, the operating point is
the injection rate ``r_m`` at which the two curves intersect:

    ``s / r_m - intercept  =  T_m_network(r_m, d)``

For the base network model this reduces to a quadratic polynomial in
``r_m`` (solved in closed form by :func:`solve_quadratic`); with the
paper's node-channel extension the equation gains an extra rational term,
so the production solver (:func:`solve`) uses safeguarded bisection on a
bracket that always exists:

* as ``r_m -> 0+`` the node curve diverges to ``+inf`` while the network
  curve tends to the finite zero-load latency, and
* as ``r_m`` approaches the smallest saturation rate the network curve
  diverges while the node curve stays finite,

so the difference changes sign exactly once (node curve strictly
decreasing, network curve non-decreasing in ``r_m``).

The solved :class:`OperatingPoint` carries every quantity of interest —
rates, latencies, utilization, per-hop latency — in network cycles, with a
conversion helper for the processor time base.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs, perf
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ConvergenceError, ParameterError, SaturationError
from repro.units import ClockDomain

__all__ = [
    "OperatingPoint",
    "BatchOperatingPoints",
    "solve",
    "solve_batch",
    "solve_cached",
    "clear_solve_cache",
    "solve_quadratic",
    "solve_with_floor",
    "open_loop",
]

#: Relative width at which bisection declares convergence.
_RELATIVE_TOLERANCE = 1e-13
#: Hard cap on bisection iterations (2**-200 of the bracket; unreachable).
_MAX_ITERATIONS = 200


@dataclass(frozen=True)
class OperatingPoint:
    """Self-consistent solution of the combined model.

    All times are network cycles; all rates are per network cycle.
    ``distance`` is the average communication distance ``d`` the point was
    solved for.
    """

    message_rate: float
    message_latency: float
    per_hop_latency: float
    utilization: float
    node_channel_delay: float
    distance: float
    transaction_rate: float
    issue_time: float
    transaction_latency: float

    @property
    def message_time(self) -> float:
        """Average inter-message injection time ``t_m = 1 / r_m``."""
        return 1.0 / self.message_rate

    def transaction_rate_processor(self, clocks: ClockDomain) -> float:
        """``r_t`` in transactions per *processor* cycle."""
        return clocks.rate_to_processor(self.transaction_rate)

    def issue_time_processor(self, clocks: ClockDomain) -> float:
        """``t_t`` in processor cycles."""
        return clocks.to_processor(self.issue_time)

    def aggregate_performance(self, processors: float) -> float:
        """``N * r_t`` (Section 2.6's aggregate metric), network time base."""
        return processors * self.transaction_rate


def _make_point(
    node: NodeModel,
    network: TorusNetworkModel,
    message_rate: float,
    distance: float,
) -> OperatingPoint:
    """Populate an :class:`OperatingPoint` from a solved injection rate."""
    latency = network.message_latency(message_rate, distance)
    transaction_rate = node.transaction_rate(message_rate)
    issue_time = node.issue_time(1.0 / message_rate)
    # Transaction latency follows from the node-model identity
    # T_m = s * t_m - intercept  <=>  T_t = c * T_m + T_f (all network time),
    # and since s = p*g/c the cleanest recovery is through the message curve.
    transaction_latency = node.sensitivity * (1.0 / message_rate) - node.intercept
    return OperatingPoint(
        message_rate=message_rate,
        message_latency=latency,
        per_hop_latency=network.per_hop_latency(message_rate, distance),
        utilization=network.channel_utilization(message_rate, distance),
        node_channel_delay=network.node_channel_delay(message_rate),
        distance=distance,
        transaction_rate=transaction_rate,
        issue_time=issue_time,
        transaction_latency=transaction_latency,
    )


def _curve_gap(
    node: NodeModel,
    network: TorusNetworkModel,
    message_rate: float,
    distance: float,
) -> float:
    """Node-curve latency minus network-curve latency at ``message_rate``.

    Positive while the node could absorb more latency than the network
    imposes (i.e. the node would speed up); the operating point is the
    root.
    """
    return node.message_latency_at_rate(message_rate) - network.message_latency(
        message_rate, distance
    )


def solve(
    node: NodeModel,
    network: TorusNetworkModel,
    distance: float,
) -> OperatingPoint:
    """Find the self-consistent operating point for one configuration.

    Uses closed-form solutions where the model permits (constant network
    latency under the local clamp) and safeguarded bisection otherwise.

    With observability on (:func:`repro.obs.enable`) each call emits a
    ``solver.solve`` span and a per-solve convergence record (branch,
    iterations, bracket width, residual); the disabled path is the bare
    solver — one flag check, no other overhead.
    """
    if not distance > 0:
        raise ParameterError(f"distance d must be positive, got {distance!r}")
    perf.COUNTERS.solve_calls += 1
    if not obs.is_enabled():
        return _solve_impl(node, network, distance, None)
    with obs.span("solver.solve", distance=float(distance)):
        return _solve_impl(node, network, distance, obs.solver_diagnostics())


def _solve_impl(
    node: NodeModel,
    network: TorusNetworkModel,
    distance: float,
    diag,
) -> OperatingPoint:
    ceiling = network.max_rate(distance)

    # Fast path: no contention terms at all => network latency is the
    # constant d + B and the intersection is linear in r_m.
    if (
        network.contention_geometry(distance) == 0.0
        and not network.node_channel_contention
    ):
        rate = node.sensitivity / (node.intercept + network.zero_load_latency(distance))
        if rate >= network.saturation_rate(distance):
            if diag is not None:
                diag.record(
                    "scalar", "saturation", distance, message_rate=rate,
                    utilization=1.0,
                )
            raise SaturationError(
                "clamped model predicts injection beyond channel capacity "
                f"(r_m = {rate:.6g} >= {network.saturation_rate(distance):.6g}); "
                "the k_d < 1 clamp is not meaningful at this load"
            )
        point = _make_point(node, network, rate, distance)
        if diag is not None:
            diag.record(
                "scalar", "linear", distance, message_rate=rate,
                utilization=point.utilization,
            )
        return point

    low = min(1e-12, ceiling * 1e-9)
    high = ceiling * (1.0 - 1e-9)
    gap_low = _curve_gap(node, network, low, distance)
    gap_high = _curve_gap(node, network, high, distance)
    if gap_low < 0:
        # The node cannot sustain even an infinitesimal rate profitably;
        # with a positive sensitivity this cannot happen (node curve
        # diverges), so reaching here means numerically degenerate input.
        if diag is not None:
            diag.record(
                "scalar", "saturation", distance, residual=gap_low,
                message_rate=low,
            )
        raise SaturationError(
            f"no feasible operating point: node curve below network curve "
            f"at r_m = {low:.3g} (gap {gap_low:.3g})"
        )
    if gap_high > 0:
        # Network curve stays below the node curve all the way to
        # saturation: only possible when every contention term is finite
        # at the ceiling (e.g. clamp active but node channels enabled and
        # the binding ceiling is the mesh channel, where T_h is clamped).
        # The model then has no interior fixed point; the honest answer
        # is saturation.
        if diag is not None:
            diag.record(
                "scalar", "saturation", distance, residual=gap_high,
                message_rate=high, utilization=1.0,
            )
        raise SaturationError(
            "operating point lies beyond network saturation "
            f"(gap at ceiling = {gap_high:.3g}); reduce load or enable "
            "the contention terms"
        )

    for iteration in range(1, _MAX_ITERATIONS + 1):
        mid = 0.5 * (low + high)
        gap_mid = _curve_gap(node, network, mid, distance)
        if gap_mid > 0:
            low = mid
        else:
            high = mid
        if (high - low) <= _RELATIVE_TOLERANCE * high:
            rate = 0.5 * (low + high)
            point = _make_point(node, network, rate, distance)
            if diag is not None:
                diag.record(
                    "scalar", "bisection", distance, iterations=iteration,
                    bracket_width=(high - low) / high,
                    residual=_curve_gap(node, network, rate, distance),
                    message_rate=rate, utilization=point.utilization,
                )
            return point

    if diag is not None:
        diag.record(
            "scalar", "non-convergent", distance, iterations=_MAX_ITERATIONS,
            bracket_width=(high - low) / high,
            residual=_curve_gap(node, network, 0.5 * (low + high), distance),
            message_rate=0.5 * (low + high),
        )
    raise ConvergenceError(
        f"combined-model bisection failed to converge (bracket [{low}, {high}])",
        residual=_curve_gap(node, network, 0.5 * (low + high), distance),
    )


@dataclass(frozen=True)
class BatchOperatingPoints:
    """Struct-of-arrays form of many solved operating points.

    Every field is a float64 array of the common broadcast shape passed
    to :func:`solve_batch`; element ``i`` of every array describes the
    same operating point.  :meth:`point` materializes one element as a
    scalar :class:`OperatingPoint`, :meth:`points` all of them.
    """

    message_rate: np.ndarray
    message_latency: np.ndarray
    per_hop_latency: np.ndarray
    utilization: np.ndarray
    node_channel_delay: np.ndarray
    distance: np.ndarray
    transaction_rate: np.ndarray
    issue_time: np.ndarray
    transaction_latency: np.ndarray

    def __len__(self) -> int:
        return self.message_rate.shape[0]

    def point(self, index: int) -> OperatingPoint:
        """Element ``index`` as a scalar :class:`OperatingPoint`."""
        return OperatingPoint(
            message_rate=float(self.message_rate[index]),
            message_latency=float(self.message_latency[index]),
            per_hop_latency=float(self.per_hop_latency[index]),
            utilization=float(self.utilization[index]),
            node_channel_delay=float(self.node_channel_delay[index]),
            distance=float(self.distance[index]),
            transaction_rate=float(self.transaction_rate[index]),
            issue_time=float(self.issue_time[index]),
            transaction_latency=float(self.transaction_latency[index]),
        )

    def points(self) -> List[OperatingPoint]:
        """All elements as scalar :class:`OperatingPoint` records."""
        return [self.point(i) for i in range(len(self))]


def solve_batch(
    node: NodeModel,
    network: TorusNetworkModel,
    distances,
    sensitivity=None,
    intercept=None,
) -> BatchOperatingPoints:
    """Vectorized :func:`solve` over arrays of model parameters.

    ``distances`` — and optionally per-lane overrides of the node curve's
    ``sensitivity`` and ``intercept`` (defaulting to ``node``'s scalars)
    — broadcast to a common 1-D shape; every lane is solved with the same
    safeguarded bisection as the scalar path, executed simultaneously on
    numpy arrays.  Lane ``i``'s bracket updates replicate the scalar
    solver's exactly (converged lanes freeze while the rest keep
    bisecting), so results agree with :func:`solve` to full precision —
    the property the parity tests in ``tests/properties`` pin down.

    Raises the same errors as the scalar path (:class:`ParameterError`
    for non-positive distances, :class:`SaturationError` when any lane
    has no interior fixed point), identifying the first offending lane.

    Only direct torus networks are supported; pass an
    :class:`~repro.core.indirect.IndirectNetworkModel` to the scalar
    solver instead.
    """
    if not isinstance(network, TorusNetworkModel):
        raise ParameterError(
            "solve_batch supports TorusNetworkModel only; use solve() for "
            f"{type(network).__name__}"
        )
    d = np.atleast_1d(np.asarray(distances, dtype=float))
    s = np.asarray(
        node.sensitivity if sensitivity is None else sensitivity, dtype=float
    )
    intercept_arr = np.asarray(
        node.intercept if intercept is None else intercept, dtype=float
    )
    d, s, intercept_arr = np.broadcast_arrays(d, s, intercept_arr)
    d = np.ascontiguousarray(d)
    s = np.ascontiguousarray(s)
    intercept_arr = np.ascontiguousarray(intercept_arr)
    if d.ndim != 1:
        raise ParameterError(
            f"solve_batch expects 1-D parameter arrays, got shape {d.shape}"
        )
    if d.size and not (d > 0).all():
        bad = float(d[np.argmin(d > 0)])
        raise ParameterError(f"distance d must be positive, got {bad!r}")
    if s.size and not (s > 0).all():
        bad = float(s[np.argmin(s > 0)])
        raise ParameterError(
            f"latency sensitivity s must be positive, got {bad!r}"
        )

    perf.COUNTERS.batch_solves += 1
    perf.COUNTERS.batch_points += d.size
    if d.size == 0:
        empty = np.empty(0, dtype=float)
        return BatchOperatingPoints(*([empty] * 9))

    if not obs.is_enabled():
        return _solve_batch_impl(node, network, d, s, intercept_arr, None)
    with obs.span("solver.solve_batch", lanes=int(d.size)):
        return _solve_batch_impl(
            node, network, d, s, intercept_arr, obs.solver_diagnostics()
        )


def _solve_batch_impl(
    node: NodeModel,
    network: TorusNetworkModel,
    d: np.ndarray,
    s: np.ndarray,
    intercept_arr: np.ndarray,
    diag,
) -> BatchOperatingPoints:
    dims = network.dimensions
    size = network.message_size
    ncc = network.node_channel_contention
    second_moment = network._size_second_moment

    k_d = d / dims
    geometry = np.where(
        k_d > 1.0,
        ((k_d - 1.0) / k_d**2) * ((dims + 1) / dims),
        0.0,
    )
    saturation = 2.0 / (size * k_d)
    ceiling = np.minimum(saturation, 1.0 / size) if ncc else saturation

    # Algebraically regrouped network curve, hoisting every rate-free
    # factor out of the bisection loop:
    #   T_m(r) = (d + B) + c1 * rho/(1 - rho) + r*E[S^2]/(1 - r*B)
    # with rho = r * rho_slope and c1 = d * B * geometry (zero wherever
    # the local clamp applies, which also zeroes the contention term).
    rho_slope = size * k_d / 2.0
    contention_scale = d * size * geometry
    node_minus_network_const = intercept_arr + d + size

    def curve_gap(rate_arr: np.ndarray) -> np.ndarray:
        """Node-curve minus network-curve latency (requires rho < 1)."""
        rho = rate_arr * rho_slope
        gap = (
            s / rate_arr
            - node_minus_network_const
            - contention_scale * (rho / (1.0 - rho))
        )
        if ncc:
            gap -= rate_arr * second_moment / (1.0 - rate_arr * size)
        return gap

    rate = np.empty_like(d)

    # Fast path (mirrors the scalar solver): no contention terms at all,
    # so the network latency is the constant d + B and the intersection
    # is linear in r_m.
    linear = (geometry == 0.0) & (not ncc)
    if linear.any():
        lin_rate = s / (intercept_arr + (d + size))
        over = linear & (lin_rate >= saturation)
        if over.any():
            i = int(np.argmax(over))
            raise SaturationError(
                "clamped model predicts injection beyond channel capacity "
                f"(r_m = {lin_rate[i]:.6g} >= {saturation[i]:.6g}); "
                "the k_d < 1 clamp is not meaningful at this load"
            )
        rate[linear] = lin_rate[linear]

    bisect = ~linear
    if bisect.any():
        low = np.minimum(1e-12, ceiling * 1e-9)
        high = ceiling * (1.0 - 1e-9)
        gap_low = curve_gap(low)
        gap_high = curve_gap(high)
        bad_low = bisect & (gap_low < 0)
        if bad_low.any():
            i = int(np.argmax(bad_low))
            raise SaturationError(
                f"no feasible operating point: node curve below network "
                f"curve at r_m = {low[i]:.3g} (gap {gap_low[i]:.3g})"
            )
        bad_high = bisect & (gap_high > 0)
        if bad_high.any():
            i = int(np.argmax(bad_high))
            raise SaturationError(
                "operating point lies beyond network saturation "
                f"(gap at ceiling = {gap_high[i]:.3g}); reduce load or "
                "enable the contention terms"
            )

        # The scalar solver stops each lane once its bracket's relative
        # width reaches the tolerance; since the width halves per
        # iteration from ~the full bracket, no lane can converge before
        # ~ -log2(tolerance) iterations — the check is provably False
        # until then and is skipped for speed.
        earliest = max(0, int(-np.log2(_RELATIVE_TOLERANCE)) - 1)
        update = np.empty_like(d)
        converged_at = (
            np.zeros(d.size, dtype=np.int64) if diag is not None else None
        )
        for iteration in range(1, _MAX_ITERATIONS + 1):
            mid = 0.5 * (low + high)
            above = curve_gap(mid) > 0.0
            np.copyto(low, mid, where=above)
            np.copyto(high, mid, where=~above)
            if iteration >= earliest:
                np.subtract(high, low, out=update)
                done = update <= _RELATIVE_TOLERANCE * high
                if converged_at is not None:
                    np.copyto(
                        converged_at, iteration,
                        where=done & (converged_at == 0),
                    )
                if done.all():
                    break
        else:
            wide = (high - low) > _RELATIVE_TOLERANCE * high
            i = int(np.argmax(wide & bisect))
            raise ConvergenceError(
                "combined-model bisection failed to converge "
                f"(bracket [{low[i]}, {high[i]}])",
                residual=float(curve_gap(0.5 * (low + high))[i]),
            )
        midpoint = 0.5 * (low + high)
        rate[bisect] = midpoint[bisect]

    # Populate every OperatingPoint field at the solved rates.
    rho = rate * size * k_d / 2.0
    per_hop = np.where(
        geometry == 0.0, 1.0, 1.0 + (rho * size / (1.0 - rho)) * geometry
    )
    if ncc:
        rho_c = rate * size
        channel_delay = 2.0 * (
            rate * second_moment / (2.0 * (1.0 - rho_c))
        )
    else:
        channel_delay = np.zeros_like(rate)
    message_time = 1.0 / rate
    g = node.messages_per_transaction
    if diag is not None:
        width = np.zeros_like(rate)
        residual = np.zeros_like(rate)
        if bisect.any():
            np.copyto(width, (high - low) / high, where=bisect)
            np.copyto(residual, curve_gap(rate), where=bisect)
        for i in range(d.size):
            if linear[i]:
                diag.record(
                    "batch", "linear", float(d[i]),
                    message_rate=float(rate[i]),
                    utilization=float(rho[i]),
                )
            else:
                diag.record(
                    "batch", "bisection", float(d[i]),
                    iterations=int(converged_at[i]),
                    bracket_width=float(width[i]),
                    residual=float(residual[i]),
                    message_rate=float(rate[i]),
                    utilization=float(rho[i]),
                )
    return BatchOperatingPoints(
        message_rate=rate,
        message_latency=d * per_hop + size + channel_delay,
        per_hop_latency=per_hop,
        utilization=rho,
        node_channel_delay=channel_delay,
        distance=d,
        transaction_rate=rate / g,
        issue_time=g * message_time,
        transaction_latency=s * message_time - intercept_arr,
    )


@functools.lru_cache(maxsize=16384)
def _solve_lru(
    node: NodeModel, network: TorusNetworkModel, distance: float
) -> OperatingPoint:
    return solve(node, network, distance)


def solve_cached(
    node: NodeModel, network: TorusNetworkModel, distance: float
) -> OperatingPoint:
    """Memoized :func:`solve` keyed by the (frozen) model parameters.

    Repeated queries at identical ``(node, network, distance)`` — e.g.
    the ideal-mapping point shared by every machine size of a gain curve,
    or ``expected_gain`` re-asked at a landmark size — return the cached
    :class:`OperatingPoint` without re-running the bisection.  Both model
    dataclasses are frozen and hashable, so the key is exact; errors are
    not cached (a failing configuration re-raises on every call).
    """
    info = _solve_lru.cache_info()
    point = _solve_lru(node, network, distance)
    if _solve_lru.cache_info().hits > info.hits:
        perf.COUNTERS.cache_hits += 1
    else:
        perf.COUNTERS.cache_misses += 1
    return point


def clear_solve_cache() -> None:
    """Drop all memoized operating points (test isolation)."""
    _solve_lru.cache_clear()


def solve_quadratic(
    node: NodeModel,
    network: TorusNetworkModel,
    distance: float,
) -> OperatingPoint:
    """Closed-form solution of the Section 2.5 quadratic.

    Valid only for the model *without* the node-channel extension (the
    extension adds a second rational term and the polynomial degree
    rises).  With the local clamp active the network latency is constant
    and the quadratic degenerates to the same linear solution ``solve``
    uses.  Provided both as documentation of the paper's algebra and as an
    independent cross-check of the numeric solver.

    Degenerate corner: as ``k_d -> 1`` from above, Eq 14's geometry term
    vanishes and the fixed point may sit within floating-point noise of
    channel saturation; there the closed form can return the
    saturation-adjacent root while :func:`solve` (whose bracket stops a
    hair short of the ceiling) reports :class:`SaturationError`.  Both
    answers describe the same physics — a bandwidth-pinned point the
    base model cannot meaningfully resolve.
    """
    if network.node_channel_contention:
        raise ParameterError(
            "solve_quadratic applies to the base model only; build the "
            "network with node_channel_contention=False (or use solve())"
        )
    if not distance > 0:
        raise ParameterError(f"distance d must be positive, got {distance!r}")

    k_d = network.per_dimension_distance(distance)
    size = network.message_size
    geometry = network.contention_geometry(distance)
    sensitivity = node.sensitivity
    intercept = node.intercept

    if geometry == 0.0:
        return solve(node, network, distance)

    # Derivation: equate  s/r - K = (d + B) + d * beta * B * (a r)/(1 - a r)
    # with a = B * k_d / 2, multiply through by r (1 - a r):
    #   A r^2 + Bq r + Cq = 0
    half_service = size * k_d / 2.0
    quad_a = half_service * (
        distance * geometry * size - distance - size - intercept
    )
    quad_b = distance + size + intercept + sensitivity * half_service
    quad_c = -sensitivity

    saturation = network.saturation_rate(distance)
    root, branch = _physical_root(quad_a, quad_b, quad_c, saturation)
    diag = obs.solver_diagnostics()
    if root is None:
        if diag is not None:
            diag.record("quadratic", "saturation", distance, utilization=1.0)
        raise SaturationError(
            "quadratic has no root in (0, saturation); no feasible "
            f"operating point at d = {distance:.4g}"
        )
    point = _make_point(node, network, root, distance)
    if diag is not None:
        diag.record(
            "quadratic", branch, distance, message_rate=root,
            utilization=point.utilization,
        )
    return point


def _physical_root(
    quad_a: float, quad_b: float, quad_c: float, saturation: float
) -> Tuple[Optional[float], str]:
    """Root of ``A r**2 + B r + C`` strictly inside (0, saturation).

    Returns ``(root, branch)`` where ``branch`` names which solution
    branch produced the root — ``"linear"`` for the degenerate A = 0
    case, ``"root+"``/``"root-"`` for the two quadratic roots — so the
    convergence diagnostics can report which root selection fired.
    """
    if quad_a == 0.0:
        if quad_b == 0.0:
            return None, "degenerate"
        candidate = -quad_c / quad_b
        if 0.0 < candidate < saturation:
            return candidate, "linear"
        return None, "linear"
    discriminant = quad_b * quad_b - 4.0 * quad_a * quad_c
    if discriminant < 0.0:
        return None, "complex"
    sqrt_disc = discriminant**0.5
    for candidate, branch in (
        ((-quad_b + sqrt_disc) / (2.0 * quad_a), "root+"),
        ((-quad_b - sqrt_disc) / (2.0 * quad_a), "root-"),
    ):
        if 0.0 < candidate < saturation:
            return candidate, branch
    return None, "no-physical-root"


def solve_with_floor(
    node: NodeModel,
    network: TorusNetworkModel,
    distance: float,
    min_issue_time: float,
) -> OperatingPoint:
    """Combined model with the Eq 4 issue-time floor applied.

    The paper drops the floor (``t_t >= T_r + T_s``) because none of its
    experiments approached it; this variant keeps it for configurations
    that do (e.g. many contexts, tiny grain, single-hop mappings).  If
    the unconstrained solution would issue faster than the floor allows,
    the processor — not the network — is the bottleneck: the point is
    re-pinned to the floor rate, with the message latency read off the
    *network* curve there (the node curve no longer applies; the
    processor simply isn't latency-bound).

    ``min_issue_time`` is ``t_t``'s floor in **network cycles**
    (``clocks.to_network(T_r + T_s)`` for block multithreading).
    """
    if not min_issue_time > 0:
        raise ParameterError(
            f"min_issue_time must be positive, got {min_issue_time!r}"
        )
    free = solve(node, network, distance)
    if free.issue_time >= min_issue_time:
        return free
    # A binding floor always *lowers* the injection rate below the free
    # solution's (already feasible) rate, so the pinned point is feasible
    # by construction.
    floor_rate = node.messages_per_transaction / min_issue_time
    latency = network.message_latency(floor_rate, distance)
    diag = obs.solver_diagnostics()
    if diag is not None:
        diag.record(
            "floor", "floor-clamp", distance, message_rate=floor_rate,
            utilization=network.channel_utilization(floor_rate, distance),
        )
    return OperatingPoint(
        message_rate=floor_rate,
        message_latency=latency,
        per_hop_latency=network.per_hop_latency(floor_rate, distance),
        utilization=network.channel_utilization(floor_rate, distance),
        node_channel_delay=network.node_channel_delay(floor_rate),
        distance=distance,
        transaction_rate=1.0 / min_issue_time,
        issue_time=min_issue_time,
        transaction_latency=node.sensitivity * min_issue_time
        / node.messages_per_transaction - node.intercept,
    )


def open_loop(
    network: TorusNetworkModel,
    message_rate: float,
    distance: float,
) -> float:
    """Message latency at a *fixed* injection rate (Agarwal's usage).

    This is the no-feedback evaluation the paper contrasts against
    (Section 5): the latency the network would impose if nodes kept
    injecting at ``message_rate`` regardless of what they observe.
    Diverges (raises :class:`SaturationError`) beyond saturation, which is
    precisely the behavior the combined model's feedback eliminates.
    """
    return network.message_latency(message_rate, distance)

"""Parameter-sweep utilities shared by the Section 4 experiments.

Each sweep returns a list of small frozen records rather than bare arrays
so that experiment drivers, benchmarks, and examples can render the same
results without re-deriving which column is which.  Conversions to numpy
arrays are provided where plotting-style consumers want columns.

All sweeps route through :func:`repro.core.combined.solve_batch`: the
full array of operating points is found by one vectorized bisection
instead of a Python-level loop of scalar solves, which is what makes the
figure/table reproductions and the campaign layer fast (see
``docs/performance.md``).  Results are identical to the scalar path to
solver tolerance (~1e-13 relative), which the parity tests in
``tests/properties`` enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.combined import OperatingPoint, solve_batch
from repro.core.limits import limiting_per_hop_latency
from repro.core.metrics import GainResult, expected_gain_batch
from repro.core.system import SystemModel

__all__ = [
    "DistanceSample",
    "sweep_distances",
    "GainCurve",
    "gain_curve",
    "SlowdownSample",
    "sweep_network_slowdowns",
    "ContextsSample",
    "sweep_contexts",
    "logspace_sizes",
]


@dataclass(frozen=True)
class DistanceSample:
    """Operating point solved at one average communication distance."""

    distance: float
    point: OperatingPoint


def sweep_distances(
    system: SystemModel, distances: Sequence[float]
) -> List[DistanceSample]:
    """Solve the combined model across a range of distances (Figures 4-5)."""
    values = [float(d) for d in distances]
    with obs.span("sweep.distances", points=len(values)):
        batch = solve_batch(system.node, system.network, values)
    return [
        DistanceSample(distance=d, point=batch.point(i))
        for i, d in enumerate(values)
    ]


@dataclass(frozen=True)
class GainCurve:
    """Expected-gain results across machine sizes for one system."""

    label: str
    results: List[GainResult]
    #: Lazily built size -> gain index for :meth:`gain_at` (not compared).
    _gain_index: Dict[float, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def sizes(self) -> np.ndarray:
        return np.array([r.processors for r in self.results])

    @property
    def gains(self) -> np.ndarray:
        return np.array([r.gain for r in self.results])

    def gain_at(self, processors: float, tolerance: float = 1e-6) -> float:
        """Gain at an exactly-swept machine size.

        Exact sizes hit a dict built once per curve; sizes within
        ``tolerance`` (relative) of a swept value fall back to a scan.
        Raises :class:`KeyError` for sizes that were not swept.
        """
        if not self._gain_index:
            self._gain_index.update(
                (r.processors, r.gain) for r in self.results
            )
        exact = self._gain_index.get(float(processors))
        if exact is not None:
            return exact
        for swept, gain in self._gain_index.items():
            if abs(swept - processors) <= tolerance * processors:
                return gain
        raise KeyError(f"machine size {processors!r} was not swept")


def gain_curve(
    system: SystemModel,
    sizes: Sequence[float],
    label: str = "",
    ideal_distance: float = 1.0,
) -> GainCurve:
    """Expected gain vs machine size (the Figure 7 sweep).

    All random-mapping points are solved in one batch; the shared
    ideal-mapping point is solved once.
    """
    size_values = [float(n) for n in sizes]
    with obs.span("sweep.gain_curve", sizes=len(size_values), label=label):
        results = expected_gain_batch(
            system.node,
            system.network,
            size_values,
            ideal_distance=ideal_distance,
        )
    return GainCurve(label=label, results=results)


class _FrozenGains(Mapping):
    """Immutable, hashable float -> float mapping for frozen samples."""

    __slots__ = ("_data", "_items")

    def __init__(self, data: Mapping):
        self._data = MappingProxyType(
            {float(k): float(v) for k, v in dict(data).items()}
        )
        self._items: Tuple[Tuple[float, float], ...] = tuple(
            sorted(self._data.items())
        )

    def __getitem__(self, key: float) -> float:
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, _FrozenGains):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"_FrozenGains({dict(self._data)!r})"


@dataclass(frozen=True)
class SlowdownSample:
    """Expected gains at one relative network speed (one Table 1 row).

    ``gains_by_size`` maps machine size to expected gain; it is stored
    immutably so the frozen dataclass is actually hashable and frozen.
    """

    slowdown: float
    network_speedup: float
    gains_by_size: Mapping[float, float]

    def __post_init__(self) -> None:
        if not isinstance(self.gains_by_size, _FrozenGains):
            object.__setattr__(
                self, "gains_by_size", _FrozenGains(self.gains_by_size)
            )


def sweep_network_slowdowns(
    system: SystemModel,
    slowdowns: Sequence[float],
    sizes: Sequence[float],
    ideal_distance: float = 1.0,
) -> List[SlowdownSample]:
    """Expected gain vs relative network speed (the Table 1 sweep).

    ``slowdowns`` are factors applied to the system's baseline network
    clock: 1.0 reproduces the base architecture, 2.0 halves the network
    speed, and so on.  A slowdown only rescales the node curve's
    intercept (``T_r`` and ``T_f`` stretch in network cycles), so the
    whole (slowdown x size) grid — random and ideal lanes — is solved by
    a single batched bisection.
    """
    factors = [float(f) for f in slowdowns]
    size_values = [float(n) for n in sizes]
    variants = [system.with_network_slowdown(factor) for factor in factors]
    dims = system.network.dimensions

    from repro.topology.distance import random_traffic_distance_for_size

    random_distances = [
        random_traffic_distance_for_size(n, dims) for n in size_values
    ]
    lane_distances = []
    lane_intercepts = []
    for variant in variants:
        intercept = variant.node.intercept
        lane_distances.append(float(ideal_distance))
        lane_intercepts.append(intercept)
        for distance in random_distances:
            lane_distances.append(distance)
            lane_intercepts.append(intercept)

    with obs.span(
        "sweep.slowdowns", rows=len(factors), sizes=len(size_values)
    ):
        batch = solve_batch(
            system.node,
            system.network,
            np.array(lane_distances),
            intercept=np.array(lane_intercepts),
        )

    samples = []
    stride = 1 + len(size_values)
    for row, (factor, variant) in enumerate(zip(factors, variants)):
        base = row * stride
        ideal_rate = batch.transaction_rate[base]
        gains = {
            size: float(
                ideal_rate / batch.transaction_rate[base + 1 + column]
            )
            for column, size in enumerate(size_values)
        }
        samples.append(
            SlowdownSample(
                slowdown=factor,
                network_speedup=variant.clocks.network_speedup,
                gains_by_size=gains,
            )
        )
    return samples


@dataclass(frozen=True)
class ContextsSample:
    """One multithreading level's operating point and derived metrics."""

    contexts: float
    sensitivity: float
    point: OperatingPoint
    limiting_per_hop: float

    @property
    def throughput(self) -> float:
        """Transactions per network cycle at the solved point."""
        return self.point.transaction_rate


def sweep_contexts(
    system: SystemModel,
    contexts: Sequence[float],
    distance: float,
) -> List[ContextsSample]:
    """Operating points across multithreading levels at a fixed distance.

    The latency-tolerance trade in one sweep: throughput rises with
    ``p`` (with diminishing returns once the network binds) while the
    Eq 16 limiting per-hop latency rises proportionally to ``s``.  Only
    the node curve's sensitivity varies with ``p``, so all levels solve
    in one batch.
    """
    levels = [float(p) for p in contexts]
    transaction = system.transaction
    sensitivities = [
        p
        * transaction.messages_per_transaction
        / transaction.critical_messages
        for p in levels
    ]
    with obs.span("sweep.contexts", levels=len(levels)):
        batch = solve_batch(
            system.node,
            system.network,
            float(distance),
            sensitivity=np.array(sensitivities),
        )
    message_size = system.network.message_size
    dims = system.network.dimensions
    return [
        ContextsSample(
            contexts=p,
            sensitivity=sensitivity,
            point=batch.point(i),
            limiting_per_hop=limiting_per_hop_latency(
                sensitivity, message_size, dims
            ),
        )
        for i, (p, sensitivity) in enumerate(zip(levels, sensitivities))
    ]


def logspace_sizes(
    start: float = 10.0, stop: float = 1e6, count: int = 25
) -> np.ndarray:
    """Logarithmically spaced machine sizes, as Figures 6-7 plot them."""
    return np.logspace(np.log10(start), np.log10(stop), count)

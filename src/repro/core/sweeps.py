"""Parameter-sweep utilities shared by the Section 4 experiments.

Each sweep returns a list of small frozen records rather than bare arrays
so that experiment drivers, benchmarks, and examples can render the same
results without re-deriving which column is which.  Conversions to numpy
arrays are provided where plotting-style consumers want columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.combined import OperatingPoint
from repro.core.metrics import GainResult
from repro.core.system import SystemModel

__all__ = [
    "DistanceSample",
    "sweep_distances",
    "GainCurve",
    "gain_curve",
    "SlowdownSample",
    "sweep_network_slowdowns",
    "ContextsSample",
    "sweep_contexts",
    "logspace_sizes",
]


@dataclass(frozen=True)
class DistanceSample:
    """Operating point solved at one average communication distance."""

    distance: float
    point: OperatingPoint


def sweep_distances(
    system: SystemModel, distances: Sequence[float]
) -> List[DistanceSample]:
    """Solve the combined model across a range of distances (Figures 4-5)."""
    return [
        DistanceSample(distance=float(d), point=system.operating_point(float(d)))
        for d in distances
    ]


@dataclass(frozen=True)
class GainCurve:
    """Expected-gain results across machine sizes for one system."""

    label: str
    results: List[GainResult]

    @property
    def sizes(self) -> np.ndarray:
        return np.array([r.processors for r in self.results])

    @property
    def gains(self) -> np.ndarray:
        return np.array([r.gain for r in self.results])

    def gain_at(self, processors: float, tolerance: float = 1e-6) -> float:
        """Gain at an exactly-swept machine size."""
        for result in self.results:
            if abs(result.processors - processors) <= tolerance * processors:
                return result.gain
        raise KeyError(f"machine size {processors!r} was not swept")


def gain_curve(
    system: SystemModel,
    sizes: Sequence[float],
    label: str = "",
    ideal_distance: float = 1.0,
) -> GainCurve:
    """Expected gain vs machine size (the Figure 7 sweep)."""
    results = [
        system.expected_gain(float(n), ideal_distance=ideal_distance) for n in sizes
    ]
    return GainCurve(label=label, results=results)


@dataclass(frozen=True)
class SlowdownSample:
    """Expected gains at one relative network speed (one Table 1 row)."""

    slowdown: float
    network_speedup: float
    gains_by_size: dict


def sweep_network_slowdowns(
    system: SystemModel,
    slowdowns: Sequence[float],
    sizes: Sequence[float],
    ideal_distance: float = 1.0,
) -> List[SlowdownSample]:
    """Expected gain vs relative network speed (the Table 1 sweep).

    ``slowdowns`` are factors applied to the system's baseline network
    clock: 1.0 reproduces the base architecture, 2.0 halves the network
    speed, and so on.
    """
    samples = []
    for factor in slowdowns:
        slowed = system.with_network_slowdown(float(factor))
        gains = {
            float(n): slowed.expected_gain(
                float(n), ideal_distance=ideal_distance
            ).gain
            for n in sizes
        }
        samples.append(
            SlowdownSample(
                slowdown=float(factor),
                network_speedup=slowed.clocks.network_speedup,
                gains_by_size=gains,
            )
        )
    return samples


@dataclass(frozen=True)
class ContextsSample:
    """One multithreading level's operating point and derived metrics."""

    contexts: float
    sensitivity: float
    point: OperatingPoint
    limiting_per_hop: float

    @property
    def throughput(self) -> float:
        """Transactions per network cycle at the solved point."""
        return self.point.transaction_rate


def sweep_contexts(
    system: SystemModel,
    contexts: Sequence[float],
    distance: float,
) -> List[ContextsSample]:
    """Operating points across multithreading levels at a fixed distance.

    The latency-tolerance trade in one sweep: throughput rises with
    ``p`` (with diminishing returns once the network binds) while the
    Eq 16 limiting per-hop latency rises proportionally to ``s``.
    """
    samples = []
    for p in contexts:
        variant = system.with_contexts(float(p))
        samples.append(
            ContextsSample(
                contexts=float(p),
                sensitivity=variant.latency_sensitivity,
                point=variant.operating_point(distance),
                limiting_per_hop=variant.limiting_per_hop_latency(),
            )
        )
    return samples


def logspace_sizes(
    start: float = 10.0, stop: float = 1e6, count: int = 25
) -> np.ndarray:
    """Logarithmically spaced machine sizes, as Figures 6-7 plot them."""
    return np.logspace(np.log10(start), np.log10(stop), count)

"""Persistent warm worker pool: pickle the heavy payload once, not per task.

The three parallel fan-out sites in this repository — multi-seed
replication (:mod:`repro.sim.replicate`), restart-chain annealing
(:mod:`repro.mapping.chains`), and the experiment campaign runner
(:mod:`repro.experiments.runner`) — used to build a fresh
``ProcessPoolExecutor`` per call and ship the full ``(config, mapping,
programs)`` (or ``(graph, torus, initial)``) tuple with *every* task.
Process spawn plus per-task pickling is a fixed cost that scales with
the payload, not the work, so small parallel runs landed *below* 1x
serial (0.57x on the replication-scaling benchmark).  This module is the
fix: a pool of warm, long-lived workers that receive the heavy read-only
payload exactly once and thereafter accept tiny per-task messages (a
seed, a chain index, an experiment id).

Design
------

* **Warm workers.**  ``WorkerPool(jobs)`` starts ``jobs`` daemon
  processes on first use and keeps them alive across calls; the
  process-global :func:`get_pool` hands every call site the same pool,
  so interpreter start and ``import numpy`` are paid once per process
  lifetime, not once per ``run_replications`` call.
* **Broadcast once.**  :meth:`WorkerPool.broadcast` registers a
  read-only payload under a string key.  With the ``fork`` start method
  the payload reaches workers by address-space inheritance — zero
  pickling.  On spawn platforms it is pickled once per *worker* (not per
  task), and any numpy array at or above
  :data:`SHARED_MEMORY_MIN_BYTES` travels out-of-band through
  ``multiprocessing.shared_memory``, so a 32 MiB torus distance table
  costs one copy machine-wide instead of one per task.  Re-broadcasting
  an identical payload (same objects) is a no-op, so repeated calls from
  the same campaign ship nothing.
* **Tiny tasks, chunked dispatch.**  :meth:`WorkerPool.map` runs
  ``fn(payload, item)`` for each item, dispatching contiguous chunks to
  whichever worker frees up first and reassembling results in item
  order, so callers see deterministic, jobs-invariant output.
* **Crash containment.**  A task that *raises* fails only itself: the
  exception is shipped back and re-raised in the parent, and the pool
  stays usable.  A worker that *dies* (signal, ``os._exit``) fails only
  its in-flight chunk with :class:`~repro.errors.WorkerCrashError`; the
  pool replaces the worker — with all broadcasts replayed — and later
  calls proceed.
* **Visible fallback.**  Call sites that can run serially catch
  :data:`FALLBACK_ERRORS` and call :func:`note_fallback`, which bumps
  the ``pool.fallback`` metrics counter (it lands in run manifests) and
  emits a :class:`PoolFallbackWarning` — a degraded ``--jobs`` run is
  loud, never silent.

Task functions must be module-level (they are pickled by reference) and
must treat the broadcast payload as read-only — take a ``deepcopy`` of
anything stateful, exactly as per-task pickling used to provide for
free.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import warnings
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ParameterError, PoolError, WorkerCrashError

__all__ = [
    "FALLBACK_ERRORS",
    "SHARED_MEMORY_MIN_BYTES",
    "PoolFallbackWarning",
    "WorkerPool",
    "chunk_tasks",
    "default_start_method",
    "get_pool",
    "note_fallback",
    "shutdown_global_pool",
]


def chunk_tasks(items: Sequence, size: int) -> List[Tuple]:
    """Split ``items`` into contiguous, order-preserving chunks.

    Every chunk holds at most ``size`` items; the final chunk carries
    the remainder.  This is the batching policy call sites share when
    packing work units (e.g. replication seeds) into per-worker tasks:
    contiguity keeps results reassemblable by simple concatenation.
    """
    if size < 1:
        raise ParameterError(f"chunk size must be >= 1; got {size}")
    return [tuple(items[i:i + size]) for i in range(0, len(items), size)]

#: Exceptions that mean "no usable pool here".  Call sites with a serial
#: path catch exactly this tuple, call :func:`note_fallback`, and rerun
#: serially.  Exceptions raised *by task functions* propagate unchanged
#: (unless they happen to be one of these, matching the behaviour of the
#: executor-based code this pool replaced).
FALLBACK_ERRORS = (ImportError, NotImplementedError, OSError, PoolError)

#: numpy arrays at or above this many bytes ride
#: ``multiprocessing.shared_memory`` instead of the pickle stream when
#: broadcasting on a spawn-start-method pool.
SHARED_MEMORY_MIN_BYTES = 1 << 16


class PoolFallbackWarning(RuntimeWarning):
    """A ``--jobs`` run degraded to the serial path."""


def note_fallback(site: str, error: BaseException) -> None:
    """Record a pool-to-serial fallback loudly.

    Bumps the ``pool.fallback`` counter (the metrics registry is always
    live, so the count reaches run manifests even with tracing off) and
    warns, so a campaign that silently lost its parallelism is visible
    both interactively and in provenance records.
    """
    obs.REGISTRY.counter(
        "pool.fallback", help="parallel runs degraded to the serial path"
    ).inc()
    warnings.warn(
        f"worker pool unavailable at {site}; running serially "
        f"({type(error).__name__}: {error})",
        PoolFallbackWarning,
        stacklevel=3,
    )


def default_start_method() -> str:
    """``fork`` where the platform offers it (zero-copy broadcasts),
    else ``spawn``."""
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


# ----------------------------------------------------------------------
# Shared-memory transport for numpy payload arrays (spawn platforms).
# ----------------------------------------------------------------------


class _SharedArray:
    """Pickled placeholder for an ndarray parked in shared memory."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state


def _export_arrays(value: Any, segments: List) -> Any:
    """Copy large ndarrays (in plain containers) into shared memory.

    Returns ``value`` with every qualifying array replaced by a
    :class:`_SharedArray` placeholder; created segments are appended to
    ``segments`` (the parent owns their lifetime and unlinks them when
    the broadcast is replaced or the pool closes).  Only tuples, lists,
    and dicts are traversed — arrays buried inside arbitrary objects
    travel the ordinary pickle stream.
    """
    if (
        isinstance(value, np.ndarray)
        and value.nbytes >= SHARED_MEMORY_MIN_BYTES
    ):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=value.nbytes)
        mirror = np.ndarray(value.shape, dtype=value.dtype, buffer=segment.buf)
        mirror[...] = value
        segments.append(segment)
        return _SharedArray(segment.name, value.shape, value.dtype.str)
    if isinstance(value, tuple):
        return tuple(_export_arrays(item, segments) for item in value)
    if isinstance(value, list):
        return [_export_arrays(item, segments) for item in value]
    if isinstance(value, dict):
        return {
            key: _export_arrays(item, segments) for key, item in value.items()
        }
    return value


def _import_arrays(value: Any, attached: List) -> Any:
    """Worker-side inverse of :func:`_export_arrays`.

    Placeholders become read-only ndarray views over the attached
    segment; the segment handles are appended to ``attached`` so the
    worker can keep the mapping alive for exactly as long as it holds
    the payload (and close it when the broadcast is replaced).
    """
    if isinstance(value, _SharedArray):
        from multiprocessing import shared_memory

        # Attaching re-registers the name with the resource tracker;
        # pool workers share the parent's tracker process, whose cache
        # is a set, so the duplicate registration dedupes and the
        # parent's single unlink settles the books.
        segment = shared_memory.SharedMemory(name=value.name)
        attached.append(segment)
        array = np.ndarray(
            value.shape, dtype=np.dtype(value.dtype), buffer=segment.buf
        )
        array.flags.writeable = False
        return array
    if isinstance(value, tuple):
        return tuple(_import_arrays(item, attached) for item in value)
    if isinstance(value, list):
        return [_import_arrays(item, attached) for item in value]
    if isinstance(value, dict):
        return {
            key: _import_arrays(item, attached)
            for key, item in value.items()
        }
    return value


# ----------------------------------------------------------------------
# Worker process body.
# ----------------------------------------------------------------------


def _portable_error(error: BaseException) -> BaseException:
    """The error itself if it pickles, else a :class:`PoolError` stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return PoolError(
            f"task raised an unpicklable {type(error).__name__}: {error!r}"
        )


def _worker_main(channel, staged) -> None:
    """Serve broadcasts and task chunks until told to stop.

    ``staged`` carries the payloads registered before this worker
    started: on fork pools it arrives by address-space inheritance
    (never pickled); on spawn pools it is ``None`` and the parent sends
    ``broadcast`` messages instead.  Message order on the channel is
    FIFO, so a broadcast always lands before any chunk that needs it.
    """
    contexts: Dict[str, Tuple[int, Any, List]] = {}
    if staged:
        for key, (token, payload) in staged.items():
            contexts[key] = (token, payload, [])
    while True:
        try:
            message = channel.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "ping":
            channel.send(("pong",))
            continue
        if kind == "broadcast":
            _, key, token, wire = message
            previous = contexts.pop(key, None)
            if previous is not None:
                for segment in previous[2]:
                    try:
                        segment.close()
                    except Exception:
                        pass
            attached: List = []
            contexts[key] = (token, _import_arrays(wire, attached), attached)
            continue
        # ("chunk", chunk_id, fn, key, token, [(index, item), ...])
        _, chunk_id, fn, key, token, entries = message
        if key is None:
            payload = None
        else:
            held = contexts.get(key)
            if held is None or held[0] != token:
                channel.send(("chunk-stale", chunk_id))
                continue
            payload = held[1]
        outcomes = []
        for index, item in entries:
            try:
                outcomes.append((index, True, fn(payload, item)))
            except BaseException as error:  # tasks may raise anything
                outcomes.append((index, False, _portable_error(error)))
        try:
            channel.send(("chunk-done", chunk_id, outcomes))
        except Exception as error:
            # A result that cannot pickle must fail the chunk, not the
            # worker loop.
            channel.send(
                (
                    "chunk-done",
                    chunk_id,
                    [
                        (
                            index,
                            False,
                            PoolError(
                                f"task result could not be shipped back: "
                                f"{type(error).__name__}: {error}"
                            ),
                        )
                        for index, _ in entries
                    ],
                )
            )


# ----------------------------------------------------------------------
# The pool.
# ----------------------------------------------------------------------


class _Worker:
    __slots__ = ("process", "channel")

    def __init__(self, process, channel):
        self.process = process
        self.channel = channel


class _Broadcast:
    """Parent-side record of one broadcast payload."""

    __slots__ = ("token", "raw", "wire")

    def __init__(self, token: int, raw: Any, wire: Any):
        self.token = token
        self.raw = raw
        self.wire = wire


def _same_payload(held: Any, offered: Any) -> bool:
    """Identity-based "already broadcast" check.

    True when the offered payload is the held object, or a same-length
    tuple of identical objects — the shape repeated campaign calls
    produce when they pass the same config/mapping/programs objects
    again.  Equal-but-distinct objects rebroadcast; correctness never
    depends on skipping.
    """
    if held is offered:
        return True
    return (
        isinstance(held, tuple)
        and isinstance(offered, tuple)
        and len(held) == len(offered)
        and all(a is b for a, b in zip(held, offered))
    )


_UNSET = object()


class WorkerPool:
    """A persistent pool of warm worker processes.

    Workers start lazily on first use (or via :meth:`warm`) and survive
    across calls until :meth:`close`.  See the module docstring for the
    broadcast/task split and the crash-containment contract.
    """

    def __init__(self, jobs: int, start_method: Optional[str] = None):
        if jobs < 1:
            raise ParameterError(f"jobs must be >= 1, got {jobs!r}")
        method = start_method or default_start_method()
        if method not in multiprocessing.get_all_start_methods():
            raise PoolError(
                f"start method {method!r} unavailable on this platform "
                f"(have: {multiprocessing.get_all_start_methods()})"
            )
        self._jobs = int(jobs)
        self._method = method
        self._context = multiprocessing.get_context(method)
        self._workers: List[_Worker] = []
        self._broadcasts: Dict[str, _Broadcast] = {}
        self._segments: Dict[str, List] = {}
        self._next_token = 1
        self._lock = threading.RLock()
        self._owner_pid = os.getpid()
        self._started = False
        self._closed = False

    # -- introspection --------------------------------------------------

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def start_method(self) -> str:
        return self._method

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def started(self) -> bool:
        return self._started

    @property
    def uses_shared_memory(self) -> bool:
        """Whether broadcasts move numpy arrays through shared memory
        (spawn-family start methods; fork inherits instead)."""
        return self._method != "fork"

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- lifecycle ------------------------------------------------------

    def _check_usable(self) -> None:
        if self._closed:
            raise PoolError("pool is closed")
        if os.getpid() != self._owner_pid:
            raise PoolError(
                "pool belongs to another process (inherited across fork?)"
            )
        if multiprocessing.current_process().daemon:
            raise PoolError("nested pools inside a pool worker")

    def _ensure_started(self) -> None:
        self._check_usable()
        if self._started:
            return
        while len(self._workers) < self._jobs:
            self._spawn_worker()
        self._started = True

    def _spawn_worker(self) -> _Worker:
        parent_channel, child_channel = self._context.Pipe(duplex=True)
        if self._method == "fork":
            # Fork passes args by inheritance — the staged payloads are
            # never pickled.
            staged = {
                key: (record.token, record.raw)
                for key, record in self._broadcasts.items()
            }
        else:
            staged = None
        process = self._context.Process(
            target=_worker_main,
            args=(child_channel, staged),
            name="repro-pool-worker",
            daemon=True,
        )
        process.start()
        child_channel.close()
        worker = _Worker(process, parent_channel)
        if staged is None:
            for key, record in self._broadcasts.items():
                parent_channel.send(
                    ("broadcast", key, record.token, record.wire)
                )
        self._workers.append(worker)
        obs.REGISTRY.counter(
            "pool.workers_started", help="pool worker processes spawned"
        ).inc()
        return worker

    def resize(self, jobs: int) -> None:
        """Grow the pool to ``jobs`` workers (never shrinks)."""
        with self._lock:
            self._check_usable()
            if jobs <= self._jobs:
                return
            self._jobs = int(jobs)
            if self._started:
                while len(self._workers) < self._jobs:
                    self._spawn_worker()

    def warm(self) -> None:
        """Start every worker now and wait for each to answer a ping.

        Pays process start (and, on spawn, interpreter + import cost)
        here instead of inside the first measured :meth:`map`.
        """
        with self._lock:
            self._ensure_started()
            for worker in self._workers:
                worker.channel.send(("ping",))
            for worker in self._workers:
                try:
                    reply = worker.channel.recv()
                except (EOFError, OSError) as error:
                    raise PoolError(
                        f"worker died during warm-up: {error!r}"
                    ) from error
                if reply != ("pong",):
                    raise PoolError(f"unexpected warm-up reply: {reply!r}")

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers and release shared-memory segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if os.getpid() != self._owner_pid:
                # Inherited copy in a forked child: the workers and
                # segments belong to the parent; touch nothing.
                self._workers = []
                self._segments = {}
                return
            for worker in self._workers:
                try:
                    worker.channel.send(("stop",))
                except (OSError, ValueError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(1.0)
                try:
                    worker.channel.close()
                except OSError:
                    pass
            self._workers = []
            self._release_segments()

    def _release_segments(self, key: Optional[str] = None) -> None:
        keys = [key] if key is not None else list(self._segments)
        for name in keys:
            for segment in self._segments.pop(name, ()):
                for operation in (segment.close, segment.unlink):
                    try:
                        operation()
                    except Exception:
                        pass

    # -- broadcasts -----------------------------------------------------

    def broadcast(self, key: str, payload: Any) -> int:
        """Register (or refresh) the read-only payload under ``key``.

        Re-offering the identical payload (same objects) is free;
        anything else replaces the previous payload on every worker.
        Returns the broadcast token (diagnostic only).
        """
        with self._lock:
            self._check_usable()
            held = self._broadcasts.get(key)
            if held is not None and _same_payload(held.raw, payload):
                return held.token
            token = self._next_token
            self._next_token += 1
            if self.uses_shared_memory:
                segments: List = []
                wire = _export_arrays(payload, segments)
                self._release_segments(key)
                if segments:
                    self._segments[key] = segments
            else:
                wire = payload
            self._broadcasts[key] = _Broadcast(token, payload, wire)
            if self._started:
                for worker in self._workers:
                    worker.channel.send(("broadcast", key, token, wire))
            obs.REGISTRY.counter(
                "pool.broadcasts", help="pool payload broadcasts shipped"
            ).inc()
            return token

    # -- dispatch -------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        key: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> List[Any]:
        """Run ``fn(payload, item)`` for every item; results in item order.

        ``key`` names the broadcast payload handed to ``fn`` (``None``
        for payload-free tasks).  Items are dispatched in contiguous
        chunks to whichever worker frees up first; a raising task makes
        this call raise that exception (after in-flight chunks drain)
        while the pool itself stays usable.
        """
        with self._lock:
            self._ensure_started()
            items = list(items)
            if not items:
                return []
            if key is None:
                token = None
            else:
                record = self._broadcasts.get(key)
                if record is None:
                    raise PoolError(f"no broadcast registered under {key!r}")
                token = record.token
            if chunk_size is None:
                chunk_size = max(1, len(items) // (len(self._workers) * 4))
            pending = deque()
            for chunk_id, start in enumerate(range(0, len(items), chunk_size)):
                entries = [
                    (index, items[index])
                    for index in range(
                        start, min(start + chunk_size, len(items))
                    )
                ]
                pending.append((chunk_id, entries))
            results: List[Any] = [_UNSET] * len(items)
            failures: List[Tuple[int, BaseException]] = []
            idle = list(self._workers)
            inflight: Dict[int, Tuple[_Worker, List]] = {}

            obs.REGISTRY.counter(
                "pool.tasks", help="tasks dispatched through the worker pool"
            ).inc(len(items))

            while pending or inflight:
                while pending and idle and not failures:
                    worker = idle.pop()
                    chunk_id, entries = pending.popleft()
                    worker.channel.send(
                        ("chunk", chunk_id, fn, key, token, entries)
                    )
                    inflight[chunk_id] = (worker, entries)
                if not inflight:
                    break
                self._collect(inflight, idle, results, failures)

            if failures:
                failures.sort(key=lambda pair: pair[0])
                raise failures[0][1]
            return results

    def _collect(self, inflight, idle, results, failures) -> None:
        """Block until >= 1 in-flight chunk resolves (result or crash)."""
        by_channel = {
            worker.channel: chunk_id
            for chunk_id, (worker, _) in inflight.items()
        }
        by_sentinel = {
            worker.process.sentinel: chunk_id
            for chunk_id, (worker, _) in inflight.items()
        }
        ready = mp_connection.wait(
            list(by_channel) + list(by_sentinel)
        )
        resolved = set()
        for handle in ready:
            chunk_id = by_channel.get(handle, by_sentinel.get(handle))
            if chunk_id in resolved or chunk_id not in inflight:
                continue
            worker, entries = inflight[chunk_id]
            message = None
            if worker.channel.poll():
                try:
                    message = worker.channel.recv()
                except (EOFError, OSError):
                    message = None
            elif not worker.process.is_alive():
                message = None  # died without a result
            else:
                continue  # sentinel raced a still-working process; wait more
            resolved.add(chunk_id)
            del inflight[chunk_id]
            if message is None:
                self._replace_crashed(worker, entries, failures, idle)
                continue
            kind = message[0]
            if kind == "chunk-done":
                for index, ok, value in message[2]:
                    if ok:
                        results[index] = value
                    else:
                        failures.append((index, value))
                idle.append(worker)
            elif kind == "chunk-stale":
                failures.extend(
                    (
                        index,
                        PoolError(
                            "worker lost the broadcast payload mid-run"
                        ),
                    )
                    for index, _ in entries
                )
                idle.append(worker)
            else:
                failures.extend(
                    (
                        index,
                        PoolError(f"unexpected worker message {kind!r}"),
                    )
                    for index, _ in entries
                )
                idle.append(worker)

    def _replace_crashed(self, worker, entries, failures, idle) -> None:
        """Fail the dead worker's chunk and restore the pool's size."""
        code = worker.process.exitcode
        failures.extend(
            (
                index,
                WorkerCrashError(
                    f"pool worker died mid-task (exit code {code}); "
                    f"the pool respawned a replacement"
                ),
            )
            for index, _ in entries
        )
        try:
            worker.channel.close()
        except OSError:
            pass
        worker.process.join(0.1)
        if worker in self._workers:
            self._workers.remove(worker)
        obs.REGISTRY.counter(
            "pool.worker_crashes", help="pool workers that died mid-task"
        ).inc()
        idle.append(self._spawn_worker())


# ----------------------------------------------------------------------
# The process-global pool.
# ----------------------------------------------------------------------

_GLOBAL_POOL: Optional[WorkerPool] = None


def get_pool(jobs: int, start_method: Optional[str] = None) -> WorkerPool:
    """The process-global warm pool, grown to at least ``jobs`` workers.

    Every ``--jobs N`` site shares this pool, so workers (and their
    broadcast payloads) stay warm across calls.  A mismatched explicit
    ``start_method`` closes the old pool and starts a fresh one; a pool
    inherited from a parent process is abandoned, never touched.
    """
    global _GLOBAL_POOL
    method = start_method or default_start_method()
    pool = _GLOBAL_POOL
    if (
        pool is not None
        and not pool.closed
        and pool._owner_pid == os.getpid()
        and pool.start_method == method
    ):
        if pool.jobs < jobs:
            pool.resize(jobs)
        return pool
    if pool is not None and not pool.closed and pool._owner_pid == os.getpid():
        pool.close()
    pool = WorkerPool(jobs, start_method=method)
    _GLOBAL_POOL = pool
    return pool


def shutdown_global_pool() -> None:
    """Close the process-global pool (no-op when none is live)."""
    global _GLOBAL_POOL
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.close()
        _GLOBAL_POOL = None


atexit.register(shutdown_global_pool)

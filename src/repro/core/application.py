"""The application model (Section 2.1 of the paper).

The application model describes the behavior of one processor running its
share of an application as a relationship between the average
inter-transaction issue time ``t_t`` and the average transaction latency
``T_t`` — the *application transaction curve*.  Three quantities
characterize it:

``T_r``
    computation grain: average useful work (in processor cycles) a thread
    performs between successive communication transactions;
``p``
    degree of hardware multithreading — more generally, the average number
    of outstanding communication transactions the processor sustains;
``T_s``
    context-switch time in processor cycles (11 cycles on Sparcle).

The paper derives (Eqs 1-6) that the curve is linear,

    ``T_t = p * t_t - T_r``        (Eq 6; Eq 2 is the ``p = 1`` case)

subject to a floor on the issue time when latencies are small enough for
the processor to fully mask them (Eq 4):

    ``t_t >= T_r + T_s``

Masking is possible exactly while (Eq 3)

    ``T_t <= p * T_s + (p - 1) * T_r``

i.e. while a transaction completes before its issuing thread's turn comes
around again.  Following the paper (which observed no experiment near the
floor and drops Eq 4 from the analysis), the floor is *reported* by this
class but not folded into :meth:`issue_time`; callers that want the
saturating behavior use :meth:`issue_time_with_floor`.

All times in this module are **processor cycles**; conversion to the
network time base happens when an :class:`ApplicationModel` is composed
into a node model (:mod:`repro.core.node`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError

__all__ = ["ApplicationModel"]


@dataclass(frozen=True)
class ApplicationModel:
    """Three-parameter application/processor model of Section 2.1.

    Parameters
    ----------
    grain:
        Computation grain ``T_r`` in processor cycles; must be positive.
    contexts:
        Degree of multithreading ``p`` (average number of outstanding
        transactions); must be >= 1.  Non-integer values are allowed and
        model mechanisms such as prefetching that sustain a fractional
        average number of outstanding transactions.
    switch_time:
        Context-switch time ``T_s`` in processor cycles; must be >= 0.
    """

    grain: float
    contexts: float = 1.0
    switch_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.grain > 0:
            raise ParameterError(f"grain T_r must be positive, got {self.grain!r}")
        if not self.contexts >= 1:
            raise ParameterError(
                f"contexts p must be >= 1, got {self.contexts!r}"
            )
        if self.switch_time < 0:
            raise ParameterError(
                f"switch_time T_s must be >= 0, got {self.switch_time!r}"
            )

    # ------------------------------------------------------------------
    # The application transaction curve (Eqs 2, 5, 6).
    # ------------------------------------------------------------------

    @property
    def curve_slope(self) -> float:
        """Slope ``p`` of the ``T_t``-vs-``t_t`` line (Eq 6).

        Larger slopes mean *less* sensitivity of the application to
        transaction-latency increases: an extra ``x`` cycles of latency
        costs only ``x / p`` cycles of issue time.
        """
        return self.contexts

    def issue_time(self, transaction_latency: float) -> float:
        """Average inter-transaction issue time ``t_t`` for a given ``T_t``.

        Implements Eq 5, ``t_t = (T_t + T_r) / p``, without the
        latency-masking floor (see module docstring).
        """
        return (transaction_latency + self.grain) / self.contexts

    def transaction_latency(self, issue_time: float) -> float:
        """Invert the curve: ``T_t = p * t_t - T_r`` (Eq 6)."""
        return self.contexts * issue_time - self.grain

    # ------------------------------------------------------------------
    # Latency masking (Eqs 3-4).
    # ------------------------------------------------------------------

    @property
    def min_issue_time(self) -> float:
        """Floor on the issue time when latency is fully masked (Eq 4)."""
        return self.grain + self.switch_time

    @property
    def masking_threshold(self) -> float:
        """Largest ``T_t`` the processor can fully mask (Eq 3).

        For a single-context processor this is zero: any latency at all
        leaves the processor stalled.
        """
        return self.contexts * self.switch_time + (self.contexts - 1) * self.grain

    def masks_latency(self, transaction_latency: float) -> bool:
        """Whether a transaction latency is fully hidden by multithreading."""
        return transaction_latency <= self.masking_threshold

    def issue_time_with_floor(self, transaction_latency: float) -> float:
        """Issue time including the latency-masking floor of Eq 4."""
        return max(self.issue_time(transaction_latency), self.min_issue_time)

    # ------------------------------------------------------------------
    # Derived scalings used by the experiments.
    # ------------------------------------------------------------------

    def with_contexts(self, contexts: float) -> "ApplicationModel":
        """Same application run with a different degree of multithreading."""
        return replace(self, contexts=contexts)

    def with_grain_scaled(self, factor: float) -> "ApplicationModel":
        """Same application with its computation grain scaled by ``factor``.

        Used by Figure 6's dashed curve ("artificially increasing the
        computational grain size by a factor of ten").
        """
        if not factor > 0:
            raise ParameterError(f"grain factor must be positive, got {factor!r}")
        return replace(self, grain=self.grain * factor)

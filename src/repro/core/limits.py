"""Asymptotic network behavior under feedback (Section 4.1, Eq 16).

The paper's first analytical result: with a *finite* latency sensitivity
``s`` (i.e. a bounded number of outstanding transactions per processor),
the feedback between application and network keeps channel utilization
below saturation no matter how large the machine grows.  As the average
communication distance ``d`` increases, the average per-hop latency
approaches the constant

    ``T_h -> s * B / (2 * n)``        (Eq 16)

(or 1, if ``s * B / (2n) < 1`` — the network is then never stressed).
Intuition: in the communication-bound regime ``r_m ~ s / T_m`` and
``T_m ~ d * T_h``, so channel utilization ``rho = r_m * B * d / (2n)``
tends to ``s * B / (2 n T_h)``; the only self-consistent limit pushes
``rho -> 1`` with ``T_h`` pinned at Eq 16's value.

Because ``T_h`` is asymptotically constant, **communication latency is
linear in communication distance**, which is what bounds locality gains
to (at most) the distance-reduction factor.  This module provides the
limit itself and helpers to measure how quickly machines approach it
(Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.combined import OperatingPoint, solve, solve_batch
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.errors import ParameterError
from repro.topology.distance import random_traffic_distance_for_size

__all__ = [
    "limiting_per_hop_latency",
    "limiting_per_hop_latency_for",
    "PerHopSample",
    "per_hop_curve",
    "size_to_reach_fraction",
    "bandwidth_bound_issue_time",
    "bandwidth_gain_ceiling",
]


def limiting_per_hop_latency(
    sensitivity: float, message_size: float, dimensions: int
) -> float:
    """Eq 16: the asymptotic per-hop latency ``max(1, s * B / (2 n))``.

    With the paper's validated parameters (``s = 3.26``, ``B = 12``,
    ``n = 2``) this is 9.78 network cycles — the "approximately 9.8"
    quoted for Figure 6.
    """
    if not sensitivity > 0:
        raise ParameterError(f"sensitivity s must be positive, got {sensitivity!r}")
    if not message_size > 0:
        raise ParameterError(
            f"message_size B must be positive, got {message_size!r}"
        )
    if dimensions < 1:
        raise ParameterError(f"dimensions n must be >= 1, got {dimensions!r}")
    return max(1.0, sensitivity * message_size / (2.0 * dimensions))


def limiting_per_hop_latency_for(
    node: NodeModel, network: TorusNetworkModel
) -> float:
    """Eq 16 evaluated from composed model objects."""
    return limiting_per_hop_latency(
        node.sensitivity, network.message_size, network.dimensions
    )


@dataclass(frozen=True)
class PerHopSample:
    """One point of a Figure 6-style curve."""

    processors: float
    distance: float
    point: OperatingPoint

    @property
    def per_hop_latency(self) -> float:
        return self.point.per_hop_latency


def per_hop_curve(
    node: NodeModel,
    network: TorusNetworkModel,
    sizes: Sequence[float],
) -> list:
    """``T_h`` vs machine size under random mappings (Figure 6).

    Each machine size ``N`` maps to the Eq 17 random-traffic distance for
    the continuous radix ``N**(1/n)``; the combined model is solved there
    and the per-hop latency read off the operating point.
    """
    size_values = [float(n) for n in sizes]
    distances = [
        random_traffic_distance_for_size(n, network.dimensions)
        for n in size_values
    ]
    if not distances:
        return []
    batch = solve_batch(node, network, distances)
    return [
        PerHopSample(processors=n, distance=d, point=batch.point(i))
        for i, (n, d) in enumerate(zip(size_values, distances))
    ]


def size_to_reach_fraction(
    node: NodeModel,
    network: TorusNetworkModel,
    fraction: float,
    max_processors: float = 1e9,
) -> float:
    """Smallest machine size whose ``T_h`` reaches ``fraction`` of Eq 16.

    Used to check the paper's claim that the small-grain application
    reaches over 80 % of the limiting value "with a few thousand
    processors".  Searches by bisection on ``log N``; raises
    :class:`ParameterError` if the fraction is not reached by
    ``max_processors``.
    """
    if not 0 < fraction < 1:
        raise ParameterError(
            f"fraction must lie strictly in (0, 1), got {fraction!r}"
        )
    limit = limiting_per_hop_latency_for(node, network)
    target = fraction * limit

    def per_hop(processors: float) -> float:
        distance = random_traffic_distance_for_size(
            processors, network.dimensions
        )
        return solve(node, network, distance).per_hop_latency

    low, high = 2.0, float(max_processors)
    if per_hop(high) < target:
        raise ParameterError(
            f"per-hop latency does not reach {fraction:.0%} of its limit "
            f"by N = {max_processors:g}"
        )
    if per_hop(low) >= target:
        return low
    for _ in range(200):
        mid = (low * high) ** 0.5
        if per_hop(mid) >= target:
            high = mid
        else:
            low = mid
        if high / low < 1.0 + 1e-9:
            break
    return high


def bandwidth_bound_issue_time(
    node: NodeModel, network: TorusNetworkModel, distance: float
) -> float:
    """Asymptotic issue-time floor from network bandwidth, network cycles.

    In the deep communication-bound regime the feedback drives channel
    utilization toward 1, pinning the injection rate at the Eq 10
    capacity ``r_m = 2 / (B * k_d)`` — *independently of the latency
    sensitivity* — so the issue time approaches

        ``t_t >= g * B * k_d / 2``

    This is why the Figure 7 curves for different context counts
    converge: once the randomly-mapped application saturates the mesh,
    extra outstanding transactions cannot buy throughput, only latency.
    """
    k_d = network.per_dimension_distance(distance)
    return (
        node.messages_per_transaction * network.message_size * k_d / 2.0
    )


def bandwidth_gain_ceiling(
    network: TorusNetworkModel, processors: float, ideal_distance: float = 1.0
) -> float:
    """Upper bound on the locality gain from bandwidth alone.

    The randomly-mapped application can never issue faster than the
    bandwidth bound at the Eq 17 distance, while the ideally-mapped one
    is at worst bound at ``ideal_distance`` — their ratio bounds the
    gain no matter how small the computation grain:

        ``gain <= d_random / d_ideal``  (k_d ratio)

    which is the "linear in the factor by which communication distance
    is reduced" statement of Section 4.1 in bandwidth form.
    """
    random_distance = random_traffic_distance_for_size(
        processors, network.dimensions
    )
    if not ideal_distance > 0:
        raise ParameterError(
            f"ideal_distance must be positive, got {ideal_distance!r}"
        )
    return random_distance / ideal_distance

"""Shared-bus network model — the non-scalable baseline.

Section 1's taxonomy starts here: "single-level shared-bus architectures
are limited by bus bandwidth and are unable to support reasonable
communication loads from more than a few dozen processors."  This model
quantifies that claim within the same operating-point framework: a
single bus serves every node's messages, so the aggregate load is
``N * r_m`` and the bus saturates when ``N * r_m * B`` approaches 1 —
per-node bandwidth *shrinks* as the machine grows, unlike the torus
(constant) or the butterfly (constant, at log-latency cost).

Latency is M/D/1 queueing at the bus (service time ``B``) plus the
transfer itself:

    ``rho = N * r_m * B``
    ``T_m = 1 + rho * B / (2 * (1 - rho)) + B``

Like the indirect model, the class implements the torus model's
operating-point protocol so :func:`repro.core.combined.solve` works
unchanged — here the **node count ``N`` plays the role of the distance
argument** (a bus has no distances; what grows with the machine is the
load on the shared medium).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError, SaturationError

__all__ = ["SharedBusModel"]


@dataclass(frozen=True)
class SharedBusModel:
    """A single split-transaction bus shared by all processors.

    Parameters
    ----------
    message_size:
        ``B`` in flits (bus cycles per message); must be positive.
    arbitration_cycles:
        Fixed cycles to win arbitration on an idle bus.
    """

    message_size: float = 12.0
    arbitration_cycles: float = 1.0
    #: Interface parity with the torus model.
    node_channel_contention: bool = False

    def __post_init__(self) -> None:
        if not self.message_size > 0:
            raise ParameterError(
                f"message_size B must be positive, got {self.message_size!r}"
            )
        if self.arbitration_cycles < 0:
            raise ParameterError(
                f"arbitration_cycles must be >= 0, "
                f"got {self.arbitration_cycles!r}"
            )

    # ------------------------------------------------------------------
    # Operating-point protocol ("distance" = node count N).
    # ------------------------------------------------------------------

    def _check_nodes(self, nodes: float) -> float:
        if not nodes >= 1:
            raise ParameterError(f"node count must be >= 1, got {nodes!r}")
        return nodes

    def channel_utilization(self, message_rate: float, nodes: float) -> float:
        """Bus utilization: every node's traffic shares one medium."""
        self._check_nodes(nodes)
        if message_rate < 0:
            raise ParameterError(
                f"message rate r_m must be >= 0, got {message_rate!r}"
            )
        return nodes * message_rate * self.message_size

    def saturation_rate(self, nodes: float) -> float:
        """Per-node rate at which the bus saturates — falls as 1/N."""
        self._check_nodes(nodes)
        return 1.0 / (nodes * self.message_size)

    def max_rate(self, nodes: float) -> float:
        return self.saturation_rate(nodes)

    def contention_geometry(self, nodes: float) -> float:
        """Nonzero: the bus always has a load-dependent term."""
        self._check_nodes(nodes)
        return 1.0

    def per_hop_latency(self, message_rate: float, nodes: float) -> float:
        """Arbitration plus M/D/1 waiting for the bus."""
        rho = self.channel_utilization(message_rate, nodes)
        if rho >= 1.0:
            raise SaturationError(
                f"bus utilization rho = {rho:.4f} >= 1 at "
                f"r_m = {message_rate:.6g}, N = {nodes:g}"
            )
        waiting = rho * self.message_size / (2.0 * (1.0 - rho))
        return self.arbitration_cycles + waiting

    def node_channel_delay(self, message_rate: float) -> float:
        return 0.0

    def message_latency(self, message_rate: float, nodes: float) -> float:
        """``T_m = arbitration + waiting + B``."""
        return self.per_hop_latency(message_rate, nodes) + self.message_size

    def zero_load_latency(self, nodes: float) -> float:
        """An uncontended bus: arbitration + transfer.

        The UCL ideal — and the reason buses are beloved at small N.
        """
        self._check_nodes(nodes)
        return self.arbitration_cycles + self.message_size

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def describe(self, message_rate: float, nodes: float) -> dict:
        return {
            "nodes": nodes,
            "rho": self.channel_utilization(message_rate, nodes),
            "T_m": self.message_latency(message_rate, nodes),
            "saturation_rate": self.saturation_rate(nodes),
        }

"""Four-component decomposition of the issue time (Section 4.2, Eq 18).

Expanding the combined model's inter-transaction issue time,

    ``t_t = ( c * n * k_d * T_h  +  c * B  +  T_f  +  T_r ) / p``

identifies four contributions (Figure 8):

* **variable message overhead** ``c * d * T_h / p`` — the only term that
  grows with communication distance, hence the only one locality can
  shrink;
* **fixed message overhead** ``c * B / p`` — flit serialization,
  distance-independent;
* **fixed transaction overhead** ``T_f / p`` — protocol/controller work;
* **CPU time** ``T_r / p`` — the useful work itself.

Our network model additionally carries the node-channel contention delay
(the paper's second extension), reported here as a fifth, separately
labeled component so the four paper terms stay exactly Eq 18's.

All components are reported in **processor cycles**, the natural base for
"where does the processor's time go" questions; their sum equals the
operating point's issue time converted to processor cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.application import ApplicationModel
from repro.core.combined import OperatingPoint
from repro.core.network import TorusNetworkModel
from repro.core.transaction import TransactionModel
from repro.units import ClockDomain

__all__ = ["IssueTimeBreakdown", "decompose"]


@dataclass(frozen=True)
class IssueTimeBreakdown:
    """Eq 18 components of ``t_t``, in processor cycles."""

    variable_message: float
    fixed_message: float
    fixed_transaction: float
    cpu: float
    node_channel: float

    @property
    def total(self) -> float:
        """Total issue time ``t_t`` in processor cycles."""
        return (
            self.variable_message
            + self.fixed_message
            + self.fixed_transaction
            + self.cpu
            + self.node_channel
        )

    @property
    def fixed_total(self) -> float:
        """Sum of the distance-independent components.

        Section 4.2 observes fixed transaction overhead is about
        two-thirds of this in all six validated configurations.
        """
        return self.fixed_message + self.fixed_transaction + self.cpu

    @property
    def fixed_transaction_share(self) -> float:
        """Fraction of the fixed total due to fixed transaction overhead."""
        return self.fixed_transaction / self.fixed_total

    def as_dict(self) -> Dict[str, float]:
        """Components keyed by the labels Figure 8 uses."""
        return {
            "variable message overhead": self.variable_message,
            "fixed message overhead": self.fixed_message,
            "fixed transaction overhead": self.fixed_transaction,
            "CPU cycles": self.cpu,
            "node channel contention": self.node_channel,
        }


def decompose(
    point: OperatingPoint,
    application: ApplicationModel,
    transaction: TransactionModel,
    network: TorusNetworkModel,
    clocks: ClockDomain,
) -> IssueTimeBreakdown:
    """Decompose an operating point's issue time per Eq 18.

    The contexts divisor ``p``, critical-path multiplier ``c``, and clock
    conversion are applied so that the components sum exactly to the
    point's issue time in processor cycles.
    """
    contexts = application.contexts
    critical = transaction.critical_messages
    variable_network = critical * point.distance * point.per_hop_latency / contexts
    fixed_message_network = critical * network.message_size / contexts
    node_channel_network = critical * point.node_channel_delay / contexts
    return IssueTimeBreakdown(
        variable_message=clocks.to_processor(variable_network),
        fixed_message=clocks.to_processor(fixed_message_network),
        fixed_transaction=transaction.fixed_overhead / contexts,
        cpu=application.grain / contexts,
        node_channel=clocks.to_processor(node_channel_network),
    )

"""The paper's analytical modeling framework (Section 2).

Component models — :class:`ApplicationModel`, :class:`TransactionModel`,
:class:`TorusNetworkModel` — compose into a :class:`NodeModel`, which the
combined-model solver intersects with the network model to find the
self-consistent :class:`OperatingPoint`.  :class:`SystemModel` is the
convenient all-in-one entry point.
"""

from repro.core.application import ApplicationModel
from repro.core.breakdown import IssueTimeBreakdown, decompose
from repro.core.combined import (
    BatchOperatingPoints,
    OperatingPoint,
    clear_solve_cache,
    open_loop,
    solve,
    solve_batch,
    solve_cached,
    solve_quadratic,
    solve_with_floor,
)
from repro.core.limits import (
    PerHopSample,
    limiting_per_hop_latency,
    limiting_per_hop_latency_for,
    per_hop_curve,
    size_to_reach_fraction,
)
from repro.core.metrics import (
    GainResult,
    aggregate_performance,
    expected_gain,
    expected_gain_batch,
    expected_gain_for_radix,
    performance_ratio,
    useful_work_rate,
)
from repro.core.bus import SharedBusModel
from repro.core.indirect import IndirectNetworkModel
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.sweeps import (
    ContextsSample,
    DistanceSample,
    GainCurve,
    SlowdownSample,
    gain_curve,
    logspace_sizes,
    sweep_contexts,
    sweep_distances,
    sweep_network_slowdowns,
)
from repro.core.system import SystemModel
from repro.core.transaction import TransactionModel

__all__ = [
    "ApplicationModel",
    "TransactionModel",
    "TorusNetworkModel",
    "IndirectNetworkModel",
    "SharedBusModel",
    "NodeModel",
    "OperatingPoint",
    "BatchOperatingPoints",
    "SystemModel",
    "solve",
    "solve_batch",
    "solve_cached",
    "clear_solve_cache",
    "solve_quadratic",
    "solve_with_floor",
    "open_loop",
    "decompose",
    "IssueTimeBreakdown",
    "GainResult",
    "expected_gain",
    "expected_gain_batch",
    "expected_gain_for_radix",
    "performance_ratio",
    "aggregate_performance",
    "useful_work_rate",
    "limiting_per_hop_latency",
    "limiting_per_hop_latency_for",
    "per_hop_curve",
    "PerHopSample",
    "size_to_reach_fraction",
    "DistanceSample",
    "GainCurve",
    "SlowdownSample",
    "sweep_distances",
    "gain_curve",
    "sweep_network_slowdowns",
    "ContextsSample",
    "sweep_contexts",
    "logspace_sizes",
]

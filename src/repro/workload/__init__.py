"""Workloads: thread programs that drive the simulator."""

from repro.workload.base import Block, ThreadProgram, jittered_cycles
from repro.workload.generators import (
    HotSpotProgram,
    PermutationProgram,
    UniformRandomProgram,
    bit_reverse_partners,
    transpose_partners,
    uniform_random_graph_programs,
)
from repro.workload.scripted import ScriptedProgram
from repro.workload.synthetic import NeighborExchangeProgram, build_programs

__all__ = [
    "ThreadProgram",
    "Block",
    "jittered_cycles",
    "NeighborExchangeProgram",
    "build_programs",
    "ScriptedProgram",
    "UniformRandomProgram",
    "PermutationProgram",
    "HotSpotProgram",
    "transpose_partners",
    "bit_reverse_partners",
    "uniform_random_graph_programs",
]

"""Additional traffic-generating thread programs.

The synthetic torus-neighbor application (:mod:`repro.workload.synthetic`)
is the paper's validation workload; the programs here exercise the same
simulator under other classic communication patterns:

* :class:`UniformRandomProgram` — every access targets a uniformly random
  remote thread's block: the zero-physical-locality baseline the model's
  random-mapping analysis assumes;
* :class:`PermutationProgram` — each thread exchanges with one fixed
  partner (transpose/bit-reverse style), the classic adversarial
  *permutation traffic* that concentrates load on specific paths;
* :class:`HotSpotProgram` — a fraction of accesses target one hot thread's
  block, modeling contended shared data (locks, reduction roots).

All programs follow the same read/write discipline as the paper's
application — reads of remote state words, periodic writes to the
thread's own word — so the coherence traffic they induce stays in the
protocol's fast paths while their *spatial* patterns differ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.topology.graphs import CommunicationGraph
from repro.workload.base import Block, jittered_cycles

__all__ = [
    "UniformRandomProgram",
    "PermutationProgram",
    "HotSpotProgram",
    "transpose_partners",
    "bit_reverse_partners",
    "uniform_random_graph_programs",
]


@dataclass
class UniformRandomProgram:
    """Reads uniformly random remote words; writes its own periodically.

    ``reads_per_write`` reads precede each write, mirroring the 4:1 ratio
    of the paper's application so ``g`` stays comparable.
    """

    instance: int
    thread: int
    threads: int
    compute_cycles_mean: int
    compute_jitter: float = 0.5
    reads_per_write: int = 4

    def __post_init__(self) -> None:
        if self.threads < 2:
            raise ParameterError("uniform random traffic needs >= 2 threads")
        if self.reads_per_write < 1:
            raise ParameterError(
                f"reads_per_write must be >= 1, got {self.reads_per_write!r}"
            )
        self._position = 0

    def compute_cycles(self, rng: random.Random) -> int:
        return jittered_cycles(self.compute_cycles_mean, self.compute_jitter, rng)

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        position = self._position
        self._position = (position + 1) % (self.reads_per_write + 1)
        if position < self.reads_per_write:
            target = rng.randrange(self.threads - 1)
            if target >= self.thread:
                target += 1
            return (self.instance, target), False
        return (self.instance, self.thread), True


@dataclass
class PermutationProgram:
    """Exchanges exclusively with one fixed partner thread."""

    instance: int
    thread: int
    partner: int
    compute_cycles_mean: int
    compute_jitter: float = 0.5
    reads_per_write: int = 4

    def __post_init__(self) -> None:
        if self.partner == self.thread:
            raise ParameterError(
                f"thread {self.thread} cannot partner with itself"
            )
        self._position = 0

    def compute_cycles(self, rng: random.Random) -> int:
        return jittered_cycles(self.compute_cycles_mean, self.compute_jitter, rng)

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        position = self._position
        self._position = (position + 1) % (self.reads_per_write + 1)
        if position < self.reads_per_write:
            return (self.instance, self.partner), False
        return (self.instance, self.thread), True


@dataclass
class HotSpotProgram:
    """Directs a fraction of reads at one hot thread's block.

    With ``hot_fraction = 0`` this degenerates to uniform random traffic;
    with 1.0 every read hits the hot block (a pure convergecast).
    """

    instance: int
    thread: int
    threads: int
    hot_thread: int
    hot_fraction: float
    compute_cycles_mean: int
    compute_jitter: float = 0.5
    reads_per_write: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ParameterError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction!r}"
            )
        if not 0 <= self.hot_thread < self.threads:
            raise ParameterError(
                f"hot_thread {self.hot_thread!r} outside 0..{self.threads - 1}"
            )
        if self.threads < 2:
            raise ParameterError("hot-spot traffic needs >= 2 threads")
        self._position = 0

    def compute_cycles(self, rng: random.Random) -> int:
        return jittered_cycles(self.compute_cycles_mean, self.compute_jitter, rng)

    def _random_remote(self, rng: random.Random) -> int:
        target = rng.randrange(self.threads - 1)
        if target >= self.thread:
            target += 1
        return target

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        position = self._position
        self._position = (position + 1) % (self.reads_per_write + 1)
        if position >= self.reads_per_write:
            return (self.instance, self.thread), True
        if (
            rng.random() < self.hot_fraction
            and self.hot_thread != self.thread
        ):
            return (self.instance, self.hot_thread), False
        return (self.instance, self._random_remote(rng)), False


# ----------------------------------------------------------------------
# Partner constructions for permutation traffic.
# ----------------------------------------------------------------------

def transpose_partners(radix: int) -> List[int]:
    """Matrix-transpose partners on a radix x radix thread grid.

    Thread ``(r, c)`` partners with ``(c, r)``; diagonal threads partner
    with their horizontal neighbor so every thread has a distinct partner.
    """
    if radix < 2:
        raise ParameterError(f"transpose needs radix >= 2, got {radix!r}")
    partners = []
    for row in range(radix):
        for col in range(radix):
            if row == col:
                partners.append(row * radix + (col + 1) % radix)
            else:
                partners.append(col * radix + row)
    return partners


def bit_reverse_partners(threads: int) -> List[int]:
    """Bit-reversal partners (threads must be a power of two).

    Palindromic indices (their own reversal) partner with their
    complement so the result is self-partner-free.
    """
    bits = threads.bit_length() - 1
    if 2**bits != threads:
        raise ParameterError(
            f"bit reversal needs a power-of-two thread count, got {threads}"
        )

    def reverse(value: int) -> int:
        result = 0
        for _ in range(bits):
            result = (result << 1) | (value & 1)
            value >>= 1
        return result

    partners = []
    for thread in range(threads):
        partner = reverse(thread)
        if partner == thread:
            partner = threads - 1 - thread
            if partner == thread:  # only for threads == 1
                raise ParameterError("cannot build partners for one thread")
        partners.append(partner)
    return partners


def uniform_random_graph_programs(
    graph: CommunicationGraph,
    instances: int,
    compute_cycles_mean: int,
    compute_jitter: float = 0.5,
) -> List[List[UniformRandomProgram]]:
    """Uniform-random programs sized to a graph's thread count.

    The graph supplies only the thread count (uniform traffic has no
    structure); provided for signature parity with
    :func:`repro.workload.synthetic.build_programs`.
    """
    if instances < 1:
        raise ParameterError(f"instances must be >= 1, got {instances!r}")
    return [
        [
            UniformRandomProgram(
                instance=instance,
                thread=thread,
                threads=graph.threads,
                compute_cycles_mean=compute_cycles_mean,
                compute_jitter=compute_jitter,
            )
            for thread in range(graph.threads)
        ]
        for instance in range(instances)
    ]

"""Scripted thread programs: replay a fixed access sequence.

Useful for protocol tests (drive exact interleavings), microbenchmarks,
and trace-driven experiments.  A :class:`ScriptedProgram` plays its
access list once (or cyclically) with fixed compute gaps; when a
non-cyclic script is exhausted the thread spins on long compute bursts,
touching nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.workload.base import Block

__all__ = ["ScriptedProgram"]

#: Compute burst used once a non-cyclic script is exhausted.
_IDLE_BURST_CYCLES = 1_000_000


@dataclass
class ScriptedProgram:
    """Replay ``accesses`` with ``gap_cycles`` of compute between them.

    Parameters
    ----------
    accesses:
        Sequence of ``(block, is_write)`` pairs.
    gap_cycles:
        Processor cycles of compute before each access; must be >= 1.
    cyclic:
        Loop forever (True) or play once and then idle (False).
    """

    accesses: Sequence[Tuple[Block, bool]]
    gap_cycles: int = 4
    cyclic: bool = True

    def __post_init__(self) -> None:
        if not self.accesses:
            raise ParameterError("a scripted program needs >= 1 access")
        if self.gap_cycles < 1:
            raise ParameterError(
                f"gap_cycles must be >= 1, got {self.gap_cycles!r}"
            )
        self._position = 0
        self._exhausted = False

    @property
    def finished(self) -> bool:
        """True once a non-cyclic script has been fully replayed."""
        return self._exhausted

    def compute_cycles(self, rng: random.Random) -> int:
        if self._exhausted:
            return _IDLE_BURST_CYCLES
        return self.gap_cycles

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        if self._exhausted:
            # Touch our own first-scripted block read-only; by the time a
            # script is exhausted this is a guaranteed cache hit, so the
            # thread generates no further traffic.
            return self.accesses[0][0], False
        access = self.accesses[self._position]
        self._position += 1
        if self._position >= len(self.accesses):
            if self.cyclic:
                self._position = 0
            else:
                self._exhausted = True
        return access

    @classmethod
    def single(cls, block: Block, is_write: bool) -> "ScriptedProgram":
        """One access, then idle."""
        return cls(accesses=[(block, is_write)], cyclic=False)

    @classmethod
    def random_script(
        cls,
        instance: int,
        thread: int,
        threads: int,
        length: int,
        seed: int,
        write_fraction: float = 0.3,
        gap_cycles: int = 4,
        remote_writes: bool = False,
    ) -> "ScriptedProgram":
        """A seeded random access script for stress testing.

        Reads target random other threads' blocks.  Writes target the
        thread's own block by default (the paper's owner-writes pattern);
        with ``remote_writes=True`` they target random blocks instead,
        exercising the protocol's write-request / ownership-steal paths.
        """
        if threads < 2:
            raise ParameterError("random scripts need >= 2 threads")
        if length < 1:
            raise ParameterError(f"length must be >= 1, got {length!r}")
        if not 0.0 <= write_fraction <= 1.0:
            raise ParameterError(
                f"write_fraction must lie in [0, 1], got {write_fraction!r}"
            )
        generator = random.Random(seed * 9176 + thread)

        def random_other() -> int:
            target = generator.randrange(threads - 1)
            return target + 1 if target >= thread else target

        accesses: List[Tuple[Block, bool]] = []
        for _ in range(length):
            if generator.random() < write_fraction:
                owner = (
                    generator.randrange(threads) if remote_writes else thread
                )
                accesses.append(((instance, owner), True))
            else:
                accesses.append(((instance, random_other()), False))
        return cls(accesses=accesses, gap_cycles=gap_cycles, cyclic=True)

"""Thread program abstraction.

A :class:`ThreadProgram` drives one hardware context: the processor
alternates between ``compute_cycles()`` of useful work and the memory
access returned by ``next_access()``.  Programs are deliberately tiny
state machines — the simulator models timing, not computation.

Blocks are identified by ``(instance, owner_thread)`` pairs: the paper's
multi-context experiments run one independent copy of the application per
hardware context ("no data is shared between application instances"), so
the instance id keeps their address spaces disjoint.
"""

from __future__ import annotations

import random
from typing import Protocol, Tuple

Block = Tuple[int, int]

__all__ = ["ThreadProgram", "Block", "jittered_cycles"]


class ThreadProgram(Protocol):
    """What a hardware context executes."""

    def compute_cycles(self, rng: random.Random) -> int:
        """Processor cycles of useful work before the next access."""
        ...

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        """The next memory access as ``(block, is_write)``."""
        ...


def jittered_cycles(
    base: int, jitter_fraction: float, rng: random.Random
) -> int:
    """A run length of ``base`` cycles with uniform +/- jitter.

    Jitter breaks the phase-locking a fully deterministic workload
    produces on a synchronous machine; the mean is preserved and results
    stay deterministic for a seeded generator.  Always returns >= 1.
    """
    if jitter_fraction <= 0.0:
        return max(1, base)
    spread = base * jitter_fraction
    value = rng.uniform(base - spread, base + spread)
    return max(1, round(value))

"""The paper's synthetic application (Section 3.2).

Each of the 64 threads "maintains a single word of state in local memory
and repeatedly iterates through a simple inner-loop.  During the course
of one pass through the inner-loop, a thread reads the value from each of
its neighbors' state words, performs some trivial computation, and writes
a new value to its own state word.  Threads make no effort to synchronize
with one another."

The communication graph is therefore the torus adjacency: with coherent
caches, reading a neighbor's state word pulls the line (request + data
reply), and writing one's own word invalidates the neighbors' cached
copies (invalidate + ack each).  One iteration issues 4 read transactions
and 1 write transaction and — in steady state — 16 network messages,
giving the paper's ``g = 3.2``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ParameterError
from repro.topology.graphs import CommunicationGraph
from repro.workload.base import Block, jittered_cycles

__all__ = ["NeighborExchangeProgram", "build_programs"]


@dataclass
class NeighborExchangeProgram:
    """One thread of the synthetic application.

    Parameters
    ----------
    instance:
        Application-instance id (one instance per hardware context).
    thread:
        This thread's id; its own state word is block
        ``(instance, thread)``.
    neighbors:
        Thread ids whose state words are read each iteration.
    compute_cycles_mean:
        Mean processor cycles of "trivial computation" between accesses.
    compute_jitter:
        Uniform jitter fraction applied to each run length.
    """

    instance: int
    thread: int
    neighbors: Sequence[int]
    compute_cycles_mean: int
    compute_jitter: float = 0.5

    def __post_init__(self) -> None:
        if not self.neighbors:
            raise ParameterError(
                f"thread {self.thread} has no neighbors to exchange with"
            )
        self._position = 0

    def compute_cycles(self, rng: random.Random) -> int:
        return jittered_cycles(
            self.compute_cycles_mean, self.compute_jitter, rng
        )

    def next_access(self, rng: random.Random) -> Tuple[Block, bool]:
        """Cycle through: read each neighbor's word, then write our own."""
        accesses_per_iteration = len(self.neighbors) + 1
        position = self._position
        self._position = (position + 1) % accesses_per_iteration
        if position < len(self.neighbors):
            return (self.instance, self.neighbors[position]), False
        return (self.instance, self.thread), True


def build_programs(
    graph: CommunicationGraph,
    instances: int,
    compute_cycles_mean: int,
    compute_jitter: float = 0.5,
) -> List[List[NeighborExchangeProgram]]:
    """Programs for every (instance, thread) pair of a machine run.

    Returns ``programs[instance][thread]``.  The neighbor lists come from
    the communication graph's out-edges, so any graph — the paper's torus
    adjacency or otherwise — can drive the same program.
    """
    if instances < 1:
        raise ParameterError(f"instances must be >= 1, got {instances!r}")
    programs: List[List[NeighborExchangeProgram]] = []
    for instance in range(instances):
        row = []
        for thread in range(graph.threads):
            neighbors = [dst for dst, _ in graph.out_neighbors(thread)]
            row.append(
                NeighborExchangeProgram(
                    instance=instance,
                    thread=thread,
                    neighbors=neighbors,
                    compute_cycles_mean=compute_cycles_mean,
                    compute_jitter=compute_jitter,
                )
            )
        programs.append(row)
    return programs

"""Benchmark baseline management: the ``repro-bench`` console script.

The benchmark suite leaves machine-readable rows at the repo root (one
``BENCH_<module>.json`` per module that ran — see
``benchmarks/conftest.py``).  Historically those rows vanished with the
working tree, so the perf trajectory of the repo was empty.  This tool
closes the loop:

* ``repro-bench snapshot`` copies the current repo-root ``BENCH_*.json``
  files into ``benchmarks/baselines/`` — the committed snapshot that
  records what the suite measured when the code landed — and writes a
  ``baseline_manifest.json`` beside them (via
  :func:`repro.obs.manifest.build_manifest`) recording the git SHA the
  rows were measured at and a SHA-256 digest of every copied file, so a
  baseline's provenance survives the copy;
* ``repro-bench compare`` diffs fresh rows against that snapshot and
  flags regressions: a kernel-vs-reference speedup that dropped by more
  than the threshold (default 20%), or a wall-clock row that grew by
  more than the (looser, noise-tolerant) wall threshold.  Exit status 1
  when anything regressed, so CI can gate on it.

Rows are matched by ``(bench, config)``; rows present on only one side
are reported but never fail the comparison (benchmarks come and go).
``load_rows`` globs ``BENCH_*.json`` only, so the manifest beside the
baselines never enters the comparison.
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import os
import shutil
import sys
from typing import Dict, List, Optional, Tuple

__all__ = ["compare_rows", "load_rows", "main"]

#: Repo-root location of the committed snapshot.
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")

RowKey = Tuple[str, str]


def load_rows(directory: str) -> Dict[str, Dict[RowKey, dict]]:
    """``{module tag: {(bench, config): row}}`` for every BENCH json."""
    tables: Dict[str, Dict[RowKey, dict]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        tag = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, "r", encoding="utf-8") as handle:
            rows = json.load(handle)
        tables[tag] = {(row["bench"], row["config"]): row for row in rows}
    return tables


def compare_rows(
    baseline: Dict[str, Dict[RowKey, dict]],
    current: Dict[str, Dict[RowKey, dict]],
    speedup_threshold: float,
    wall_threshold: float,
) -> Tuple[List[str], List[str]]:
    """(regressions, notes) from diffing current rows against baseline.

    A speedup row regresses when it fell below ``baseline * (1 -
    speedup_threshold)``; a wall-clock row regresses when it grew above
    ``baseline * (1 + wall_threshold)``.  Missing/new rows and
    improvements land in ``notes``.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for tag, base_rows in sorted(baseline.items()):
        fresh_rows = current.get(tag)
        if fresh_rows is None:
            notes.append(f"[{tag}] no current BENCH_{tag}.json (not run)")
            continue
        for key, base in sorted(base_rows.items()):
            bench, config = key
            fresh = fresh_rows.get(key)
            label = f"[{tag}] {bench} ({config})"
            if fresh is None:
                notes.append(f"{label}: row missing from current run")
                continue
            base_speedup = base.get("speedup_vs_reference")
            fresh_speedup = fresh.get("speedup_vs_reference")
            if base_speedup and fresh_speedup:
                floor = base_speedup * (1.0 - speedup_threshold)
                if fresh_speedup < floor:
                    regressions.append(
                        f"{label}: speedup {base_speedup:.2f}x -> "
                        f"{fresh_speedup:.2f}x "
                        f"(allowed floor {floor:.2f}x)"
                    )
                elif fresh_speedup > base_speedup * (1.0 + speedup_threshold):
                    notes.append(
                        f"{label}: speedup improved "
                        f"{base_speedup:.2f}x -> {fresh_speedup:.2f}x"
                    )
            elif base.get("wall_s") and fresh.get("wall_s"):
                ceiling = base["wall_s"] * (1.0 + wall_threshold)
                if fresh["wall_s"] > ceiling:
                    regressions.append(
                        f"{label}: wall {base['wall_s']:.3f}s -> "
                        f"{fresh['wall_s']:.3f}s "
                        f"(allowed ceiling {ceiling:.3f}s)"
                    )
        for key in sorted(set(fresh_rows) - set(base_rows)):
            notes.append(f"[{tag}] {key[0]} ({key[1]}): new row (no baseline)")
    return regressions, notes


def _cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_rows(args.baseline_dir)
    if not baseline:
        print(
            f"no BENCH_*.json baselines under {args.baseline_dir!r}; "
            "run `repro-bench snapshot` after a benchmark session",
            file=sys.stderr,
        )
        return 2
    current = load_rows(args.current_dir)
    regressions, notes = compare_rows(
        baseline, current, args.threshold, args.wall_threshold
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(
            f"{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%} (wall: {args.wall_threshold:.0%}):"
        )
        for line in regressions:
            print(f"  REGRESSION {line}")
    else:
        print(
            f"no regressions beyond {args.threshold:.0%} "
            f"(wall: {args.wall_threshold:.0%}) across "
            f"{sum(len(rows) for rows in baseline.values())} baseline rows"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "regressions": regressions,
                    "notes": notes,
                    "speedup_threshold": args.threshold,
                    "wall_threshold": args.wall_threshold,
                },
                handle,
                indent=2,
            )
    return 1 if regressions else 0


#: Filename of the provenance record written beside the baselines.
#: Distinct from the ``BENCH_*`` glob, so ``load_rows`` never sees it.
BASELINE_MANIFEST = "baseline_manifest.json"


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.obs.manifest import build_manifest

    paths = sorted(glob.glob(os.path.join(args.current_dir, "BENCH_*.json")))
    if not paths:
        print(
            f"no BENCH_*.json files under {args.current_dir!r}; run the "
            "benchmark suite first (pytest benchmarks/)",
            file=sys.stderr,
        )
        return 2
    os.makedirs(args.baseline_dir, exist_ok=True)
    digests: Dict[str, str] = {}
    for path in paths:
        name = os.path.basename(path)
        destination = os.path.join(args.baseline_dir, name)
        shutil.copyfile(path, destination)
        digests[name] = _file_sha256(destination)
        print(f"snapshot {path} -> {destination}")
    manifest = build_manifest(
        experiments=["bench-snapshot"],
        parameters={
            "command": "snapshot",
            "files": digests,
            "baseline_dir": args.baseline_dir,
        },
    )
    manifest_path = manifest.write(
        os.path.join(args.baseline_dir, BASELINE_MANIFEST)
    )
    print(f"manifest {manifest_path} (git {manifest.git_sha[:12]})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="compare benchmark rows against the committed baselines",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare_parser = subparsers.add_parser(
        "compare", help="flag regressions against benchmarks/baselines/"
    )
    compare_parser.add_argument(
        "--baseline-dir", default=DEFAULT_BASELINE_DIR, metavar="DIR",
        help=f"committed snapshot directory (default: {DEFAULT_BASELINE_DIR})",
    )
    compare_parser.add_argument(
        "--current-dir", default=".", metavar="DIR",
        help="directory holding fresh BENCH_*.json rows (default: .)",
    )
    compare_parser.add_argument(
        "--threshold", type=float, default=0.20, metavar="FRACTION",
        help="speedup drop that counts as a regression (default: 0.20)",
    )
    compare_parser.add_argument(
        "--wall-threshold", type=float, default=0.50, metavar="FRACTION",
        help="wall-clock growth that counts as a regression — looser, "
        "since absolute times are machine-dependent (default: 0.50)",
    )
    compare_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the comparison verdict as JSON",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="copy repo-root BENCH_*.json into the baseline dir"
    )
    snapshot_parser.add_argument(
        "--baseline-dir", default=DEFAULT_BASELINE_DIR, metavar="DIR"
    )
    snapshot_parser.add_argument("--current-dir", default=".", metavar="DIR")
    snapshot_parser.set_defaults(func=_cmd_snapshot)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

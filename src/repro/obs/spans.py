"""Structured spans and trace export (Chrome trace format + JSONL).

A span is a named, timed interval with free-form dimensions::

    with obs.span("solver.solve", distance=4.06):
        ...

Spans nest: the buffer keeps a stack per process, stamping each record
with its depth and the index of its parent so exports preserve the call
structure.  Records are stored as plain dicts, which keeps them cheap to
pickle across a ``ProcessPoolExecutor`` (worker traces are shipped back
to the parent and merged with :meth:`TraceBuffer.ingest`, keyed by the
worker's pid).

When observability is disabled, :func:`repro.obs.span` returns the
shared :data:`NULL_SPAN` singleton whose enter/exit do nothing — the
instrumentation compiles down to one flag check per call site.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

__all__ = ["NullSpan", "NULL_SPAN", "Span", "TraceBuffer"]


class NullSpan:
    """Do-nothing context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: Shared no-op span; one instance for the whole process.
NULL_SPAN = NullSpan()


class Span:
    """Live (in-progress) span handle; records itself into the buffer."""

    __slots__ = ("_buffer", "name", "attrs", "_start", "_parent", "_depth")

    def __init__(self, buffer: "TraceBuffer", name: str, attrs: Dict):
        self._buffer = buffer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        stack = self._buffer._stack
        self._parent = stack[-1] if stack else -1
        self._depth = len(stack)
        stack.append(self._buffer._next_index())
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter()
        buffer = self._buffer
        index = buffer._stack.pop()
        buffer._append(
            {
                "index": index,
                "name": self.name,
                "start": self._start - buffer.epoch,
                "duration": end - self._start,
                "depth": self._depth,
                "parent": self._parent,
                "pid": buffer.pid,
                "tid": buffer.tid,
                "args": self.attrs,
            }
        )
        return False


class TraceBuffer:
    """Completed-span store with Chrome-trace / JSONL export.

    Spans are appended at *end* time (Chrome "complete" events carry a
    duration, so nothing needs to be written at start), which means the
    list is ordered by completion.  ``index`` restores start order and
    ``parent`` the nesting; both survive serialization.
    """

    def __init__(self):
        self.pid = os.getpid()
        self.tid = threading.get_ident() & 0xFFFF
        self.epoch = time.perf_counter()
        self.spans: List[Dict] = []
        self.counters: List[Dict] = []
        self._stack: List[int] = []
        self._counter = 0

    def _next_index(self) -> int:
        index = self._counter
        self._counter += 1
        return index

    def _append(self, record: Dict) -> None:
        self.spans.append(record)

    def span(self, name: str, attrs: Dict) -> Span:
        return Span(self, name, attrs)

    def add_counter(self, name: str, ts_us: float, values: Dict) -> None:
        """Record one counter sample (Chrome trace ph="C" event).

        ``ts_us`` is the sample's timestamp in trace microseconds —
        callers with their own timebase (e.g. the fabric telemetry's
        network cycles) map one unit to one microsecond, which lands the
        series on a readable scale next to the spans.  ``values`` must
        be a flat name→number mapping (what Perfetto stacks per track).
        """
        self.counters.append(
            {
                "name": name,
                "ts": float(ts_us),
                "pid": self.pid,
                "values": dict(values),
            }
        )

    # ------------------------------------------------------------------
    # Queries and cross-process merge.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def mark(self) -> int:
        """Position token; pass to :meth:`since` for the spans after it."""
        return len(self.spans)

    def since(self, mark: int) -> List[Dict]:
        """Copies of the span records appended after ``mark``."""
        return [dict(record) for record in self.spans[mark:]]

    def ingest(self, records: Iterable[Dict]) -> int:
        """Merge foreign (e.g. pool-worker) span records; returns count."""
        added = 0
        for record in records:
            self.spans.append(dict(record))
            added += 1
        return added

    def names(self) -> List[str]:
        return [record["name"] for record in self.spans]

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def chrome_trace_events(self) -> List[Dict]:
        """Spans (ph=X) plus counter samples (ph=C), microseconds."""
        events = [
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": record["duration"] * 1e6,
                "pid": record["pid"],
                "tid": record["tid"],
                "args": dict(record["args"], depth=record["depth"]),
            }
            for record in sorted(self.spans, key=lambda r: (r["pid"], r["start"]))
        ]
        events.extend(
            {
                "name": record["name"],
                "cat": record["name"].split(".", 1)[0],
                "ph": "C",
                "ts": record["ts"],
                "pid": record["pid"],
                "args": dict(record["values"]),
            }
            for record in sorted(self.counters, key=lambda r: (r["pid"], r["ts"]))
        )
        return events

    def write_chrome_trace(self, path: str) -> str:
        """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
        document = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return path

    def write_jsonl(self, path: str) -> str:
        """Write raw span records, one JSON object per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record))
                handle.write("\n")
        return path

"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single home for quantitative diagnostics.  It absorbs
the ad-hoc process-global counters that used to live on the
:mod:`repro.perf` singleton (that module remains as a thin shim over
``REGISTRY``) and adds gauges and histograms with *fixed* bucket
boundaries, so distributions — solver iteration counts, experiment wall
times — can be merged across processes and compared across runs without
re-bucketing.

Metrics are always live: incrementing a counter is a plain integer add,
cheap enough that nothing needs to be gated on the observability switch.
The span/diagnostic layers in :mod:`repro.obs` are what compile to
no-ops when observability is off; they *feed* this registry when on.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "ITERATION_BUCKETS",
    "LATENCY_BUCKETS_SECONDS",
    "UTILIZATION_BUCKETS",
]

#: Bisection-iteration distribution boundaries (``<=`` semantics).
ITERATION_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 150, 200)

#: Wall-time distribution boundaries, in seconds.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 60.0, 600.0,
)

#: Channel-utilization distribution boundaries (rho in [0, 1]).
UTILIZATION_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time numeric metric (last value wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> Dict:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution.

    ``buckets`` are inclusive upper bounds: an observation lands in the
    first bucket whose bound is ``>= value`` (Prometheus ``le``
    semantics); values above the last bound land in the overflow slot
    (``counts[-1]``).  Bounds are fixed at construction so histograms
    from different processes or runs merge bucket-for-bucket.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[float], help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ParameterError(f"histogram {name!r} needs >= 1 bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ParameterError(
                f"histogram {name!r} bucket bounds must strictly increase, "
                f"got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> Dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def render(self) -> str:
        """One-line ``[<=bound] n`` view (overflow as ``[>last]``)."""
        parts = [
            f"[<={bound:g}] {count}"
            for bound, count in zip(self.buckets, self.counts)
        ]
        parts.append(f"[>{self.buckets[-1]:g}] {self.counts[-1]}")
        return " ".join(parts)


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    Accessors return the existing metric when the name is already
    registered (so call sites never need import-order coordination) and
    raise :class:`~repro.errors.ParameterError` if the name is bound to
    a different metric type.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ParameterError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        bounds = LATENCY_BUCKETS_SECONDS if buckets is None else buckets
        return self._get_or_create(
            name, lambda: Histogram(name, bounds, help), Histogram
        )

    def get(self, name: str):
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as plain (JSON-serializable) dicts."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def merge_counters(self, values: Dict[str, int]) -> None:
        """Add ``values`` into same-named counters (cross-process merge)."""
        for name, value in values.items():
            self.counter(name).inc(int(value))

    def snapshot_histograms(self) -> Dict[str, Dict]:
        """Only the histograms, as plain dicts (pool-worker payloads)."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Histogram)
        }

    def merge_histograms(self, values: Dict[str, Dict]) -> None:
        """Fold serialized histograms into same-named ones bucket-for-bucket.

        ``values`` maps names to :meth:`Histogram.as_dict` payloads
        (what :meth:`snapshot_histograms` produces on the other side of
        a process boundary).  Unknown names are registered with the
        payload's bounds; known names must agree on bounds — merging
        across different bucketings would silently misplace counts, so
        a mismatch raises :class:`~repro.errors.ParameterError`.
        """
        for name, data in sorted(values.items()):
            bounds = tuple(float(b) for b in data["buckets"])
            histogram = self.histogram(name, bounds)
            if histogram.buckets != bounds:
                raise ParameterError(
                    f"histogram {name!r} bucket bounds mismatch: "
                    f"registered {histogram.buckets}, payload {bounds}"
                )
            counts = data["counts"]
            if len(counts) != len(histogram.counts):
                raise ParameterError(
                    f"histogram {name!r} payload has {len(counts)} "
                    f"counts, expected {len(histogram.counts)}"
                )
            for index, value in enumerate(counts):
                histogram.counts[index] += int(value)
            histogram.count += int(data["count"])
            histogram.sum += float(data["sum"])

    def reset(self) -> None:
        """Zero every registered metric (registrations are kept)."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-global registry all instrumentation reports into.
REGISTRY = MetricsRegistry()

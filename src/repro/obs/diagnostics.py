"""Solver convergence diagnostics.

When observability is on, every combined-model solve — scalar, batch
lane, closed-form quadratic, or issue-time-floor clamp — appends one
:class:`SolveRecord` describing *how* the answer was reached: which
branch fired (linear fast path, bisection, which quadratic root,
saturation failure), how many bisection iterations it took, the final
relative bracket width, and the residual curve gap at the returned rate.

``repro-locality diagnose <experiment>`` runs an experiment with
diagnostics on and renders the collected records, flagging solves that
came close to the iteration cap and operating points whose channel
utilization approaches saturation (rho -> 1) — the regime where the
model's predictions are least trustworthy.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    ITERATION_BUCKETS,
    REGISTRY,
    UTILIZATION_BUCKETS,
)

__all__ = ["SolveRecord", "SolveDiagnostics", "render_diagnosis"]

#: Bisection iteration count above which a solve is flagged as nearly
#: non-convergent (the solver's hard cap is 200; a healthy solve at the
#: production tolerance needs ~45-60).
NEAR_NONCONVERGENT_ITERATIONS = 100

#: Channel utilization above which an operating point is flagged as
#: saturated (rho -> 1).
SATURATION_THRESHOLD = 0.95


@dataclass(frozen=True)
class SolveRecord:
    """One solve's convergence story."""

    #: "scalar" | "batch" | "quadratic" | "floor".
    kind: str
    #: Which resolution branch fired: "linear", "bisection", "root+",
    #: "root-", "floor-clamp", "saturation", "non-convergent".
    branch: str
    distance: float
    iterations: int
    #: Final relative bracket width ((high - low) / high); 0 for
    #: closed-form branches.
    bracket_width: float
    #: Node-curve minus network-curve latency at the returned rate.
    residual: float
    message_rate: float
    utilization: float

    def as_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "branch": self.branch,
            "distance": self.distance,
            "iterations": self.iterations,
            "bracket_width": self.bracket_width,
            "residual": self.residual,
            "message_rate": self.message_rate,
            "utilization": self.utilization,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SolveRecord":
        return cls(**data)


class SolveDiagnostics:
    """Bounded per-process collection of :class:`SolveRecord`.

    Capacity-bounded like the simulator's :class:`~repro.sim.trace.Tracer`
    ring buffer; once full, further records are counted in ``dropped``
    rather than silently discarded.
    """

    def __init__(self, capacity: int = 200_000):
        self.capacity = capacity
        self.records: List[SolveRecord] = []
        self.dropped = 0

    def record(
        self,
        kind: str,
        branch: str,
        distance: float,
        iterations: int = 0,
        bracket_width: float = 0.0,
        residual: float = 0.0,
        message_rate: float = 0.0,
        utilization: float = 0.0,
    ) -> None:
        REGISTRY.histogram(
            "solver.iterations",
            ITERATION_BUCKETS,
            help="bisection iterations per solve",
        ).observe(iterations)
        REGISTRY.histogram(
            "solver.utilization",
            UTILIZATION_BUCKETS,
            help="channel utilization at solved operating points",
        ).observe(utilization)
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            SolveRecord(
                kind=kind,
                branch=str(branch),
                distance=float(distance),
                iterations=int(iterations),
                bracket_width=float(bracket_width),
                residual=float(residual),
                message_rate=float(message_rate),
                utilization=float(utilization),
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Analysis.
    # ------------------------------------------------------------------

    def by_branch(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.branch] = counts.get(record.branch, 0) + 1
        return counts

    def iteration_stats(self) -> Optional[Dict[str, float]]:
        iterations = [
            r.iterations for r in self.records if r.branch == "bisection"
        ]
        if not iterations:
            return None
        return {
            "min": min(iterations),
            "median": statistics.median(iterations),
            "max": max(iterations),
        }

    def flagged(
        self,
        max_iterations: int = NEAR_NONCONVERGENT_ITERATIONS,
        utilization_threshold: float = SATURATION_THRESHOLD,
    ) -> List[Tuple[SolveRecord, List[str]]]:
        """Records with convergence or saturation concerns, with reasons."""
        flagged = []
        for record in self.records:
            reasons = []
            if record.iterations > max_iterations:
                reasons.append(
                    f"near-non-convergent ({record.iterations} iterations)"
                )
            if record.branch in ("saturation", "non-convergent"):
                reasons.append(f"solver branch {record.branch!r}")
            if record.utilization > utilization_threshold:
                reasons.append(
                    f"saturated network (rho = {record.utilization:.3f})"
                )
            if reasons:
                flagged.append((record, reasons))
        return flagged


def render_diagnosis(
    diagnostics: SolveDiagnostics,
    experiment: str,
    utilization_threshold: float = SATURATION_THRESHOLD,
    perf_delta: Optional[Dict[str, int]] = None,
) -> str:
    """Human-readable convergence report for one experiment run."""
    lines = [f"== diagnose {experiment} =="]
    if perf_delta:
        lines.append(
            "solver activity    : "
            f"{perf_delta.get('solve_calls', 0)} scalar solves, "
            f"{perf_delta.get('batch_solves', 0)} batch calls covering "
            f"{perf_delta.get('batch_points', 0)} lanes, "
            f"{perf_delta.get('cache_hits', 0)} cache hits"
        )
    lines.append(f"solves recorded    : {len(diagnostics)}")
    if diagnostics.dropped:
        lines.append(f"records dropped    : {diagnostics.dropped} (capacity)")
    branches = diagnostics.by_branch()
    if branches:
        rendered = ", ".join(
            f"{branch} {count}" for branch, count in sorted(branches.items())
        )
        lines.append(f"branches           : {rendered}")
    stats = diagnostics.iteration_stats()
    if stats:
        lines.append(
            "bisection iterations: "
            f"min {stats['min']:g}, median {stats['median']:g}, "
            f"max {stats['max']:g} (cap 200)"
        )
    histogram = REGISTRY.get("solver.iterations")
    if histogram is not None and histogram.count:
        lines.append(f"iteration histogram: {histogram.render()}")

    flagged = diagnostics.flagged(utilization_threshold=utilization_threshold)
    if not flagged:
        lines.append(
            "flags              : none (no near-non-convergent solves, "
            f"no operating points with rho > {utilization_threshold:g})"
        )
    else:
        lines.append(f"flags              : {len(flagged)} solve(s) flagged")
        shown = flagged[:20]
        for record, reasons in shown:
            lines.append(
                f"  - d = {record.distance:.4g}, "
                f"rho = {record.utilization:.3f}, "
                f"iterations = {record.iterations}: {'; '.join(reasons)}"
            )
        if len(flagged) > len(shown):
            lines.append(f"  ... and {len(flagged) - len(shown)} more")
    return "\n".join(lines)

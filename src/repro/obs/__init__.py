"""repro.obs — unified instrumentation: spans, metrics, diagnostics, provenance.

The observability layer answers the questions the model outputs don't:
*where does campaign wall-time go, why did a solve converge (or not),
and which exact inputs produced this figure?*  Four pieces:

* **spans** (:mod:`repro.obs.spans`) — ``with obs.span("solve", d=4.0)``
  timed intervals, exported as Chrome-trace JSON (``chrome://tracing`` /
  Perfetto) and JSONL;
* **metrics** (:mod:`repro.obs.metrics`) — the process-global counter /
  gauge / histogram registry (:data:`~repro.obs.metrics.REGISTRY`),
  which also backs the legacy :mod:`repro.perf` shim;
* **solver diagnostics** (:mod:`repro.obs.diagnostics`) — per-solve
  convergence records behind ``repro-locality diagnose``;
* **manifests** (:mod:`repro.obs.manifest`) — run provenance (git SHA,
  parameter hash, seeds, counters, timings) written beside every trace.

Observability is **off by default** and everything but the always-cheap
metrics registry compiles to a no-op: :func:`span` returns a shared
do-nothing context manager and :func:`solver_diagnostics` returns
``None``, so the solver/simulator hot paths pay one flag check.  Enable
per process with :func:`enable`, per run with ``repro-locality ...
--trace DIR``, or globally with the ``REPRO_OBS=1`` environment variable
(how CI force-enables the instrumented paths under the tier-1 suite).
Model *results* never depend on any of this — parity guarantees hold
bit-for-bit with observability on or off.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional

from repro.obs.diagnostics import SolveDiagnostics, render_diagnosis
from repro.obs.manifest import RunManifest, build_manifest, parameter_hash
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, TraceBuffer

__all__ = [
    # switches
    "enable",
    "disable",
    "is_enabled",
    "reset",
    # spans
    "span",
    "trace",
    "trace_counter",
    "trace_mark",
    "spans_since",
    "ingest_spans",
    "ingest_worker_payloads",
    "write_chrome_trace",
    "write_spans_jsonl",
    # metrics
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # diagnostics
    "solver_diagnostics",
    "render_diagnosis",
    "SolveDiagnostics",
    # provenance
    "RunManifest",
    "build_manifest",
    "parameter_hash",
    "write_outputs",
]


class _ObsState:
    """Per-process observability state (fresh trace/diagnostics on enable)."""

    __slots__ = ("enabled", "trace", "diagnostics", "started_wall", "started_cpu")

    def __init__(self):
        self.enabled = False
        self.trace = TraceBuffer()
        self.diagnostics = SolveDiagnostics()
        self.started_wall = time.perf_counter()
        self.started_cpu = time.process_time()


_STATE = _ObsState()


def is_enabled() -> bool:
    """Whether spans and solver diagnostics are being collected."""
    return _STATE.enabled


def enable(fresh: bool = False) -> None:
    """Turn collection on (optionally dropping previously collected data)."""
    if fresh:
        reset()
    _STATE.enabled = True


def disable() -> None:
    """Turn collection off; already-collected data stays queryable."""
    _STATE.enabled = False


def reset() -> None:
    """Drop collected spans and solve records (enabled flag unchanged)."""
    enabled = _STATE.enabled
    _STATE.__init__()
    _STATE.enabled = enabled


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------


def span(name: str, **attrs):
    """A timed, named context manager; a shared no-op when disabled."""
    if not _STATE.enabled:
        return NULL_SPAN
    return _STATE.trace.span(name, attrs)


def trace() -> TraceBuffer:
    """The live trace buffer (spans collected so far in this process)."""
    return _STATE.trace


def trace_counter(name: str, ts_us: float, values: Dict) -> None:
    """Record one counter sample (Chrome ph="C"); no-op when disabled.

    ``values`` is a flat name→number mapping; ``ts_us`` the sample's
    timestamp in trace microseconds (callers with cycle-based timebases
    map one cycle to one microsecond).
    """
    if _STATE.enabled:
        _STATE.trace.add_counter(name, ts_us, values)


def trace_mark() -> int:
    return _STATE.trace.mark()


def spans_since(mark: int) -> List[Dict]:
    return _STATE.trace.since(mark)


def ingest_spans(records: Iterable[Dict]) -> int:
    """Merge span records from another process into this trace."""
    return _STATE.trace.ingest(records)


def ingest_worker_payloads(payloads: Iterable[Optional[Dict]]) -> int:
    """Merge ``{"pid", "spans"[, "histograms"]}`` pool-worker payloads.

    The shared pool-worker convention (campaign runner, replication
    harness): each worker records spans into a fresh buffer and returns
    them stamped with its pid; the parent folds them in here, skipping
    payloads stamped with its *own* pid (a worker that ran serially, or
    a fork that shipped inherited spans back).  A payload may also carry
    ``"histograms"`` — :meth:`MetricsRegistry.snapshot_histograms` state
    accumulated in the worker — which is folded into the parent
    ``REGISTRY`` bucket-for-bucket, so distributions (e.g. the fabric
    telemetry's worm-latency histogram) are identical whether the
    replications ran serially or across ``--jobs`` workers.  Returns the
    number of span records merged.
    """
    own_pid = os.getpid()
    merged = 0
    for payload in payloads:
        if not payload or payload.get("pid") == own_pid:
            continue
        merged += ingest_spans(payload.get("spans", ()))
        histograms = payload.get("histograms")
        if histograms:
            REGISTRY.merge_histograms(histograms)
    return merged


def write_chrome_trace(path: str) -> str:
    return _STATE.trace.write_chrome_trace(path)


def write_spans_jsonl(path: str) -> str:
    return _STATE.trace.write_jsonl(path)


# ----------------------------------------------------------------------
# Solver diagnostics.
# ----------------------------------------------------------------------


def solver_diagnostics() -> Optional[SolveDiagnostics]:
    """The live solve-record collector, or ``None`` while disabled."""
    return _STATE.diagnostics if _STATE.enabled else None


def diagnostics() -> SolveDiagnostics:
    """The collector regardless of the enabled flag (for reports)."""
    return _STATE.diagnostics


# ----------------------------------------------------------------------
# Combined outputs.
# ----------------------------------------------------------------------


def write_outputs(
    directory: str,
    experiments: Iterable[str] = (),
    parameters: Optional[Dict] = None,
    rng_seeds: Optional[Dict] = None,
    extra: Optional[Dict] = None,
) -> Dict[str, str]:
    """Write ``trace.json``, ``trace.jsonl``, and ``manifest.json``.

    Returns the mapping of artifact kind to written path.  Wall/CPU time
    cover the window since the state was created (process start, the
    last :func:`reset`, or ``enable(fresh=True)``).
    """
    os.makedirs(directory, exist_ok=True)
    manifest = build_manifest(
        list(experiments),
        parameters=parameters,
        rng_seeds=rng_seeds,
        wall_seconds=time.perf_counter() - _STATE.started_wall,
        cpu_seconds=time.process_time() - _STATE.started_cpu,
        extra=extra,
    )
    return {
        "trace": write_chrome_trace(os.path.join(directory, "trace.json")),
        "spans": write_spans_jsonl(os.path.join(directory, "trace.jsonl")),
        "manifest": manifest.write(os.path.join(directory, "manifest.json")),
    }


# Environment opt-in: REPRO_OBS=1 force-enables collection at import time
# (used by CI to run the tier-1 suite down the instrumented paths).
if os.environ.get("REPRO_OBS", "").strip().lower() in ("1", "true", "yes", "on"):
    enable()

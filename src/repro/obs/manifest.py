"""Run provenance manifests.

A manifest records everything needed to trace a figure or table back to
its exact inputs: the git revision and Python the run used, a stable
hash of the swept parameters, the RNG seeds in play, a counter snapshot
of the solver work performed, and wall/CPU time.  One is written next to
every ``--trace`` capture (and by :func:`repro.obs.write_outputs`
generally), and the JSON round-trips losslessly:
``RunManifest.load(path) == manifest``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

__all__ = [
    "RunManifest",
    "parameter_hash",
    "git_revision",
    "build_manifest",
]

#: Manifest schema revision; bump when fields change incompatibly.
SCHEMA_VERSION = 1


def parameter_hash(parameters: Dict) -> str:
    """Stable SHA-256 of a parameter mapping.

    Parameters are serialized as canonical JSON (sorted keys, no
    whitespace variance), so the hash is insensitive to dict ordering
    and identical across processes and platforms for identical values.
    """
    canonical = json.dumps(
        parameters, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision() -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout."""
    env_sha = os.environ.get("GITHUB_SHA")
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if completed.returncode == 0:
            return completed.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return env_sha or "unknown"


@dataclass
class RunManifest:
    """Provenance record for one experiment/campaign run."""

    experiments: List[str]
    parameters: Dict
    parameter_hash: str
    git_sha: str
    python_version: str
    platform: str
    rng_seeds: Dict
    counters: Dict
    metrics: Dict
    wall_seconds: float
    cpu_seconds: float
    created: str
    schema_version: int = SCHEMA_VERSION
    extra: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return asdict(self)

    def write(self, path: str) -> str:
        """Serialize to JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_dict(cls, data: Dict) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def build_manifest(
    experiments: Sequence[str],
    parameters: Optional[Dict] = None,
    rng_seeds: Optional[Dict] = None,
    wall_seconds: float = 0.0,
    cpu_seconds: float = 0.0,
    extra: Optional[Dict] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current process state.

    ``parameters`` should hold every input that selects what the run
    computed (experiment ids, quick flag, job count, sweep overrides);
    the manifest stores both the mapping and its canonical hash.  The
    counter snapshot comes from :mod:`repro.perf`, the full metric
    snapshot from the :data:`repro.obs.metrics.REGISTRY`.
    """
    from repro import perf  # local import: perf imports obs.metrics
    from repro.obs.metrics import REGISTRY

    parameters = dict(parameters or {})
    parameters.setdefault("experiments", list(experiments))
    seeds = dict(rng_seeds or {})
    seeds.setdefault(
        "python_hash_seed", os.environ.get("PYTHONHASHSEED", "random")
    )
    return RunManifest(
        experiments=list(experiments),
        parameters=parameters,
        parameter_hash=parameter_hash(parameters),
        git_sha=git_revision(),
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        rng_seeds=seeds,
        counters=perf.snapshot(),
        metrics=REGISTRY.snapshot(),
        wall_seconds=float(wall_seconds),
        cpu_seconds=float(cpu_seconds),
        created=datetime.now(timezone.utc).isoformat(),
        extra=dict(extra or {}),
    )

"""Discrete torus geometry and communication-graph utilities."""

from repro.topology.distance import (
    per_dimension_random_distance,
    random_traffic_distance,
    random_traffic_distance_exact,
    random_traffic_distance_for_size,
)
from repro.topology.torus import Torus

__all__ = [
    "Torus",
    "random_traffic_distance",
    "random_traffic_distance_exact",
    "random_traffic_distance_for_size",
    "per_dimension_random_distance",
]

"""Average communication distance formulas (Eq 17 and relatives).

Random thread-to-processor mappings produce essentially uniform random
traffic.  For a k-ary n-dimensional torus with no self-messages the paper
uses (Eq 17)

    ``d = n * k**(n+1) / (4 * (k**n - 1))``

which is exact for even radix (each ring's mean one-way distance over all
``k`` offsets, self included, is ``k / 4``) and a close upper bound for
odd radix, where the exact per-ring mean is ``(k**2 - 1) / (4 * k)``.
Both forms are provided, along with the machine-size parameterization the
Section 4 sweeps use (where ``k = N**(1/n)`` is treated as continuous).
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.topology.torus import Torus

__all__ = [
    "random_traffic_distance",
    "random_traffic_distance_exact",
    "random_traffic_distance_for_size",
    "per_dimension_random_distance",
]


def random_traffic_distance(radix: float, dimensions: int) -> float:
    """Eq 17: mean hop distance of uniform random traffic on a torus.

    ``radix`` may be fractional — Section 4's machine-size sweeps treat
    ``k = N**(1/n)`` as continuous.  Must satisfy ``radix > 1`` so that at
    least one distinct pair exists.
    """
    if dimensions < 1:
        raise ParameterError(f"dimensions n must be >= 1, got {dimensions!r}")
    if not radix > 1:
        raise ParameterError(f"radix k must exceed 1, got {radix!r}")
    nodes = radix**dimensions
    return dimensions * radix ** (dimensions + 1) / (4.0 * (nodes - 1.0))


def random_traffic_distance_exact(radix: int, dimensions: int) -> float:
    """Exact mean over ordered distinct pairs, any integer radix.

    Matches Eq 17 exactly for even radix; slightly below it for odd radix
    (odd rings have no antipodal position).  Delegates to the discrete
    topology so the closed form and the geometry cannot drift apart.
    """
    return Torus(radix=radix, dimensions=dimensions).average_pair_distance()


def random_traffic_distance_for_size(processors: float, dimensions: int) -> float:
    """Eq 17 parameterized by machine size ``N`` with ``k = N**(1/n)``.

    This is how the Section 4 figures sweep machine size: the radix is
    the continuous ``n``-th root of ``N``.
    """
    if not processors > 1:
        raise ParameterError(
            f"machine size N must exceed 1, got {processors!r}"
        )
    if dimensions < 1:
        raise ParameterError(f"dimensions n must be >= 1, got {dimensions!r}")
    radix = processors ** (1.0 / dimensions)
    return random_traffic_distance(radix, dimensions)


def per_dimension_random_distance(radix: float) -> float:
    """Mean one-way ring distance ``k / 4`` (even radix, self included)."""
    if not radix > 0:
        raise ParameterError(f"radix k must be positive, got {radix!r}")
    return radix / 4.0

"""Inter-thread communication graphs.

An application's *physical locality* lives in the structure of its
communication graph: how often each pair of threads exchanges data.  This
module provides the graphs the experiments need — above all the paper's
synthetic application, whose 64 threads talk to their neighbors in a
radix-8 two-dimensional torus pattern (Section 3.2) — plus structureless
baselines (uniform random, all-to-all) for contrast.

A graph is represented as a :class:`CommunicationGraph`: a set of weighted
directed edges over thread identifiers ``0 .. threads - 1``, where the
weight of ``(a, b)`` is the relative frequency with which thread ``a``
sends to thread ``b``.  Weights need not be normalized; consumers work
with weighted averages.

Graphs come in two physical layouts sharing one interface: the dict of
``(src, dst) -> weight`` entries that small graphs build edge by edge,
and the array-backed layout (:meth:`CommunicationGraph.from_arrays`)
that skips the per-edge dict entirely — the representation million-node
tori need, where the 2 * n * N edge dict alone would dwarf the arrays.
Iteration helpers (``edges``, ``out_neighbors``, ``total_weight``) are
layout-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.topology.torus import DISTANCE_TABLE_MAX_NODES, Torus

__all__ = [
    "CommunicationGraph",
    "torus_neighbor_graph",
    "ring_graph",
    "all_to_all_graph",
    "nearest_neighbor_grid_graph",
    "butterfly_exchange_graph",
    "star_graph",
    "nine_point_stencil_graph",
]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class CommunicationGraph:
    """Weighted directed communication pattern over ``threads`` threads."""

    threads: int
    weights: Dict[Edge, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise TopologyError(f"threads must be >= 1, got {self.threads!r}")
        for (src, dst), weight in self.weights.items():
            if not 0 <= src < self.threads or not 0 <= dst < self.threads:
                raise TopologyError(
                    f"edge ({src}, {dst}) outside thread range 0..{self.threads - 1}"
                )
            if src == dst:
                raise TopologyError(f"self-edge on thread {src} is not allowed")
            if not weight > 0:
                raise TopologyError(
                    f"edge ({src}, {dst}) must have positive weight, got {weight!r}"
                )

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """All (source, destination, weight) triples, in edge order."""
        if self.weights:
            for (src, dst), weight in self.weights.items():
                yield src, dst, weight
            return
        src, dst, weight = self.edge_arrays()
        yield from zip(src.tolist(), dst.tolist(), weight.tolist())

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        if self.weights:
            return len(self.weights)
        return self.edge_arrays()[0].size

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (the normalization constant)."""
        if self.weights:
            return sum(self.weights.values())
        return float(self.edge_arrays()[2].sum())

    def out_neighbors(self, thread: int) -> Iterator[Tuple[int, float]]:
        """Destinations and weights of a thread's outgoing edges."""
        if not 0 <= thread < self.threads:
            raise TopologyError(
                f"thread {thread!r} outside 0..{self.threads - 1}"
            )
        if self.weights:
            for (src, dst), weight in self.weights.items():
                if src == thread:
                    yield dst, weight
            return
        src, dst, weight = self.edge_arrays()
        for index in np.nonzero(src == thread)[0]:
            yield int(dst[index]), float(weight[index])

    def degree_out(self, thread: int) -> int:
        """Number of distinct destinations a thread sends to."""
        return sum(1 for _ in self.out_neighbors(thread))

    # ------------------------------------------------------------------
    # Array views (cached; the graph is frozen so they never go stale).
    # ------------------------------------------------------------------

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, weight)`` ndarrays over all edges, in edge order.

        Edge order is the (deterministic) insertion order of ``weights``;
        the arrays are read-only and built once per graph instance.  This
        is the gather-friendly view the vectorized evaluation and
        annealing kernels index the torus distance table with.
        """
        cached = self.__dict__.get("_edge_arrays")
        if cached is None:
            count = len(self.weights)
            src = np.empty(count, dtype=np.intp)
            dst = np.empty(count, dtype=np.intp)
            weight = np.empty(count, dtype=np.float64)
            for index, ((s, d), w) in enumerate(self.weights.items()):
                src[index] = s
                dst[index] = d
                weight[index] = w
            for array in (src, dst, weight):
                array.setflags(write=False)
            cached = (src, dst, weight)
            object.__setattr__(self, "_edge_arrays", cached)
        return cached

    def incident_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetrized per-thread adjacency in CSR form.

        Returns ``(indptr, neighbors, weights)``: the threads incident to
        edges touching thread ``t`` (either direction) are
        ``neighbors[indptr[t]:indptr[t + 1]]`` with matching ``weights``.
        Each directed edge contributes one entry to *both* endpoints'
        rows, ordered by edge index within a row — exactly the adjacency
        the swap optimizers need to price a move in two gathers.
        """
        cached = self.__dict__.get("_incident_csr")
        if cached is None:
            src, dst, weight = self.edge_arrays()
            count = src.size
            # Interleave (src, dst) per edge so a stable sort reproduces
            # the edge-order-within-thread layout of an append loop.
            owners = np.empty(2 * count, dtype=np.intp)
            others = np.empty(2 * count, dtype=np.intp)
            both = np.empty(2 * count, dtype=np.float64)
            owners[0::2], owners[1::2] = src, dst
            others[0::2], others[1::2] = dst, src
            both[0::2], both[1::2] = weight, weight
            order = np.argsort(owners, kind="stable")
            neighbors = others[order]
            weights = both[order]
            indptr = np.zeros(self.threads + 1, dtype=np.intp)
            np.cumsum(np.bincount(owners, minlength=self.threads), out=indptr[1:])
            for array in (indptr, neighbors, weights):
                array.setflags(write=False)
            cached = (indptr, neighbors, weights)
            object.__setattr__(self, "_incident_csr", cached)
        return cached

    @classmethod
    def from_edges(
        cls, threads: int, edges: Iterable[Edge], weight: float = 1.0
    ) -> "CommunicationGraph":
        """Uniformly weighted graph from an edge iterable."""
        weights = {}
        for edge in edges:
            weights[edge] = weights.get(edge, 0.0) + weight
        return cls(threads=threads, weights=weights)

    @classmethod
    def from_arrays(
        cls,
        threads: int,
        sources,
        destinations,
        weights=None,
    ) -> "CommunicationGraph":
        """Array-backed graph that never materializes the edge dict.

        The large-N constructor: edge endpoints (and optional weights,
        default 1.0) are validated vectorized and installed directly as
        the graph's :meth:`edge_arrays` view, so a million-node torus
        neighbor graph costs three ndarrays instead of millions of dict
        entries and tuples.  Edges must be distinct — the dict layout
        would have *accumulated* duplicate weights, so duplicates here
        are an error rather than a silent behavioral difference.
        """
        src = np.array(sources, dtype=np.intp)
        dst = np.array(destinations, dtype=np.intp)
        if src.ndim != 1 or dst.ndim != 1 or src.size != dst.size:
            raise TopologyError(
                "sources and destinations must be 1-D arrays of equal length"
            )
        if weights is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.array(weights, dtype=np.float64)
            if weight.shape != src.shape:
                raise TopologyError(
                    f"weights shape {weight.shape} does not match "
                    f"{src.size} edges"
                )
        if src.size:
            if min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= threads:
                raise TopologyError(
                    f"edge endpoints outside thread range 0..{threads - 1}"
                )
            if np.any(src == dst):
                offender = int(src[np.argmax(src == dst)])
                raise TopologyError(
                    f"self-edge on thread {offender} is not allowed"
                )
            if not np.all(weight > 0):
                raise TopologyError("all edge weights must be positive")
            keys = np.sort(src * np.intp(threads) + dst)
            if keys.size > 1 and np.any(keys[1:] == keys[:-1]):
                raise TopologyError("duplicate edges are not allowed")
        graph = cls(threads=threads, weights={})
        for array in (src, dst, weight):
            array.setflags(write=False)
        object.__setattr__(graph, "_edge_arrays", (src, dst, weight))
        return graph


def torus_neighbor_graph(radix: int, dimensions: int) -> CommunicationGraph:
    """The paper's synthetic application pattern (Section 3.2).

    Thread ``i`` communicates with each of its torus neighbors (reads
    every neighbor's state word each iteration), so the communication
    graph is exactly the k-ary n-cube adjacency — which is why an ideal
    mapping onto the same-shape machine needs only single-hop messages.
    """
    torus = Torus(radix=radix, dimensions=dimensions)
    count = torus.node_count
    if count <= DISTANCE_TABLE_MAX_NODES:
        edges = []
        for node in torus.nodes():
            for neighbor in torus.neighbors(node):
                edges.append((node, neighbor))
        return CommunicationGraph.from_edges(count, edges)
    # Large tori skip the per-edge dict: build the adjacency as arrays in
    # exactly the order the loop above would have produced — node-major,
    # within each node [dim 0 +1, dim 0 -1, dim 1 +1, ...], radix-2 rings
    # contributing only their single (coinciding) neighbor.
    coords = torus.coordinate_array()
    nodes = np.arange(count, dtype=np.intp)
    per_node = dimensions * (2 if radix > 2 else 1)
    dst = np.empty((count, per_node), dtype=np.intp)
    column = 0
    stride = 1
    for dim in range(dimensions):
        coord = coords[dim]
        dst[:, column] = np.where(
            coord == radix - 1, nodes - (radix - 1) * stride, nodes + stride
        )
        column += 1
        if radix > 2:
            dst[:, column] = np.where(
                coord == 0, nodes + (radix - 1) * stride, nodes - stride
            )
            column += 1
        stride *= radix
    return CommunicationGraph.from_arrays(
        count, np.repeat(nodes, per_node), dst.reshape(-1)
    )


def ring_graph(threads: int, bidirectional: bool = True) -> CommunicationGraph:
    """Threads arranged in a ring (a 1-D torus pattern)."""
    if threads < 2:
        raise TopologyError(f"a ring needs >= 2 threads, got {threads!r}")
    edges = []
    for thread in range(threads):
        succ = (thread + 1) % threads
        if succ != thread:
            edges.append((thread, succ))
            if bidirectional:
                edges.append((succ, thread))
    return CommunicationGraph.from_edges(threads, edges)


def all_to_all_graph(threads: int) -> CommunicationGraph:
    """Every distinct pair communicates equally — zero physical locality.

    Section 1.1's definition: "an application in which all distinct pairs
    of threads communicate equally has no physical locality."
    """
    if threads < 2:
        raise TopologyError(f"all-to-all needs >= 2 threads, got {threads!r}")
    edges = [
        (src, dst)
        for src in range(threads)
        for dst in range(threads)
        if src != dst
    ]
    return CommunicationGraph.from_edges(threads, edges)


def nearest_neighbor_grid_graph(rows: int, cols: int) -> CommunicationGraph:
    """Non-wrapping 2-D grid neighbors (stencil-style applications)."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid must be >= 1x1, got {rows}x{cols}")
    edges = []
    for row in range(rows):
        for col in range(cols):
            thread = row * cols + col
            if col + 1 < cols:
                right = thread + 1
                edges.append((thread, right))
                edges.append((right, thread))
            if row + 1 < rows:
                down = thread + cols
                edges.append((thread, down))
                edges.append((down, thread))
    return CommunicationGraph.from_edges(rows * cols, edges)


def butterfly_exchange_graph(threads: int) -> CommunicationGraph:
    """FFT butterfly pattern: thread ``i`` exchanges with ``i XOR 2^s``.

    All ``log2(threads)`` stages are overlaid into one weighted graph
    (each thread talks to every bit-flip partner equally) — the
    communication structure of an in-place FFT or hypercube algorithm.
    ``threads`` must be a power of two with at least two threads.
    """
    bits = threads.bit_length() - 1
    if threads < 2 or 2**bits != threads:
        raise TopologyError(
            f"butterfly exchange needs a power-of-two thread count >= 2, "
            f"got {threads}"
        )
    edges = []
    for thread in range(threads):
        for stage in range(bits):
            edges.append((thread, thread ^ (1 << stage)))
    return CommunicationGraph.from_edges(threads, edges)


def star_graph(threads: int, center: int = 0) -> CommunicationGraph:
    """Master-worker pattern: every thread exchanges with one center.

    The convergecast structure behind reductions, work queues, and
    hot locks; by construction it has no exploitable physical locality
    beyond placing workers near the center.
    """
    if threads < 2:
        raise TopologyError(f"a star needs >= 2 threads, got {threads!r}")
    if not 0 <= center < threads:
        raise TopologyError(
            f"center {center!r} outside 0..{threads - 1}"
        )
    edges = []
    for thread in range(threads):
        if thread != center:
            edges.append((thread, center))
            edges.append((center, thread))
    return CommunicationGraph.from_edges(threads, edges)


def nine_point_stencil_graph(rows: int, cols: int) -> CommunicationGraph:
    """Non-wrapping 2-D grid with diagonal neighbors (9-point stencil).

    The communication pattern of higher-order finite-difference and
    image-processing kernels; denser than the 5-point stencil but still
    strongly local.
    """
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid must be >= 1x1, got {rows}x{cols}")
    edges = []
    for row in range(rows):
        for col in range(cols):
            thread = row * cols + col
            for d_row in (-1, 0, 1):
                for d_col in (-1, 0, 1):
                    if d_row == 0 and d_col == 0:
                        continue
                    n_row, n_col = row + d_row, col + d_col
                    if 0 <= n_row < rows and 0 <= n_col < cols:
                        edges.append((thread, n_row * cols + n_col))
    return CommunicationGraph.from_edges(rows * cols, edges)

"""k-ary n-dimensional torus topology.

The paper's machines are k-ary n-cubes with wraparound (torus) links and
separate unidirectional channels in both directions of every dimension
(Section 3.1 describes the 64-node radix-8 two-dimensional instance).
This module provides the exact discrete geometry the analytical model
abstracts: node coordinates, neighbor relationships, e-cube routes, and
hop distances.

Nodes are identified by integers ``0 .. k**n - 1``; the coordinate of node
``i`` in dimension ``j`` is digit ``j`` of ``i`` written radix ``k``
(dimension 0 is the least significant digit).  E-cube routing resolves
dimensions in increasing order, taking the shorter way around each ring
(ties at exactly half-way go in the positive direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TopologyError

__all__ = ["Torus"]


@dataclass(frozen=True)
class Torus:
    """A k-ary n-cube torus.

    Parameters
    ----------
    radix:
        ``k``, nodes per dimension; must be >= 1.
    dimensions:
        ``n``; must be >= 1.
    """

    radix: int
    dimensions: int

    def __post_init__(self) -> None:
        if self.radix < 1:
            raise TopologyError(f"radix k must be >= 1, got {self.radix!r}")
        if self.dimensions < 1:
            raise TopologyError(
                f"dimensions n must be >= 1, got {self.dimensions!r}"
            )

    # ------------------------------------------------------------------
    # Size and identity.
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Total number of nodes ``N = k**n``."""
        return self.radix**self.dimensions

    def nodes(self) -> range:
        """All node identifiers."""
        return range(self.node_count)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise TopologyError(
                f"node {node!r} outside 0..{self.node_count - 1}"
            )

    # ------------------------------------------------------------------
    # Coordinates.
    # ------------------------------------------------------------------

    def coordinates(self, node: int) -> Tuple[int, ...]:
        """Radix-k digits of ``node``, dimension 0 first."""
        self._check_node(node)
        coords = []
        remaining = node
        for _ in range(self.dimensions):
            coords.append(remaining % self.radix)
            remaining //= self.radix
        return tuple(coords)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node identifier for a coordinate tuple."""
        if len(coords) != self.dimensions:
            raise TopologyError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        node = 0
        for dim in reversed(range(self.dimensions)):
            coord = coords[dim]
            if not 0 <= coord < self.radix:
                raise TopologyError(
                    f"coordinate {coord!r} outside 0..{self.radix - 1} "
                    f"in dimension {dim}"
                )
            node = node * self.radix + coord
        return node

    # ------------------------------------------------------------------
    # Distance.
    # ------------------------------------------------------------------

    def ring_distance(self, a: int, b: int) -> int:
        """Shortest hop count between two positions on one ring."""
        delta = abs(a - b)
        return min(delta, self.radix - delta)

    def distance(self, source: int, destination: int) -> int:
        """Shortest torus hop distance between two nodes."""
        src = self.coordinates(source)
        dst = self.coordinates(destination)
        return sum(self.ring_distance(a, b) for a, b in zip(src, dst))

    def distance_vector(self, source: int, destination: int) -> Tuple[int, ...]:
        """Signed per-dimension offsets along the e-cube route.

        Positive entries mean travel in the increasing-coordinate
        direction; magnitudes sum to :meth:`distance`.  A tie (offset of
        exactly ``k/2`` on an even ring) resolves positive.
        """
        src = self.coordinates(source)
        dst = self.coordinates(destination)
        offsets = []
        for a, b in zip(src, dst):
            forward = (b - a) % self.radix
            backward = self.radix - forward
            if forward == 0:
                offsets.append(0)
            elif forward <= backward:
                offsets.append(forward)
            else:
                offsets.append(-backward)
        return tuple(offsets)

    # ------------------------------------------------------------------
    # Neighborhood and routes.
    # ------------------------------------------------------------------

    def neighbor(self, node: int, dimension: int, step: int) -> int:
        """Node one hop away along ``dimension`` (``step`` = +1 or -1)."""
        if not 0 <= dimension < self.dimensions:
            raise TopologyError(
                f"dimension {dimension!r} outside 0..{self.dimensions - 1}"
            )
        if step not in (1, -1):
            raise TopologyError(f"step must be +1 or -1, got {step!r}")
        coords = list(self.coordinates(node))
        coords[dimension] = (coords[dimension] + step) % self.radix
        return self.node_at(coords)

    def neighbors(self, node: int) -> List[int]:
        """All distinct single-hop neighbors of ``node``.

        On a radix-2 ring the +1 and -1 neighbors coincide; duplicates
        are removed, and on a radix-1 ring a node has no neighbors.
        """
        result: List[int] = []
        for dim in range(self.dimensions):
            for step in (1, -1):
                if self.radix == 1:
                    continue
                candidate = self.neighbor(node, dim, step)
                if candidate != node and candidate not in result:
                    result.append(candidate)
        return result

    def ecube_route(self, source: int, destination: int) -> List[int]:
        """Nodes visited by e-cube routing, inclusive of both endpoints.

        Dimensions are corrected in increasing order; within a dimension
        the route takes the shorter ring direction (positive on ties).
        """
        self._check_node(destination)
        route = [source]
        coords = list(self.coordinates(source))
        offsets = self.distance_vector(source, destination)
        for dim, offset in enumerate(offsets):
            step = 1 if offset > 0 else -1
            for _ in range(abs(offset)):
                coords[dim] = (coords[dim] + step) % self.radix
                route.append(self.node_at(coords))
        return route

    def route_hops(
        self, source: int, destination: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Channels used by the e-cube route as (node, dimension, step)."""
        coords = list(self.coordinates(source))
        offsets = self.distance_vector(source, destination)
        for dim, offset in enumerate(offsets):
            step = 1 if offset > 0 else -1
            for _ in range(abs(offset)):
                yield self.node_at(coords), dim, step
                coords[dim] = (coords[dim] + step) % self.radix

    # ------------------------------------------------------------------
    # Aggregate geometry.
    # ------------------------------------------------------------------

    def average_pair_distance(self, include_self: bool = False) -> float:
        """Exact mean distance over ordered node pairs.

        With ``include_self=False`` (the paper's convention: "nodes never
        send messages to themselves") the average runs over the
        ``N * (N - 1)`` ordered pairs of distinct nodes.  Computed from
        per-ring distance sums in O(k * n), not by pair enumeration.
        """
        # Sum of ring distances from a fixed position to all k positions
        # (including itself at 0) is the same for every position.
        ring_sum = sum(self.ring_distance(0, other) for other in range(self.radix))
        nodes = self.node_count
        # Each dimension contributes ring_sum * k**(n-1) per source over
        # all destinations (the other dimensions range freely).
        total = self.dimensions * ring_sum * self.radix ** (self.dimensions - 1)
        if include_self:
            return total / nodes
        if nodes == 1:
            raise TopologyError("no distinct pairs in a single-node torus")
        return total * nodes / (nodes * (nodes - 1))

    def diameter(self) -> int:
        """Maximum shortest-path distance between any two nodes."""
        return self.dimensions * (self.radix // 2)

"""k-ary n-dimensional torus topology.

The paper's machines are k-ary n-cubes with wraparound (torus) links and
separate unidirectional channels in both directions of every dimension
(Section 3.1 describes the 64-node radix-8 two-dimensional instance).
This module provides the exact discrete geometry the analytical model
abstracts: node coordinates, neighbor relationships, e-cube routes, and
hop distances.

Nodes are identified by integers ``0 .. k**n - 1``; the coordinate of node
``i`` in dimension ``j`` is digit ``j`` of ``i`` written radix ``k``
(dimension 0 is the least significant digit).  E-cube routing resolves
dimensions in increasing order, taking the shorter way around each ring
(ties at exactly half-way go in the positive direction).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = [
    "Torus",
    "DISTANCE_TABLE_MAX_NODES",
    "DELTA_BACKEND_MAX_NODES",
    "DistanceBackend",
    "DenseBackend",
    "DeltaBackend",
    "DigitBackend",
    "distance_backend",
    "seed_distance_table",
]

#: Largest torus (in nodes) for which :meth:`Torus.distance_table` will
#: materialize the full N x N hop-distance table.  At the default cap the
#: table costs ``2 * 4096**2`` bytes = 32 MiB (entries are int16); above
#: it the table accessors return ``None`` and callers fall back to
#: on-the-fly vectorized distances (:meth:`Torus.pairwise_distance`).
DISTANCE_TABLE_MAX_NODES = 4096

#: Largest torus (in nodes) for which :func:`distance_backend` keeps the
#: cached ``(n, N)`` coordinate array resident for delta-compressed
#: gathers.  At the cap the coordinates cost ``4 * n * 2**24`` bytes
#: (64 MiB per dimension); beyond it the backend degrades to the
#: zero-extra-memory digit walk of :meth:`Torus.pairwise_distance`.
DELTA_BACKEND_MAX_NODES = 1 << 24


@functools.lru_cache(maxsize=64)
def _coordinate_array(radix: int, dimensions: int) -> np.ndarray:
    """Per-dimension coordinates of every node: shape (n, N), read-only."""
    count = radix**dimensions
    coords = np.empty((dimensions, count), dtype=np.int32)
    remaining = np.arange(count, dtype=np.int64)
    for dim in range(dimensions):
        coords[dim] = remaining % radix
        remaining //= radix
    coords.setflags(write=False)
    return coords


@functools.lru_cache(maxsize=64)
def _ring_distance_row(radix: int) -> np.ndarray:
    """Ring distance of every coordinate delta: ``row[d] = min(d, k - d)``.

    Indexed modulo ``k``, so a *signed* delta ``a - b`` gathers the right
    distance via ``np.take(..., mode="wrap")`` — ``row[-d]`` and
    ``row[d]`` coincide because ring distance is symmetric.  This is the
    whole delta-compressed distance table: ``n`` such rows (O(n * k)
    memory) replace the dense N x N table for arbitrarily large tori.
    """
    positions = np.arange(radix, dtype=np.int64)
    row = np.minimum(positions, radix - positions)
    row.setflags(write=False)
    return row


#: Pre-seeded dense distance tables, keyed ``(radix, dimensions)``.
#: Worker-pool workers on spawn platforms install the parent's table
#: here (a read-only view over shared memory) via
#: :func:`seed_distance_table`, so attaching one shared segment replaces
#: an O(N^2) per-worker rebuild.  Checked before the lru-cached builder.
_SEEDED_TABLES: dict = {}


def seed_distance_table(
    radix: int, dimensions: int, table: np.ndarray
) -> None:
    """Install ``table`` as the dense distance table for this torus shape.

    The table must be the same array :func:`_distance_table` would
    build (shape ``(k**n, k**n)``); callers that ship tables between
    processes are responsible for that fidelity.  Pass-through views
    over shared memory are the intended use.
    """
    count = radix**dimensions
    if table.shape != (count, count):
        raise TopologyError(
            f"seeded distance table for radix={radix} dims={dimensions} "
            f"must have shape {(count, count)}, got {table.shape}"
        )
    _SEEDED_TABLES[(radix, dimensions)] = table


def _distance_table(radix: int, dimensions: int) -> np.ndarray:
    """Full N x N torus hop-distance table, seeded or locally built."""
    seeded = _SEEDED_TABLES.get((radix, dimensions))
    if seeded is not None:
        return seeded
    return _build_distance_table(radix, dimensions)


@functools.lru_cache(maxsize=4)
def _build_distance_table(radix: int, dimensions: int) -> np.ndarray:
    coords = _coordinate_array(radix, dimensions)
    count = radix**dimensions
    table = np.zeros((count, count), dtype=np.int16)
    for dim in range(dimensions):
        ring = coords[dim].astype(np.int16)
        delta = np.abs(ring[:, None] - ring[None, :])
        np.minimum(delta, radix - delta, out=delta)
        table += delta
    table.setflags(write=False)
    return table


@dataclass(frozen=True)
class Torus:
    """A k-ary n-cube torus.

    Parameters
    ----------
    radix:
        ``k``, nodes per dimension; must be >= 1.
    dimensions:
        ``n``; must be >= 1.
    """

    radix: int
    dimensions: int

    def __post_init__(self) -> None:
        if self.radix < 1:
            raise TopologyError(f"radix k must be >= 1, got {self.radix!r}")
        if self.dimensions < 1:
            raise TopologyError(
                f"dimensions n must be >= 1, got {self.dimensions!r}"
            )

    # ------------------------------------------------------------------
    # Size and identity.
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Total number of nodes ``N = k**n``."""
        return self.radix**self.dimensions

    def nodes(self) -> range:
        """All node identifiers."""
        return range(self.node_count)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise TopologyError(
                f"node {node!r} outside 0..{self.node_count - 1}"
            )

    # ------------------------------------------------------------------
    # Coordinates.
    # ------------------------------------------------------------------

    def coordinates(self, node: int) -> Tuple[int, ...]:
        """Radix-k digits of ``node``, dimension 0 first."""
        self._check_node(node)
        coords = []
        remaining = node
        for _ in range(self.dimensions):
            coords.append(remaining % self.radix)
            remaining //= self.radix
        return tuple(coords)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node identifier for a coordinate tuple."""
        if len(coords) != self.dimensions:
            raise TopologyError(
                f"expected {self.dimensions} coordinates, got {len(coords)}"
            )
        node = 0
        for dim in reversed(range(self.dimensions)):
            coord = coords[dim]
            if not 0 <= coord < self.radix:
                raise TopologyError(
                    f"coordinate {coord!r} outside 0..{self.radix - 1} "
                    f"in dimension {dim}"
                )
            node = node * self.radix + coord
        return node

    # ------------------------------------------------------------------
    # Distance.
    # ------------------------------------------------------------------

    def ring_distance(self, a: int, b: int) -> int:
        """Shortest hop count between two positions on one ring."""
        delta = abs(a - b)
        return min(delta, self.radix - delta)

    def distance(self, source: int, destination: int) -> int:
        """Shortest torus hop distance between two nodes."""
        src = self.coordinates(source)
        dst = self.coordinates(destination)
        return sum(self.ring_distance(a, b) for a, b in zip(src, dst))

    def distance_vector(self, source: int, destination: int) -> Tuple[int, ...]:
        """Signed per-dimension offsets along the e-cube route.

        Positive entries mean travel in the increasing-coordinate
        direction; magnitudes sum to :meth:`distance`.  A tie (offset of
        exactly ``k/2`` on an even ring) resolves positive.
        """
        src = self.coordinates(source)
        dst = self.coordinates(destination)
        offsets = []
        for a, b in zip(src, dst):
            forward = (b - a) % self.radix
            backward = self.radix - forward
            if forward == 0:
                offsets.append(0)
            elif forward <= backward:
                offsets.append(forward)
            else:
                offsets.append(-backward)
        return tuple(offsets)

    # ------------------------------------------------------------------
    # Vectorized distance kernels.
    # ------------------------------------------------------------------

    def coordinate_array(self) -> np.ndarray:
        """Read-only ``(dimensions, N)`` array of every node's coordinates.

        ``coordinate_array()[j, i] == coordinates(i)[j]``; cached per
        torus shape and shared between instances.
        """
        return _coordinate_array(self.radix, self.dimensions)

    def distance_table(self, max_nodes: Optional[int] = None) -> Optional[np.ndarray]:
        """The full ``N x N`` hop-distance table, or ``None`` if too big.

        ``table[a, b] == distance(a, b)`` for every node pair; the array
        is read-only, lazily built once per torus shape, and cached.  The
        memory guard: tori with more than ``max_nodes`` nodes (default
        :data:`DISTANCE_TABLE_MAX_NODES`) return ``None`` instead of
        materializing the quadratic table — callers fall back to
        :meth:`pairwise_distance`, which needs only O(pairs) memory.
        """
        cap = DISTANCE_TABLE_MAX_NODES if max_nodes is None else max_nodes
        if self.node_count > cap:
            return None
        return _distance_table(self.radix, self.dimensions)

    def pairwise_distance(self, sources, destinations) -> np.ndarray:
        """Elementwise torus distances for arrays of node identifiers.

        Broadcasts ``sources`` against ``destinations`` and returns the
        hop distance of every pair without touching the N x N table, so
        it works on tori of any size.  Matches :meth:`distance` exactly.
        """
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(destinations, dtype=np.int64)
        for name, nodes in (("sources", src), ("destinations", dst)):
            if nodes.size and (nodes.min() < 0 or nodes.max() >= self.node_count):
                raise TopologyError(
                    f"{name} contain node ids outside 0..{self.node_count - 1}"
                )
        total = np.zeros(np.broadcast(src, dst).shape, dtype=np.int64)
        src = src.copy()
        dst = dst.copy()
        for _ in range(self.dimensions):
            delta = np.abs(src % self.radix - dst % self.radix)
            total += np.minimum(delta, self.radix - delta)
            src //= self.radix
            dst //= self.radix
        return total

    # ------------------------------------------------------------------
    # Neighborhood and routes.
    # ------------------------------------------------------------------

    def neighbor(self, node: int, dimension: int, step: int) -> int:
        """Node one hop away along ``dimension`` (``step`` = +1 or -1)."""
        if not 0 <= dimension < self.dimensions:
            raise TopologyError(
                f"dimension {dimension!r} outside 0..{self.dimensions - 1}"
            )
        if step not in (1, -1):
            raise TopologyError(f"step must be +1 or -1, got {step!r}")
        coords = list(self.coordinates(node))
        coords[dimension] = (coords[dimension] + step) % self.radix
        return self.node_at(coords)

    def neighbors(self, node: int) -> List[int]:
        """All distinct single-hop neighbors of ``node``.

        On a radix-2 ring the +1 and -1 neighbors coincide; duplicates
        are removed, and on a radix-1 ring a node has no neighbors.
        """
        result: List[int] = []
        for dim in range(self.dimensions):
            for step in (1, -1):
                if self.radix == 1:
                    continue
                candidate = self.neighbor(node, dim, step)
                if candidate != node and candidate not in result:
                    result.append(candidate)
        return result

    def ecube_route(self, source: int, destination: int) -> List[int]:
        """Nodes visited by e-cube routing, inclusive of both endpoints.

        Dimensions are corrected in increasing order; within a dimension
        the route takes the shorter ring direction (positive on ties).
        """
        self._check_node(destination)
        route = [source]
        coords = list(self.coordinates(source))
        offsets = self.distance_vector(source, destination)
        for dim, offset in enumerate(offsets):
            step = 1 if offset > 0 else -1
            for _ in range(abs(offset)):
                coords[dim] = (coords[dim] + step) % self.radix
                route.append(self.node_at(coords))
        return route

    def route_hops(
        self, source: int, destination: int
    ) -> Iterator[Tuple[int, int, int]]:
        """Channels used by the e-cube route as (node, dimension, step)."""
        coords = list(self.coordinates(source))
        offsets = self.distance_vector(source, destination)
        for dim, offset in enumerate(offsets):
            step = 1 if offset > 0 else -1
            for _ in range(abs(offset)):
                yield self.node_at(coords), dim, step
                coords[dim] = (coords[dim] + step) % self.radix

    # ------------------------------------------------------------------
    # Aggregate geometry.
    # ------------------------------------------------------------------

    def average_pair_distance(self, include_self: bool = False) -> float:
        """Exact mean distance over ordered node pairs.

        With ``include_self=False`` (the paper's convention: "nodes never
        send messages to themselves") the average runs over the
        ``N * (N - 1)`` ordered pairs of distinct nodes.  Computed in
        closed form, not by ring or pair enumeration.
        """
        # Sum of ring distances from a fixed position to all k positions
        # (including itself at 0) is the same for every position:
        # k**2 / 4 for even radix, (k**2 - 1) / 4 for odd — both are
        # exactly floor(k**2 / 4).
        ring_sum = self.radix * self.radix // 4
        nodes = self.node_count
        # Each dimension contributes ring_sum * k**(n-1) per source over
        # all destinations (the other dimensions range freely).
        total = self.dimensions * ring_sum * self.radix ** (self.dimensions - 1)
        if include_self:
            return total / nodes
        if nodes == 1:
            raise TopologyError("no distinct pairs in a single-node torus")
        return total * nodes / (nodes * (nodes - 1))

    def diameter(self) -> int:
        """Maximum shortest-path distance between any two nodes."""
        return self.dimensions * (self.radix // 2)


# ----------------------------------------------------------------------
# Distance backends.
#
# Every consumer that prices hop distances in bulk — the swap engine,
# mapping evaluation, the annealers — goes through one of these.  The
# accessor :func:`distance_backend` is the single place where the memory
# guard is consulted, fixing the historical inconsistency where
# ``SwapEngine`` cached the guard decision at construction while
# ``evaluate.py`` re-queried it per call.
# ----------------------------------------------------------------------


class DistanceBackend:
    """Uniform bulk-distance interface over one torus shape.

    ``pairwise(sources, destinations)`` broadcasts two integer node-id
    arrays and returns their exact hop distances.  All backends are
    integer-exact and agree bit for bit with :meth:`Torus.distance`; they
    differ only in memory/time trade-offs.  ``table`` is the dense
    N x N array when this backend holds one, else ``None``.
    """

    kind: str = "abstract"

    def __init__(self, torus: Torus):
        self.torus = torus
        self.table: Optional[np.ndarray] = None

    def pairwise(self, sources, destinations) -> np.ndarray:
        raise NotImplementedError


class DenseBackend(DistanceBackend):
    """Small-N fast path: one gather from the cached N x N table."""

    kind = "dense"

    def __init__(self, torus: Torus, table: np.ndarray):
        super().__init__(torus)
        self.table = table

    def pairwise(self, sources, destinations) -> np.ndarray:
        return self.table[sources, destinations]


class DeltaBackend(DistanceBackend):
    """Delta-compressed path: per-dimension ring rows over coordinates.

    Memory is O(n * k) for the ring rows plus the O(n * N) coordinate
    array the vectorized kernels already share; distances are composed
    by one wrap-mode gather per dimension on the signed coordinate
    delta.  Exact for every (k, n), including the even-radix half-way
    ties (``min(d, k - d)`` is direction-free).
    """

    kind = "delta"

    def __init__(self, torus: Torus):
        super().__init__(torus)
        self._coords = torus.coordinate_array()
        self._ring = _ring_distance_row(torus.radix)

    def pairwise(self, sources, destinations) -> np.ndarray:
        src = np.asarray(sources, dtype=np.intp)
        dst = np.asarray(destinations, dtype=np.intp)
        coords = self._coords
        ring = self._ring
        total = np.zeros(np.broadcast(src, dst).shape, dtype=np.int64)
        for dim in range(self.torus.dimensions):
            row = coords[dim]
            total += np.take(ring, row[src] - row[dst], mode="wrap")
        return total


class DigitBackend(DistanceBackend):
    """Unbounded fallback: the O(1)-extra-memory digit walk."""

    kind = "digit"

    def pairwise(self, sources, destinations) -> np.ndarray:
        return self.torus.pairwise_distance(sources, destinations)


def distance_backend(torus: Torus) -> DistanceBackend:
    """The bulk-distance backend appropriate for ``torus``'s size.

    The *only* place guard behavior is decided: tori within
    :data:`DISTANCE_TABLE_MAX_NODES` get the dense table (also the
    parity oracle for the compressed path), tori within
    :data:`DELTA_BACKEND_MAX_NODES` get the delta-compressed engine, and
    anything larger gets the digit walk.  ``torus.distance_table()`` is
    consulted per call, so runtime adjustments to the module-level cap
    (as the guard tests do) take effect immediately.
    """
    table = torus.distance_table()
    if table is not None:
        return DenseBackend(torus, table)
    if torus.node_count <= DELTA_BACKEND_MAX_NODES:
        return DeltaBackend(torus)
    return DigitBackend(torus)

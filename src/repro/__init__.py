"""repro — reproduction of Johnson, "The Impact of Communication Locality
on Large-Scale Multiprocessor Performance" (ISCA 1992).

The package provides:

* :mod:`repro.core` — the paper's analytical modeling framework
  (application, transaction, network models; combined-model solver;
  locality-gain metrics and asymptotic results);
* :mod:`repro.topology` / :mod:`repro.mapping` — discrete torus geometry,
  communication graphs, and thread-to-processor mappings;
* :mod:`repro.sim` — a cycle-level multiprocessor simulator (multithreaded
  processors, directory cache coherence, wormhole-routed torus network)
  used to validate the model as Section 3 of the paper does;
* :mod:`repro.workload` — the paper's synthetic torus-neighbor application
  and other traffic generators;
* :mod:`repro.analysis` — curve fitting and model-vs-simulation comparison;
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import alewife_system

    system = alewife_system(contexts=2)
    point = system.operating_point(distance=4.06)   # random mapping, 64 nodes
    print(point.message_latency, point.per_hop_latency)
    print(system.expected_gain(1000).gain)           # ~2, per the paper
"""

from repro.core import (
    ApplicationModel,
    GainResult,
    NodeModel,
    OperatingPoint,
    SystemModel,
    TorusNetworkModel,
    TransactionModel,
    expected_gain,
    limiting_per_hop_latency,
    solve,
)
from repro.errors import (
    ConvergenceError,
    MappingError,
    ParameterError,
    ProtocolError,
    ReproError,
    SaturationError,
    SimulationError,
    TopologyError,
)
from repro.mapping import (
    Mapping,
    anneal_chains,
    anneal_mapping,
    average_distance,
    paper_mapping_suite,
)
from repro.topology import Torus, random_traffic_distance
from repro.units import ALEWIFE_CLOCKS, EQUAL_CLOCKS, ClockDomain

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core modeling framework
    "ApplicationModel",
    "TransactionModel",
    "TorusNetworkModel",
    "NodeModel",
    "SystemModel",
    "OperatingPoint",
    "GainResult",
    "solve",
    "expected_gain",
    "limiting_per_hop_latency",
    # geometry and mappings
    "Torus",
    "random_traffic_distance",
    "Mapping",
    "average_distance",
    "paper_mapping_suite",
    "anneal_mapping",
    "anneal_chains",
    # clocks
    "ClockDomain",
    "ALEWIFE_CLOCKS",
    "EQUAL_CLOCKS",
    # errors
    "ReproError",
    "ParameterError",
    "SaturationError",
    "ConvergenceError",
    "TopologyError",
    "MappingError",
    "SimulationError",
    "ProtocolError",
    # calibrated systems (populated lazily to avoid import cycles)
    "alewife_system",
]


def alewife_system(contexts: float = 1.0, **overrides):
    """The calibrated Alewife-like system of Section 3 (lazy import).

    See :func:`repro.experiments.alewife.alewife_system` for the full
    parameter documentation.
    """
    from repro.experiments.alewife import alewife_system as _factory

    return _factory(contexts=contexts, **overrides)

"""Empirical machine-size scaling: the Figure 6 trend, simulated.

Figure 6 is an analytical sweep; this experiment checks its premise in
the cycle-level simulator: growing machines (radix 4 → 12) running the
synthetic application under *random* mappings show monotonically rising
communication distance, channel utilization, and per-hop latency — the
approach toward Eq 16's bound that makes latency asymptotically linear
in distance.  Simulating a million nodes is out of reach; the point here
is the *trend* at the scales a workstation can simulate, matching the
model's predictions at the same distances.

Each point is replicated under several root seeds
(:func:`repro.sim.replicate.run_replications`); the tabulated point
estimates come from the *first* seed — exactly the old single-seed run,
so nothing shifts — and the 95% confidence half-widths ride alongside in
the data series and the table's ± column.

With ``telemetry=True`` every replication's fabric runs instrumented
(:mod:`repro.sim.telemetry`) and a second table compares the model's
contention inputs — Eq 10's channel utilization evaluated at each
point's *measured* rate and distance — against the telemetry's per-link
busy counters (mean and peak), isolating the contention equations from
workload-prediction error.
"""

from __future__ import annotations

from repro.analysis.compare import ContentionComparison, contention_row
from repro.analysis.tables import render_table
from repro.core.combined import solve
from repro.core.limits import limiting_per_hop_latency
from repro.core.network import TorusNetworkModel
from repro.experiments.result import ExperimentResult
from repro.experiments.validation_data import validation_report
from repro.mapping.strategies import random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.replicate import default_seeds, run_replications
from repro.sim.telemetry import TelemetryConfig
from repro.topology.graphs import torus_neighbor_graph
from repro.workload.synthetic import build_programs

__all__ = ["run"]

CONTEXTS = 2


def run(
    quick: bool = False,
    telemetry: bool = False,
    radices=None,
    batch: bool = True,
) -> ExperimentResult:
    """Sweep machine radix; measure d, rho, T_m; compare to the model.

    The application message curve is a property of the application,
    processor, and protocol — not of the machine size — so the node
    model fitted on the 64-node validation suite applies unchanged at
    every radix here.  ``telemetry`` instruments every replication's
    fabric and appends the model-vs-measured contention table.
    ``radices`` overrides the swept radix tuple: with ``Machine.run``
    on the event-calendar engine, radix-16 and radix-32 2-D tori
    (256/1024 nodes) are practical sweep points — the CI smoke runs
    ``radices=(16,)`` — where the per-cycle loop made anything past
    radix-12 a batch job.  ``batch`` (default on) runs each point's
    replications through the lockstep batch engine in one pass;
    per-seed summaries are bit-identical either way, so this is purely
    a wall-clock lever for the CI series.
    """
    if radices is None:
        radices = (4, 8) if quick else (4, 6, 8, 12)
    windows = dict(
        warmup_network_cycles=1500 if quick else 3000,
        measure_network_cycles=6000 if quick else 12000,
    )
    report = validation_report(CONTEXTS, quick)
    node = report.curve.to_node_model(messages_per_transaction=3.2)
    network = TorusNetworkModel(
        dimensions=2, message_size=report.message_size,
        node_channel_contention=True,
    )
    limit = limiting_per_hop_latency(
        node.sensitivity, network.message_size, network.dimensions
    )

    replications = 2 if quick else 3
    telemetry_config = TelemetryConfig() if telemetry else None
    contention_rows = []
    rows = []
    series = {
        "nodes": [], "distance": [], "rho": [],
        "t_m_sim": [], "t_m_model": [],
        "t_m_sim_ci95": [], "rho_ci95": [], "distance_ci95": [],
        "replications": replications,
    }
    for radix in radices:
        config = SimulationConfig(radix=radix, contexts=CONTEXTS, **windows)
        graph = torus_neighbor_graph(radix, 2)
        programs = build_programs(
            graph, CONTEXTS, config.compute_cycles, config.compute_jitter
        )
        mapping = random_mapping(config.node_count, seed=radix)
        result = run_replications(
            config, mapping, programs,
            seeds=default_seeds(config.seed, replications),
            telemetry=telemetry_config,
            batch=replications if batch else 1,
        )
        # Point estimates come from the first seed (the old single-seed
        # run); the replications contribute only the spread.
        summary = result.summaries[0]
        model_point = solve(node, network, summary.mean_message_hops)
        if telemetry_config is not None:
            # Contention check at the measured operating point: the
            # merged telemetry covers all replications, so measured rho
            # is the cross-seed mean and peak the cross-seed peak.
            contention_rows.append(
                contention_row(
                    f"{config.node_count}n radix-{radix}",
                    network,
                    result.merged_telemetry(),
                    summary.message_rate,
                    summary.mean_message_hops,
                )
            )
        series["nodes"].append(config.node_count)
        series["distance"].append(summary.mean_message_hops)
        series["rho"].append(summary.channel_utilization)
        series["t_m_sim"].append(summary.mean_message_latency)
        series["t_m_model"].append(model_point.message_latency)
        series["t_m_sim_ci95"].append(result.ci95("mean_message_latency"))
        series["rho_ci95"].append(result.ci95("channel_utilization"))
        series["distance_ci95"].append(result.ci95("mean_message_hops"))
        rows.append(
            (
                config.node_count,
                round(summary.mean_message_hops, 2),
                round(summary.channel_utilization, 3),
                round(summary.mean_message_latency, 1),
                round(result.ci95("mean_message_latency"), 1),
                round(model_point.message_latency, 1),
                round(summary.mean_per_hop_latency, 2),
            )
        )

    table = render_table(
        [
            "N",
            "d measured",
            "rho measured",
            "T_m sim",
            "T_m ±95%",
            "T_m model",
            "T_h sim (approx)",
        ],
        rows,
        title=(
            "Random-mapping scaling, simulated "
            f"(two contexts, {replications} seeds; "
            f"Eq 16 limit = {limit:.1f} network cycles)"
        ),
    )

    tables = [table]
    notes = [
        "Distance, utilization, and message latency all rise with "
        "machine size under random mappings — the simulated onset of "
        "the Figure 6 approach to the Eq 16 bound.",
        "The measured per-hop column is an upper-ish estimate: it "
        "attributes ejection-side and destination-controller "
        "queueing to the hops, which the model books under the "
        "node-channel term instead.",
    ]
    if contention_rows:
        comparison = ContentionComparison(rows=contention_rows)
        tables.append(comparison.render())
        notes.append(
            "The contention table evaluates Eq 10/11 at each point's "
            "measured rate and distance against the fabric telemetry's "
            "per-link busy counters; the peak column shows the hot-link "
            "spread a single-rho model cannot express."
        )
    return ExperimentResult(
        experiment="scaling-sim",
        title="Machine-size scaling measured on the simulator",
        tables=tables,
        notes=notes,
        data=series,
    )

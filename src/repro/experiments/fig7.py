"""Figure 7: expected gain from exploiting physical locality vs machine size.

Log-log curves of the ideal-vs-random mapping performance ratio for one,
two, and four hardware contexts, machine sizes 10 to 10^6.  The paper's
landmarks: unity gain at 10 processors, a gain of two at around 1,000,
and gains of 40-55 at a million — with the three curves strikingly
similar.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plot import line_plot
from repro.analysis.tables import render_table
from repro.core.sweeps import gain_curve
from repro.experiments.alewife import alewife_system
from repro.experiments.result import ExperimentResult

__all__ = ["run", "CONTEXT_COUNTS"]

CONTEXT_COUNTS = (1, 2, 4)


def run(quick: bool = False) -> ExperimentResult:
    """Sweep expected gain over machine sizes for p = 1, 2, 4."""
    count = 7 if quick else 13
    sizes = np.logspace(1, 6, count)

    curves = {
        contexts: gain_curve(
            alewife_system(contexts=contexts), sizes, label=f"p={contexts}"
        )
        for contexts in CONTEXT_COUNTS
    }

    rows = []
    for index, size in enumerate(sizes):
        rows.append(
            (
                f"{int(round(size)):,}",
                *(
                    round(curves[p].gains[index], 2)
                    for p in CONTEXT_COUNTS
                ),
            )
        )
    table = render_table(
        ["N", "gain (p=1)", "gain (p=2)", "gain (p=4)"],
        rows,
        title="Expected gain due to exploitation of physical locality",
    )

    landmark_rows = []
    for p in CONTEXT_COUNTS:
        system = alewife_system(contexts=p)
        landmark_rows.append(
            (
                p,
                round(system.expected_gain(10).gain, 2),
                round(system.expected_gain(1000).gain, 2),
                round(system.expected_gain(1e6).gain, 1),
            )
        )
    landmarks = render_table(
        ["p", "gain @ 10", "gain @ 1,000", "gain @ 10^6"],
        landmark_rows,
        title="Paper landmarks: ~1 at 10, ~2 at 1,000, 40-55 at 10^6",
    )

    chart = line_plot(
        list(sizes),
        {f"p={p}": list(curves[p].gains) for p in CONTEXT_COUNTS},
        x_log=True,
        y_log=True,
        title="Expected gain vs machine size (log-log, as the paper plots it)",
        x_label="processors N",
        y_label="gain",
    )

    return ExperimentResult(
        experiment="figure-7",
        title="Expected locality gain vs machine size",
        tables=[table, landmarks, chart],
        notes=[
            "The curves nearly coincide, as the paper emphasizes; because "
            "the application's computation grain is tiny, these are rough "
            "upper bounds on the gain available to any application.",
        ],
        data={
            "sizes": list(sizes),
            "gains": {p: list(curves[p].gains) for p in CONTEXT_COUNTS},
        },
    )

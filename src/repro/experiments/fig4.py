"""Figure 4: average message rate vs average communication distance.

Symbols in the paper's figure are simulation measurements; dotted curves
are combined-model predictions.  The paper reports predictions
"consistently within a few percent of measured values".  This driver
reproduces both series and the per-point relative errors.
"""

from __future__ import annotations

from repro.analysis.plot import line_plot
from repro.analysis.tables import render_table
from repro.experiments.result import ExperimentResult
from repro.experiments.validation_data import validation_report

__all__ = ["run"]

CONTEXT_COUNTS = (1, 2, 4)


def run(quick: bool = False) -> ExperimentResult:
    """Compare simulated and predicted message rates across distances."""
    reports = {p: validation_report(p, quick) for p in CONTEXT_COUNTS}

    rows = []
    for contexts, report in reports.items():
        for row in report.rows:
            rows.append(
                (
                    contexts,
                    round(row.distance, 2),
                    round(row.simulated.message_rate * 1000, 3),
                    round(row.predicted.message_rate * 1000, 3),
                    f"{row.rate_error * 100:+.1f}%",
                )
            )
    table = render_table(
        ["p", "d (hops)", "sim r_m (msg/kcyc)", "model r_m", "error"],
        rows,
        title="Message rate vs communication distance: simulation vs model",
    )

    summary_rows = [
        (
            contexts,
            f"{report.mean_rate_error * 100:.1f}%",
            f"{report.max_rate_error * 100:.1f}%",
        )
        for contexts, report in reports.items()
    ]
    summary = render_table(
        ["p", "mean |error|", "max |error|"],
        summary_rows,
        title="Prediction error summary",
    )

    two = reports[2]
    chart = line_plot(
        [row.distance for row in two.rows],
        {
            "simulated": [
                row.simulated.message_rate * 1000 for row in two.rows
            ],
            "model": [
                row.predicted.message_rate * 1000 for row in two.rows
            ],
        },
        title="Message rate vs distance, two contexts (msg/kilocycle)",
        x_label="d (hops)",
        y_label="r_m",
        height=12,
    )

    return ExperimentResult(
        experiment="figure-4",
        title="Average message rate vs average communication distance",
        tables=[table, summary, chart],
        notes=[
            "Rates fall with distance because of the application/network "
            "feedback: nodes back off as latencies grow.",
            "Agreement is tightest at low contexts and moderate distance; "
            "adversarial high-distance mappings at p=4 concentrate "
            "permutation traffic beyond the uniform-traffic model's "
            "assumptions (see EXPERIMENTS.md).",
        ],
        data={"reports": reports},
    )

"""Table 1: impact of relative network speed on expected gains.

Rows sweep the network clock relative to the processor clock — "2x
faster" is the Section 3 architecture — and report the expected locality
gain at a thousand and a million processors for the one-context
application.  Paper values: 2.1/41.2, 3.1/68.3, 4.5/101.6, 5.9/134.3;
slowing the network 8x relative to the base architecture grows the
bounds roughly threefold.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.sweeps import sweep_network_slowdowns
from repro.experiments.alewife import alewife_system
from repro.experiments.result import ExperimentResult

__all__ = ["run", "PAPER_VALUES", "ROW_LABELS"]

#: (slowdown factor vs base architecture, paper gain @ 10^3, @ 10^6)
PAPER_VALUES = [
    (1.0, 2.1, 41.2),
    (2.0, 3.1, 68.3),
    (4.0, 4.5, 101.6),
    (8.0, 5.9, 134.3),
]

ROW_LABELS = {1.0: "2x faster", 2.0: "same", 4.0: "2x slower", 8.0: "4x slower"}

SIZES = (1000.0, 1e6)


def run(quick: bool = False) -> ExperimentResult:
    """Reproduce Table 1 with the calibrated one-context system."""
    system = alewife_system(contexts=1)
    samples = sweep_network_slowdowns(
        system, [row[0] for row in PAPER_VALUES], sizes=SIZES
    )

    rows = []
    reproduced = {}
    for sample, (factor, paper_thousand, paper_million) in zip(
        samples, PAPER_VALUES
    ):
        ours_thousand = sample.gains_by_size[1000.0]
        ours_million = sample.gains_by_size[1e6]
        reproduced[factor] = (ours_thousand, ours_million)
        rows.append(
            (
                ROW_LABELS[factor],
                round(ours_thousand, 2),
                paper_thousand,
                round(ours_million, 1),
                paper_million,
            )
        )

    table = render_table(
        [
            "network speed",
            "gain @ 10^3",
            "paper",
            "gain @ 10^6",
            "paper",
        ],
        rows,
        title="Impact of relative network speed on expected gains (p = 1)",
    )

    ratio = reproduced[8.0][1] / reproduced[1.0][1]

    return ExperimentResult(
        experiment="table-1",
        title="Expected gains vs relative network speed",
        tables=[table],
        notes=[
            f"8x relative slowdown grows the million-processor bound "
            f"{ratio:.1f}x (paper: 'approximately a factor of three').",
            "Slower networks reward locality more: fixed processor-side "
            "overheads shrink relative to communication costs.",
        ],
        data={"reproduced": reproduced, "paper": PAPER_VALUES},
    )

"""Figure 6: per-hop latency vs machine size (approach to the Eq 16 limit).

The solid curve is the Section 3 application with two hardware contexts
under random mappings; the dashed curve artificially increases the
computation grain tenfold.  Both approach the same limiting per-hop
latency (~9.8 network cycles for s = 3.26, B = 12, n = 2); the
small-grain application reaches over 80 % of the limit by a few thousand
processors, the coarse-grain one much later.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plot import line_plot
from repro.analysis.tables import render_table
from repro.core.limits import size_to_reach_fraction
from repro.experiments.alewife import alewife_system
from repro.experiments.result import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    """Sweep machine size and report T_h for base and 10x grain."""
    base = alewife_system(contexts=2)
    coarse = base.with_grain_scaled(10.0)
    limit = base.limiting_per_hop_latency()

    count = 9 if quick else 17
    sizes = np.logspace(np.log10(64), 6, count)

    base_curve = base.per_hop_curve(sizes)
    coarse_curve = coarse.per_hop_curve(sizes)

    rows = [
        (
            f"{int(round(s.processors)):,}",
            round(s.distance, 1),
            round(s.per_hop_latency, 2),
            f"{s.per_hop_latency / limit:.0%}",
            round(c.per_hop_latency, 2),
            f"{c.per_hop_latency / limit:.0%}",
        )
        for s, c in zip(base_curve, coarse_curve)
    ]
    table = render_table(
        [
            "N",
            "d random",
            "T_h (base grain)",
            "of limit",
            "T_h (10x grain)",
            "of limit",
        ],
        rows,
        title=(
            f"Per-hop latency vs machine size "
            f"(limit = s*B/2n = {limit:.2f} network cycles)"
        ),
    )

    eighty = size_to_reach_fraction(base.node, base.network, 0.8)

    chart = line_plot(
        [float(s) for s in sizes],
        {
            "base grain": [s.per_hop_latency for s in base_curve],
            "10x grain": [c.per_hop_latency for c in coarse_curve],
        },
        x_log=True,
        title=f"T_h vs N (limit {limit:.1f} network cycles)",
        x_label="processors N",
        y_label="T_h",
    )

    return ExperimentResult(
        experiment="figure-6",
        title="Average per-hop message latency vs number of processors",
        tables=[table, chart],
        notes=[
            f"Limiting value {limit:.2f} network cycles (paper: ~9.8).",
            f"Base-grain application reaches 80% of the limit at "
            f"N ~ {eighty:,.0f} processors (paper: 'a few thousand').",
            "The 10x-grain application approaches the same limit, far "
            "more slowly, as the paper notes.",
        ],
        data={
            "limit": limit,
            "sizes": list(sizes),
            "base": [s.per_hop_latency for s in base_curve],
            "coarse": [c.per_hop_latency for c in coarse_curve],
            "eighty_percent_size": eighty,
        },
    )

"""Figure 5: average message latency vs average communication distance.

The companion to Figure 4: the paper reports predicted latencies that
"track measured values to within a few network cycles".  Both series and
the per-point differences (in network cycles) are reproduced here.
"""

from __future__ import annotations

from repro.analysis.plot import line_plot
from repro.analysis.tables import render_table
from repro.experiments.result import ExperimentResult
from repro.experiments.validation_data import validation_report

__all__ = ["run"]

CONTEXT_COUNTS = (1, 2, 4)


def run(quick: bool = False) -> ExperimentResult:
    """Compare simulated and predicted message latencies across distances."""
    reports = {p: validation_report(p, quick) for p in CONTEXT_COUNTS}

    rows = []
    for contexts, report in reports.items():
        for row in report.rows:
            rows.append(
                (
                    contexts,
                    round(row.distance, 2),
                    round(row.simulated.mean_message_latency, 1),
                    round(row.predicted.message_latency, 1),
                    f"{row.latency_error_cycles:+.1f}",
                )
            )
    table = render_table(
        ["p", "d (hops)", "sim T_m (net cyc)", "model T_m", "diff (cyc)"],
        rows,
        title="Message latency vs communication distance: simulation vs model",
    )

    summary_rows = [
        (contexts, round(report.max_latency_error_cycles, 1))
        for contexts, report in reports.items()
    ]
    summary = render_table(
        ["p", "max |T_m error| (net cyc)"],
        summary_rows,
        title="Latency tracking summary",
    )

    two = reports[2]
    chart = line_plot(
        [row.distance for row in two.rows],
        {
            "simulated": [
                row.simulated.mean_message_latency for row in two.rows
            ],
            "model": [row.predicted.message_latency for row in two.rows],
        },
        title="Message latency vs distance, two contexts (network cycles)",
        x_label="d (hops)",
        y_label="T_m",
        height=12,
    )

    return ExperimentResult(
        experiment="figure-5",
        title="Average message latency vs average communication distance",
        tables=[table, summary, chart],
        notes=[
            "Latency grows with distance both through more hops and "
            "through higher channel utilization; the model captures both "
            "terms (Eqs 10-14).",
        ],
        data={"reports": reports},
    )

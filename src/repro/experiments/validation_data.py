"""Shared simulation data for the validation experiments (Figures 3-5).

Figures 3, 4, and 5 all draw on the same suite of 64-node simulation
runs (one per mapping per context count).  Simulations are deterministic,
so the results are memoized per (contexts, quick) to keep the three
drivers — and the benchmarks that time them — from re-simulating.
"""

from __future__ import annotations

import functools

from repro.analysis.validation import ValidationReport, run_validation
from repro.mapping.families import paper_mapping_suite
from repro.sim.config import SimulationConfig
from repro.topology.torus import Torus

__all__ = ["validation_config", "validation_report", "clear_cache"]


def validation_config(contexts: int, quick: bool = False) -> SimulationConfig:
    """The Section 3 machine configuration for one context count.

    ``quick`` shrinks the measurement window (for tests and smoke runs);
    full runs use windows long enough for a few hundred transactions per
    node.
    """
    if quick:
        return SimulationConfig(
            contexts=contexts,
            warmup_network_cycles=1000,
            measure_network_cycles=4000,
        )
    return SimulationConfig(
        contexts=contexts,
        warmup_network_cycles=3000,
        measure_network_cycles=15000,
    )


@functools.lru_cache(maxsize=None)
def validation_report(contexts: int, quick: bool = False) -> ValidationReport:
    """Memoized Section 3.3 validation run for one context count."""
    config = validation_config(contexts, quick)
    torus = Torus(radix=config.radix, dimensions=config.dimensions)
    steps = 1500 if quick else 4000
    mappings = paper_mapping_suite(torus, adversarial_steps=steps)
    return run_validation(config, mappings)


def clear_cache() -> None:
    """Drop memoized runs (mainly for test isolation)."""
    validation_report.cache_clear()

"""Figure 8: issue-time component breakdown at one thousand processors.

For ideal and random mappings at N = 1,000 and p = 1, 2, 4 the paper
stacks the four Eq 18 components of the inter-transaction issue time.
The observations to reproduce: only the variable message overhead grows
when locality is ignored (and only to rough parity with the fixed
components, hence the factor-of-two gain); and the fixed transaction
contribution is ~1-1.5 microseconds in every configuration.
"""

from __future__ import annotations

from repro.analysis.plot import stacked_bars
from repro.analysis.tables import render_table
from repro.experiments.alewife import alewife_system
from repro.experiments.result import ExperimentResult
from repro.topology.distance import random_traffic_distance_for_size

__all__ = ["run", "PROCESSORS"]

PROCESSORS = 1000.0
CONTEXT_COUNTS = (1, 2, 4)
MEGAHERTZ = 33.0  # the slow end of Alewife's 33-40 MHz clock


def run(quick: bool = False) -> ExperimentResult:
    """Decompose t_t for ideal and random mappings, p = 1, 2, 4."""
    random_distance = random_traffic_distance_for_size(PROCESSORS, 2)

    rows = []
    shares = {}
    bars = {}
    for contexts in CONTEXT_COUNTS:
        system = alewife_system(contexts=contexts)
        for label, distance in (("ideal", 1.0), ("random", random_distance)):
            breakdown = system.breakdown(distance)
            shares[(contexts, label)] = breakdown.fixed_transaction_share
            bars[f"p={contexts} {label}"] = {
                "variable msg": breakdown.variable_message,
                "fixed msg": breakdown.fixed_message,
                "fixed txn": breakdown.fixed_transaction,
                "CPU": breakdown.cpu,
            }
            rows.append(
                (
                    contexts,
                    label,
                    round(breakdown.variable_message, 1),
                    round(breakdown.fixed_message, 1),
                    round(breakdown.fixed_transaction, 1),
                    round(breakdown.cpu, 1),
                    round(breakdown.total, 1),
                    f"{breakdown.fixed_transaction / MEGAHERTZ:.2f}",
                )
            )

    table = render_table(
        [
            "p",
            "mapping",
            "variable msg",
            "fixed msg",
            "fixed txn",
            "CPU",
            "total t_t",
            "fixed txn (us @33MHz)",
        ],
        rows,
        title=(
            "Issue-time components (processor cycles) at N = 1,000; "
            f"random-mapping distance d = {random_distance:.1f} hops"
        ),
    )

    chart = stacked_bars(
        bars,
        title="Issue-time components (processor cycles), as the paper's "
        "stacked bars",
    )

    return ExperimentResult(
        experiment="figure-8",
        title="Inter-transaction issue time breakdown, ideal vs random",
        tables=[table, chart],
        notes=[
            "Moving ideal -> random only grows the variable-message "
            "component, and only to rough parity with the fixed "
            "components — hence the factor-of-two gain at this size.",
            "The fixed transaction contribution sits in the paper's "
            "1-1.5 us range in every configuration.",
        ],
        data={
            "rows": rows,
            "fixed_transaction_share": shares,
            "random_distance": random_distance,
        },
    )

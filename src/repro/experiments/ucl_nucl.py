"""UCL vs NUCL: quantifying the paper's introductory argument.

Section 1 argues that scalable machines must abandon uniform
communication latency (UCL) networks — whose latency grows with machine
size for *all* traffic — in favor of non-uniform (NUCL) networks, which
at least let well-placed applications keep communicating over short
distances.  This experiment runs the same calibrated application on

* a 2-D torus with an ideal mapping (NUCL, locality exploited),
* the same torus with a random mapping (NUCL, locality ignored), and
* a radix-4 buffered butterfly (UCL — no placement can help),

across machine sizes, comparing per-processor transaction rates and the
switch hardware each machine spends per node.  The shape that emerges is
exactly Section 1's argument, in numbers: the butterfly's
scaling bandwidth lets it beat a *randomly mapped* torus handily at
scale — but it pays ``log_k N`` switch stages of latency on every single
message and ``stages/k`` switches of hardware per node, while the
ideally-mapped torus keeps every message at one hop on constant
per-node hardware.  Locality is the lever the UCL organization
structurally lacks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.combined import solve
from repro.core.indirect import IndirectNetworkModel
from repro.core.metrics import expected_gain_batch
from repro.experiments.alewife import MESSAGE_FLITS, alewife_system
from repro.experiments.result import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    """Sweep machine sizes; compare torus (ideal/random) vs butterfly."""
    system = alewife_system(contexts=2)
    node = system.node
    butterfly = IndirectNetworkModel(switch_radix=4, message_size=MESSAGE_FLITS)

    count = 5 if quick else 9
    sizes = np.logspace(2, 6, count)

    # The torus lanes (ideal + random per size) batch into one solve;
    # the butterfly is an indirect network outside solve_batch's scope,
    # so its per-size points stay on the scalar solver.
    gains = expected_gain_batch(node, system.network, sizes)

    rows = []
    series = {"sizes": [], "ideal": [], "random": [], "ucl": []}
    for processors, gain in zip(sizes, gains):
        stages = butterfly.stages_for(processors)
        ucl_point = solve(node, butterfly, float(stages))
        ideal_rate = gain.ideal.transaction_rate
        random_rate = gain.random.transaction_rate
        ucl_rate = ucl_point.transaction_rate
        series["sizes"].append(float(processors))
        series["ideal"].append(ideal_rate)
        series["random"].append(random_rate)
        series["ucl"].append(ucl_rate)
        switch_cost = stages / butterfly.switch_radix
        rows.append(
            (
                f"{int(round(processors)):,}",
                stages,
                round(gain.random_distance, 1),
                round(ideal_rate / ucl_rate, 2),
                round(random_rate / ucl_rate, 2),
                round(switch_cost, 2),
            )
        )

    table = render_table(
        [
            "N",
            "butterfly stages",
            "torus d (random)",
            "NUCL ideal / UCL",
            "NUCL random / UCL",
            "UCL switches/node",
        ],
        rows,
        title="Per-processor transaction rate relative to a radix-4 "
        "butterfly (UCL), two-context application "
        "(torus spends 1 switch/node at every size)",
    )

    return ExperimentResult(
        experiment="ucl-vs-nucl",
        title="Uniform vs non-uniform communication latency networks",
        tables=[table],
        notes=[
            "The butterfly's bandwidth scales with machine size, so it "
            "overtakes the *randomly mapped* torus as N grows — exactly "
            "the bandwidth-for-latency trade Section 1 describes — while "
            "paying log_k(N) stages on every message and log_k(N)/k "
            "switches per node of hardware.",
            "The ideally mapped torus beats the butterfly at every size "
            "with constant per-node hardware, and its lead grows with "
            "the stage count: exploiting locality sidesteps the UCL "
            "latency floor entirely.",
        ],
        data=series,
    )

"""Three network organizations head to head (Section 1's taxonomy).

The paper's introduction sorts interconnects into a progression — shared
buses (simple, non-scalable), multistage UCL networks (scalable
bandwidth, universally growing latency), and NUCL meshes (scalable, and
exploitable by locality).  With all three modeled in the same
operating-point framework, one sweep shows the whole argument:

* the bus collapses beyond a few dozen processors (per-node bandwidth
  falls as 1/N);
* the butterfly holds per-node bandwidth but pays log N latency on every
  message;
* the torus matches or beats the butterfly *if and only if* the
  application's locality is exploited.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.bus import SharedBusModel
from repro.core.combined import solve
from repro.core.indirect import IndirectNetworkModel
from repro.errors import SaturationError
from repro.experiments.alewife import MESSAGE_FLITS, alewife_system
from repro.experiments.result import ExperimentResult

__all__ = ["run"]


def run(quick: bool = False) -> ExperimentResult:
    """Sweep machine sizes across bus / butterfly / torus organizations."""
    system = alewife_system(contexts=1)
    node = system.node
    bus = SharedBusModel(message_size=MESSAGE_FLITS)
    butterfly = IndirectNetworkModel(switch_radix=4, message_size=MESSAGE_FLITS)

    count = 6 if quick else 10
    sizes = np.logspace(1, np.log10(4096), count)

    rows = []
    series = {"sizes": [], "bus": [], "butterfly": [],
              "torus_ideal": [], "torus_random": []}
    for processors in sizes:
        gain = system.expected_gain(max(processors, 4.0))
        bus_point = solve(node, bus, float(processors))
        butterfly_point = solve(
            node, butterfly, float(butterfly.stages_for(max(processors, 4.0)))
        )
        rates = {
            "bus": bus_point.transaction_rate,
            "butterfly": butterfly_point.transaction_rate,
            "torus_ideal": gain.ideal.transaction_rate,
            "torus_random": gain.random.transaction_rate,
        }
        series["sizes"].append(float(processors))
        for key, value in rates.items():
            series[key].append(value)
        baseline = rates["torus_ideal"]
        rows.append(
            (
                f"{int(round(processors)):,}",
                round(rates["bus"] / baseline, 3),
                round(rates["butterfly"] / baseline, 3),
                round(rates["torus_random"] / baseline, 3),
                1.0,
            )
        )

    table = render_table(
        [
            "N",
            "shared bus",
            "butterfly (UCL)",
            "torus, random map",
            "torus, ideal map",
        ],
        rows,
        title="Per-processor transaction rate, normalized to the "
        "ideally-mapped torus (p = 1)",
    )

    # Where does the bus fall to half the torus's per-node performance?
    knee = None
    for processors, bus_rate, ideal_rate in zip(
        series["sizes"], series["bus"], series["torus_ideal"]
    ):
        if bus_rate < 0.5 * ideal_rate:
            knee = processors
            break

    notes = [
        "Per-node bus bandwidth falls as 1/N: the feedback keeps the "
        "model finite, but throughput collapses — 'unable to support "
        "reasonable communication loads from more than a few dozen "
        "processors.'",
        "The butterfly and the well-mapped torus both scale; the torus "
        "only *matches* the butterfly when locality is ignored, and "
        "wins when it is exploited.",
    ]
    if knee is not None:
        notes.insert(
            0,
            f"The bus drops below half the ideal torus's per-node rate "
            f"by N ~ {knee:,.0f}.",
        )

    return ExperimentResult(
        experiment="organizations",
        title="Bus vs multistage vs mesh: the Section 1 taxonomy, quantified",
        tables=[table],
        notes=notes,
        data=series,
    )

"""Ablation experiments for the design choices DESIGN.md calls out.

Each ablation isolates one modeling decision:

* **feedback** — the paper's central departure from Agarwal [1]: close
  the application/network loop or hold injection rates fixed;
* **clamp** — the ``T_h = 1`` rule for ``k_d < 1`` (highly local
  mappings);
* **node-channel** — the processor<->network channel contention
  extension at the validated 64-node scale;
* **dimension** — Section 4.2's remark that higher-dimensional networks
  shrink locality gains;
* **buffering** — simulator-side: buffered cut-through switches vs pure
  single-flit wormhole (why the validation runs default to the former).
"""

from __future__ import annotations

from repro.analysis.fitting import fit_message_curve
from repro.analysis.tables import render_table
from repro.core.combined import open_loop, solve
from repro.core.network import TorusNetworkModel
from repro.errors import SaturationError
from repro.experiments.alewife import alewife_system, alewife_validation_system
from repro.experiments.result import ExperimentResult
from repro.mapping.families import paper_mapping_suite
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.generators import uniform_random_graph_programs
from repro.workload.synthetic import build_programs

__all__ = [
    "run_feedback",
    "run_clamp",
    "run_node_channel",
    "run_dimension",
    "run_buffering",
    "run_uniformity",
]


def run_feedback(quick: bool = False) -> ExperimentResult:
    """Closed-loop vs open-loop network evaluation as distance grows."""
    system = alewife_system(contexts=2)
    node, network = system.node, system.network
    anchor = solve(node, network, 4.0)
    fixed_rate = anchor.message_rate

    rows = []
    for distance in (4.0, 8.0, 16.0, 32.0, 64.0, 128.0):
        closed = solve(node, network, distance)
        try:
            open_latency = round(open_loop(network, fixed_rate, distance), 1)
        except SaturationError:
            open_latency = "saturated"
        rows.append(
            (
                distance,
                round(closed.message_latency, 1),
                round(closed.utilization, 3),
                open_latency,
            )
        )
    table = render_table(
        ["d (hops)", "closed-loop T_m", "closed-loop rho", "open-loop T_m"],
        rows,
        title=(
            "Feedback ablation: open loop holds the d=4 injection rate "
            f"({fixed_rate:.4f} msg/cycle) at every distance"
        ),
    )
    return ExperimentResult(
        experiment="ablation-feedback",
        title="Application/network feedback vs fixed injection rates",
        tables=[table],
        notes=[
            "Open-loop latency diverges once the fixed rate exceeds "
            "saturation; the closed loop backs off and stays finite at "
            "every distance — the paper's core correction to Agarwal's "
            "fixed-rate analysis.",
        ],
        data={"fixed_rate": fixed_rate},
    )


def run_clamp(quick: bool = False) -> ExperimentResult:
    """Effect of the k_d < 1 clamp on highly local mappings."""
    system = alewife_system(contexts=2)
    node = system.node
    clamped = system.network
    unclamped = clamped.without_extensions()

    rows = []
    for distance in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0):
        with_clamp = solve(node, clamped, distance)
        without = solve(node, unclamped, distance)
        rows.append(
            (
                distance,
                round(distance / 2, 2),
                round(with_clamp.per_hop_latency, 2),
                round(without.per_hop_latency, 2),
                round(with_clamp.message_latency, 1),
                round(without.message_latency, 1),
            )
        )
    table = render_table(
        ["d", "k_d", "T_h clamped", "T_h base", "T_m clamped", "T_m base"],
        rows,
        title="Local-traffic clamp ablation (differences appear for k_d < 1)",
    )
    return ExperimentResult(
        experiment="ablation-clamp",
        title="The T_h = 1 clamp for k_d < 1",
        tables=[table],
        notes=[
            "Below k_d = 1 the unclamped Eq 14 geometry term is negative "
            "(meaningless); the clamp pins T_h at the single-cycle switch "
            "delay, as the paper prescribes for well-mapped applications.",
        ],
        data={},
    )


def run_node_channel(quick: bool = False) -> ExperimentResult:
    """Node-channel contention extension at the 64-node validation scale."""
    with_extension = alewife_validation_system(contexts=2)
    without = alewife_system(contexts=2)

    rows = []
    for distance in (1.0, 2.0, 4.06, 6.0):
        ext = with_extension.operating_point(distance)
        base = without.operating_point(distance)
        rows.append(
            (
                distance,
                round(ext.message_latency, 1),
                round(base.message_latency, 1),
                round(ext.node_channel_delay, 1),
            )
        )
    table = render_table(
        ["d (hops)", "T_m with extension", "T_m without", "node-channel delay"],
        rows,
        title="Node-channel contention at 64 nodes (paper: adds 2-5 cycles)",
    )
    return ExperimentResult(
        experiment="ablation-node-channel",
        title="Processor-network channel contention extension",
        tables=[table],
        notes=[
            "The M/D/1 injection/ejection term contributes a few network "
            "cycles at validation-scale loads, matching Section 2.4's "
            "reported magnitude.",
        ],
        data={},
    )


def run_dimension(quick: bool = False) -> ExperimentResult:
    """Section 4.2: higher network dimension lowers locality gains."""
    rows = []
    for dimensions in (2, 3, 4):
        system = alewife_system(contexts=1, dimensions=dimensions)
        rows.append(
            (
                dimensions,
                round(system.expected_gain(4096).random_distance, 1),
                round(system.expected_gain(4096).gain, 2),
                round(system.expected_gain(1e6).gain, 1),
            )
        )
    table = render_table(
        ["n", "d random @ 4096", "gain @ 4096", "gain @ 10^6"],
        rows,
        title="Network dimension vs locality gain (p = 1)",
    )
    return ExperimentResult(
        experiment="ablation-dimension",
        title="Impact of network dimensionality",
        tables=[table],
        notes=[
            "Higher n shortens random-mapping distances (Eq 17) and "
            "lowers the per-hop limit (Eq 16), shrinking what locality "
            "exploitation can save — the paper's closing observation of "
            "Section 4.2.",
        ],
        data={},
    )


def run_buffering(quick: bool = False) -> ExperimentResult:
    """Simulator switch buffering: cut-through vs rigid-worm wormhole."""
    torus = Torus(radix=8, dimensions=2)
    suite = paper_mapping_suite(torus, adversarial_steps=1500 if quick else 4000)
    picks = [suite[0], suite[len(suite) // 2], suite[-1]]
    graph = torus_neighbor_graph(8, 2)
    windows = dict(
        warmup_network_cycles=1000 if quick else 2000,
        measure_network_cycles=4000 if quick else 8000,
    )

    rows = []
    for named in picks:
        results = {}
        for switching in ("cut_through", "wormhole"):
            config = SimulationConfig(
                contexts=2, switching=switching, **windows
            )
            programs = build_programs(
                graph, config.contexts, config.compute_cycles,
                config.compute_jitter,
            )
            results[switching] = Machine(config, named.mapping, programs).run()
        rows.append(
            (
                named.name,
                round(named.distance, 2),
                round(results["cut_through"].mean_message_latency, 1),
                round(results["wormhole"].mean_message_latency, 1),
                round(
                    results["wormhole"].mean_message_latency
                    / results["cut_through"].mean_message_latency,
                    2,
                ),
            )
        )
    table = render_table(
        ["mapping", "d", "T_m cut-through", "T_m wormhole", "ratio"],
        rows,
        title="Switch-buffering ablation (simulated, p = 2)",
    )
    return ExperimentResult(
        experiment="ablation-buffering",
        title="Buffered cut-through vs single-flit wormhole switches",
        tables=[table],
        notes=[
            "Single-flit wormhole amplifies contention through blocking "
            "trees; the Alewife switches' 'moderate buffering' motivates "
            "the cut-through default used for the validation runs.",
        ],
        data={},
    )


def run_uniformity(quick: bool = False) -> ExperimentResult:
    """Model error: uniform random traffic vs permutation traffic.

    The Agarwal network model assumes traffic is spread uniformly over
    the machine.  The validation suite's high-distance mappings are
    deterministic permutations of the torus-neighbor graph, which
    concentrate load on specific links — this ablation quantifies how
    much of the model's residual error that non-uniformity explains, by
    simulating both a *uniform random* workload and the *permuted
    neighbor* workload at matched average distances and comparing each
    against the model's prediction.
    """
    torus = Torus(radix=8, dimensions=2)
    graph = torus_neighbor_graph(8, 2)
    windows = dict(
        warmup_network_cycles=1500 if quick else 3000,
        measure_network_cycles=5000 if quick else 12000,
    )
    config = SimulationConfig(contexts=2, **windows)

    # Uniform traffic: distance is the Eq 17 expectation regardless of
    # mapping; permutation traffic: use a random mapping of the neighbor
    # graph, which lands at a similar mean distance (~4 hops).
    uniform_programs = uniform_random_graph_programs(
        graph, config.contexts, config.compute_cycles, config.compute_jitter
    )
    uniform_summary = Machine(
        config, identity_mapping(64), uniform_programs
    ).run()

    permuted_mapping = random_mapping(64, seed=11)
    neighbor_programs = build_programs(
        graph, config.contexts, config.compute_cycles, config.compute_jitter
    )
    permuted_summary = Machine(
        config, permuted_mapping, neighbor_programs
    ).run()

    # Model each run with a node curve fitted from two anchor points
    # (ideal-mapping run + the run itself), matching the validation
    # pipeline's procedure in miniature.
    ideal_summary = Machine(
        config, identity_mapping(64), build_programs(
            graph, config.contexts, config.compute_cycles,
            config.compute_jitter,
        )
    ).run()

    rows = []
    data = {}
    for label, summary in (
        ("uniform random", uniform_summary),
        ("permuted neighbor", permuted_summary),
    ):
        curve = fit_message_curve(
            [
                (
                    ideal_summary.mean_message_interval,
                    ideal_summary.mean_message_latency,
                ),
                (summary.mean_message_interval, summary.mean_message_latency),
            ],
            contexts=config.contexts,
        )
        network = TorusNetworkModel(
            dimensions=2,
            message_size=summary.mean_message_flits,
            node_channel_contention=True,
        )
        node = curve.to_node_model(
            messages_per_transaction=summary.messages_per_transaction
        )
        predicted = solve(node, network, summary.mean_message_hops)
        error = (
            predicted.message_rate - summary.message_rate
        ) / summary.message_rate
        data[label] = error
        rows.append(
            (
                label,
                round(summary.mean_message_hops, 2),
                round(summary.message_rate * 1000, 2),
                round(predicted.message_rate * 1000, 2),
                f"{error * 100:+.1f}%",
            )
        )

    table = render_table(
        ["workload", "d (hops)", "sim r_m (msg/kcyc)", "model r_m", "error"],
        rows,
        title="Model error vs traffic uniformity (p = 2, matched distance)",
    )
    return ExperimentResult(
        experiment="ablation-uniformity",
        title="Uniform vs permutation traffic against the uniform-traffic model",
        tables=[table],
        notes=[
            "At this moderate load the two workloads are modeled about "
            "equally well; the permutation penalty grows with load and "
            "distance, which is the residual error source at the Figure "
            "4/5 validation extremes (p = 4, adversarial mappings) — see "
            "EXPERIMENTS.md.",
        ],
        data=data,
    )

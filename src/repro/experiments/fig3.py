"""Figure 3: measured application message curves.

The paper plots measured ``t_m`` against ``T_m`` for the nine mappings at
one, two, and four hardware contexts and observes (a) the points fall on
lines, as Eq 9 predicts, and (b) the slopes grow with the context count,
though slightly less than proportionally (the paper attributes the
shortfall to the measured growth of ``c``).  This driver reproduces the
measurement and reports the per-context fits.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.experiments.result import ExperimentResult
from repro.experiments.validation_data import validation_report

__all__ = ["run"]

CONTEXT_COUNTS = (1, 2, 4)


def run(quick: bool = False) -> ExperimentResult:
    """Simulate the mapping suite per context count and fit the curves."""
    reports = {p: validation_report(p, quick) for p in CONTEXT_COUNTS}

    point_rows = []
    for contexts, report in reports.items():
        for row in report.rows:
            point_rows.append(
                (
                    contexts,
                    row.name,
                    round(row.distance, 2),
                    round(row.simulated.mean_message_interval, 1),
                    round(row.simulated.mean_message_latency, 1),
                )
            )
    points_table = render_table(
        ["p", "mapping", "d (hops)", "t_m (net cyc)", "T_m (net cyc)"],
        point_rows,
        title="Measured application message curves (one point per mapping)",
    )

    fit_rows = []
    base_slope = reports[1].curve.sensitivity
    for contexts, report in reports.items():
        curve = report.curve
        fit_rows.append(
            (
                contexts,
                round(curve.sensitivity, 2),
                round(curve.sensitivity / base_slope, 2),
                round(curve.curve_intercept, 1),
                round(curve.fit.r_squared, 4),
            )
        )
    fits_table = render_table(
        ["p", "slope s", "slope / slope(p=1)", "intercept K", "R^2"],
        fit_rows,
        title="Fitted message-curve slopes (paper: slope roughly doubles "
        "per context doubling, slightly less than proportionally)",
    )

    return ExperimentResult(
        experiment="figure-3",
        title="Application message curves, measured from simulation",
        tables=[points_table, fits_table],
        notes=[
            "t_m and T_m are linearly related per Eq 9 (R^2 > 0.99); "
            "slopes grow roughly proportionally to the context count "
            "(the paper measures the growth slightly sublinear, "
            "attributing the shortfall to c growing ~15%).",
        ],
        data={
            "reports": reports,
            "slopes": {p: r.curve.sensitivity for p, r in reports.items()},
        },
    )

"""Locality at scale: searched mappings across the paper's full N range.

Figure 7 states its gain claims for machines up to a *million*
processors, but the mapping experiments elsewhere in this repo run on
the Section 3 machine (64 nodes) — far below the regime where the
random-mapping distance grows like ``sqrt(N)`` and the locality gain
reaches 40-55x.  This experiment closes that gap: for 2-D and 5-D tori
from 64 nodes up to 10^6, it anneals the torus-neighbor application
from a random placement using the delta-compressed distance engine
(:func:`repro.topology.torus.distance_backend` — O(n * k) ring rows, no
N x N table, no memory-guard trip) and compares

* the measured random-mapping distance against the Eq 17 analytical
  expectation (the ``n * N^(1/n) / 4`` growth law),
* the annealed distance against the single-hop ideal floor, and
* the model gain realized by the searched mapping (operating-point
  ratio at the two measured distances) against the analytical Figure 7
  ideal-vs-random bound.

The annealer runs a fixed swap budget at every size, so the table also
shows the practical point the paper makes implicitly: at 10^5-10^6
nodes a generic stochastic search barely dents the random plateau —
locality at scale has to come from *constructed* mappings (the paper's
ideal embedding), with search useful for polish.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import obs
from repro.analysis.tables import render_table
from repro.core.metrics import performance_ratio
from repro.experiments.alewife import alewife_system
from repro.experiments.result import ExperimentResult
from repro.mapping.anneal import anneal_mapping
from repro.mapping.evaluate import average_distance
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.distance import random_traffic_distance_exact
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus, distance_backend

__all__ = ["run", "SHAPES", "QUICK_SHAPES"]

SEED = 1992

#: (radix, dimensions) of every machine swept in the full run — 2-D
#: tori through the Figure 7 size axis (64 .. 10^6 nodes) plus the
#: paper's high-dimensional comparison point (k=16, n=5: ~10^6 nodes).
SHAPES: Tuple[Tuple[int, int], ...] = (
    (8, 2),
    (32, 2),
    (100, 2),
    (316, 2),
    (1000, 2),
    (16, 5),
)

#: Sizes small enough for the CI quick path (still crossing the dense
#: table's 4096-node memory guard at radix 100).
QUICK_SHAPES: Tuple[Tuple[int, int], ...] = ((8, 2), (32, 2), (100, 2))


def run(quick: bool = False) -> ExperimentResult:
    """Anneal the neighbor application at each size; tabulate vs theory."""
    shapes = QUICK_SHAPES if quick else SHAPES
    steps = 4000 if quick else 20000

    rows: List[Tuple] = []
    data: Dict[str, Dict[str, float]] = {}
    with obs.span(
        "experiment.locality_scale", shapes=len(shapes), steps=steps
    ):
        for radix, dimensions in shapes:
            torus = Torus(radix=radix, dimensions=dimensions)
            nodes = torus.node_count
            backend = distance_backend(torus)
            with obs.span(
                "locality_scale.machine", nodes=nodes, backend=backend.kind
            ):
                graph = torus_neighbor_graph(radix, dimensions)
                floor = average_distance(
                    graph, identity_mapping(nodes), torus
                )
                start = random_mapping(nodes, seed=SEED)
                result = anneal_mapping(
                    graph, torus, start, steps=steps, seed=SEED
                )
            eq17 = random_traffic_distance_exact(radix, dimensions)
            system = alewife_system(contexts=1).with_dimensions(dimensions)
            analytic = system.expected_gain(nodes, ideal_distance=floor)
            measured_gain = performance_ratio(
                system.operating_point(result.best_distance),
                system.operating_point(result.initial_distance),
            )
            rows.append(
                (
                    f"{nodes:,}",
                    f"{radix}^{dimensions}",
                    backend.kind,
                    round(floor, 2),
                    round(eq17, 2),
                    round(result.initial_distance, 2),
                    round(result.best_distance, 2),
                    round(measured_gain, 2),
                    round(analytic.gain, 2),
                )
            )
            data[f"{radix}x{dimensions}"] = {
                "nodes": nodes,
                "backend": backend.kind,
                "floor": floor,
                "eq17": eq17,
                "random": result.initial_distance,
                "annealed": result.best_distance,
                "measured_gain": measured_gain,
                "analytic_gain": analytic.gain,
            }

    table = render_table(
        [
            "N",
            "shape",
            "backend",
            "d ideal",
            "d Eq17",
            "d random",
            "d annealed",
            "gain (search)",
            "gain (bound)",
        ],
        rows,
        title=(
            f"Searched-mapping locality vs machine size "
            f"({steps} annealing steps per machine)"
        ),
    )
    return ExperimentResult(
        experiment="locality-scale",
        title="Locality gain vs machine size with searched mappings",
        tables=[table],
        notes=[
            "Measured random distances track the Eq 17 sqrt(N)-style "
            "growth law at every size; machines beyond the 4096-node "
            "dense-table guard run on the delta-compressed backend "
            "(O(n*k) ring rows) with bit-identical distances.",
            "The fixed swap budget recovers most of the gap on small "
            "machines but almost none of it at 10^5-10^6 nodes — the "
            "Figure 7 bound at scale is reachable only by constructed "
            "embeddings, which is exactly how the paper frames its "
            "ideal mapping.",
        ],
        data=data,
    )

"""Locality search: multi-chain annealing across communication patterns.

The paper's mappings are hand-constructed; this experiment asks the
complementary question a locality-aware runtime faces: *starting from a
locality-ignorant (random) placement, how much average communication
distance can search recover on each kind of application?*  For a suite
of communication graphs on the Section 3 machine (the radix-8 2-D
torus), it runs :func:`repro.mapping.chains.anneal_chains` — independent
annealing restarts priced against the shared distance table — and
compares the recovered distance to the random start, the Eq 17
random-traffic expectation, and the pattern's structural floor (the
identity placement, which for torus-shaped patterns is the paper's ideal
single-hop mapping).

Patterns with real physical locality (torus neighbors, stencils, rings)
anneal back to within a few percent of their floor; structureless
patterns (all-to-all, star) barely move — Section 2.1's point that ``d``
is a property of *application structure*, exploitable only when the
structure exists.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.errors import ParameterError
from repro.analysis.tables import render_table
from repro.experiments.result import ExperimentResult
from repro.mapping.chains import anneal_chains
from repro.mapping.evaluate import average_distance
from repro.mapping.strategies import identity_mapping, random_mapping
from repro.topology.distance import random_traffic_distance_exact
from repro.topology.graphs import (
    CommunicationGraph,
    all_to_all_graph,
    butterfly_exchange_graph,
    nine_point_stencil_graph,
    ring_graph,
    star_graph,
    torus_neighbor_graph,
)
from repro.topology.torus import Torus

__all__ = ["run", "PATTERNS", "pattern_graph"]

RADIX = 8
DIMENSIONS = 2
SEED = 1992

#: The communication patterns searched, name -> constructor (on N=64).
PATTERNS: Dict[str, Callable[[], CommunicationGraph]] = {
    "torus-neighbor": lambda: torus_neighbor_graph(RADIX, DIMENSIONS),
    "9pt-stencil": lambda: nine_point_stencil_graph(RADIX, RADIX),
    "ring": lambda: ring_graph(RADIX**DIMENSIONS),
    "butterfly": lambda: butterfly_exchange_graph(RADIX**DIMENSIONS),
    "star": lambda: star_graph(RADIX**DIMENSIONS),
    "all-to-all": lambda: all_to_all_graph(RADIX**DIMENSIONS),
}


def pattern_graph(name: str, radix: int, dimensions: int) -> CommunicationGraph:
    """One of the named communication patterns on a ``k^n``-node machine.

    Used by the ``repro-locality anneal`` subcommand to parameterize the
    patterns above beyond the default 64-node machine.  The 9-point
    stencil requires a 2-D machine (its threads form a ``k x k`` grid).
    """
    nodes = radix**dimensions
    builders: Dict[str, Callable[[], CommunicationGraph]] = {
        "torus-neighbor": lambda: torus_neighbor_graph(radix, dimensions),
        "9pt-stencil": lambda: nine_point_stencil_graph(radix, radix),
        "ring": lambda: ring_graph(nodes),
        "butterfly": lambda: butterfly_exchange_graph(nodes),
        "star": lambda: star_graph(nodes),
        "all-to-all": lambda: all_to_all_graph(nodes),
    }
    if name not in builders:
        raise ParameterError(
            f"unknown pattern {name!r}; known: {sorted(builders)}"
        )
    if name == "9pt-stencil" and dimensions != 2:
        raise ParameterError("9pt-stencil needs a 2-D machine")
    return builders[name]()


def run(quick: bool = False) -> ExperimentResult:
    """Anneal every pattern from a random start; tabulate the recovery."""
    torus = Torus(radix=RADIX, dimensions=DIMENSIONS)
    nodes = torus.node_count
    chains = 2 if quick else 4
    steps = 1500 if quick else 6000
    start = random_mapping(nodes, seed=SEED)
    eq17 = random_traffic_distance_exact(RADIX, DIMENSIONS)

    rows: List[Tuple] = []
    data: Dict[str, Dict[str, float]] = {}
    with obs.span(
        "experiment.locality_search", patterns=len(PATTERNS), chains=chains,
        steps=steps,
    ):
        for name, build in PATTERNS.items():
            graph = build()
            floor = average_distance(graph, identity_mapping(nodes), torus)
            search = anneal_chains(
                graph,
                torus,
                start,
                chains=chains,
                steps=steps,
                seed=SEED,
            )
            best = search.best
            recovered = (
                (best.initial_distance - best.best_distance)
                / (best.initial_distance - floor)
                if best.initial_distance > floor
                else 0.0
            )
            rows.append(
                (
                    name,
                    round(floor, 2),
                    round(best.initial_distance, 2),
                    round(best.best_distance, 2),
                    f"{100 * recovered:.0f}%",
                    search.best_index,
                )
            )
            data[name] = {
                "floor": floor,
                "random": best.initial_distance,
                "annealed": best.best_distance,
                "recovered": recovered,
                "chain_distances": list(search.distances),
            }

    table = render_table(
        [
            "pattern",
            "d identity",
            "d random",
            "d annealed",
            "recovered",
            "best chain",
        ],
        rows,
        title=(
            f"Multi-chain annealing ({chains} chains x {steps} steps) on "
            f"the {nodes}-node radix-{RADIX} torus "
            f"(Eq 17 random expectation: {eq17:.2f} hops)"
        ),
    )
    return ExperimentResult(
        experiment="locality-search",
        title="Recoverable locality by communication pattern",
        tables=[table],
        notes=[
            "Patterns whose structure embeds in the torus (neighbors, "
            "stencils, rings) anneal from the Eq 17 random plateau back "
            "toward single-hop distances; structureless patterns "
            "(all-to-all, star) have nothing for placement to exploit — "
            "the operational meaning of physical locality in Section 2.1.",
            "All chains share one cached distance table; restarts differ "
            "only in their seed, and the best chain is reported.",
        ],
        data=data,
    )

"""The calibrated Alewife-like system of Section 3.

The paper validates its model on the MIT Alewife architecture: Sparcle
processors with four hardware contexts and an 11-cycle context switch, a
64-kilobyte cache with 16-byte lines, the LimitLESS directory protocol,
and a radix-8 two-dimensional torus of 8-bit channels clocked twice as
fast as the processors.  Known-from-the-paper constants:

* ``B = 12`` flits (96-bit coherence messages over 8-bit channels);
* ``g = 3.2`` messages per transaction;
* ``c ~= 2`` critical-path messages, measured to grow ~15 % from one
  context to four (Section 3.3) — we interpolate linearly in ``p``;
* ``s = 3.26`` for two contexts (Figure 6), pinning ``c(2) = 2g/3.26``;
* network twice the processor clock; context switch ``T_s = 11``.

The paper does **not** publish the synthetic application's computation
grain ``T_r`` or the fixed transaction overhead ``T_f`` in cycles; it
gives structural facts instead: fixed transaction overhead is about
two-thirds of the total fixed issue-time component and corresponds to
roughly 1-1.5 microseconds at 33-40 MHz (Section 4.2), and the resulting
expected gains are ~2 at a thousand processors and ~40-55 at a million
(Figure 7), with Table 1's exact values for one context.

Calibration (see EXPERIMENTS.md for the fit):

* ``T_r = 8`` processor cycles — "particularly small computation grain";
* ``T_f = 40 * p`` processor cycles — the fixed transaction *contribution*
  ``T_f / p`` of Eq 18 stays ~40 cycles (~1.2 us at 33 MHz) in every
  configuration, which is how Figure 8 describes it, and which is also
  what makes the Figure 7 gain curves nearly coincide for p = 1, 2, 4
  (physically: the contexts share one cache/controller, so per-transaction
  controller occupancy grows with the number of contexts issuing — the
  same protocol interaction the paper blames for the growth of ``c``);
* Section 4's modeled values are reproduced by the *base* network model —
  with these constants Table 1 comes out 2.03/3.10/4.47/5.85 and
  40.6/67.5/101.1/134.5 against the paper's 2.1/3.1/4.5/5.9 and
  41.2/68.3/101.6/134.3 — so :func:`alewife_system` disables the
  node-channel extension by default.  The 64-node *validation* models
  (Figures 3-5) enable it, where it contributes the 2-5 network cycles
  the paper reports; use :func:`alewife_validation_system`.
"""

from __future__ import annotations

from repro.core.application import ApplicationModel
from repro.core.network import TorusNetworkModel
from repro.core.system import SystemModel
from repro.core.transaction import TransactionModel
from repro.errors import ParameterError
from repro.units import ALEWIFE_CLOCKS

__all__ = [
    "MESSAGE_FLITS",
    "MESSAGES_PER_TRANSACTION",
    "CONTEXT_SWITCH_CYCLES",
    "GRAIN_CYCLES",
    "FIXED_OVERHEAD_CYCLES_PER_CONTEXT",
    "MACHINE_RADIX",
    "MACHINE_DIMENSIONS",
    "critical_messages",
    "fixed_overhead",
    "alewife_application",
    "alewife_transaction",
    "alewife_network",
    "alewife_system",
    "alewife_validation_system",
]

#: Average message size in flits: 96-bit messages on 8-bit channels.
MESSAGE_FLITS = 12.0

#: Average messages per coherence transaction (Section 3.2).
MESSAGES_PER_TRANSACTION = 3.2

#: Sparcle context-switch time in processor cycles.
CONTEXT_SWITCH_CYCLES = 11.0

#: Calibrated synthetic-application computation grain, processor cycles.
GRAIN_CYCLES = 8.0

#: Calibrated fixed transaction overhead *per context*, processor cycles:
#: ``T_f = FIXED_OVERHEAD_CYCLES_PER_CONTEXT * p`` (~1.2 us contribution
#: per Eq 18 at 33 MHz, matching Section 4.2's 1-1.5 us description).
FIXED_OVERHEAD_CYCLES_PER_CONTEXT = 40.0

#: The simulated machine: 64 nodes as a radix-8 two-dimensional torus.
MACHINE_RADIX = 8
MACHINE_DIMENSIONS = 2

#: Latency sensitivity measured for two contexts (Figure 6): pins c(2).
_SENSITIVITY_TWO_CONTEXTS = 3.26
#: Fractional growth of c per additional context (15 % from p=1 to p=4).
_CRITICAL_GROWTH_PER_CONTEXT = 0.05


def critical_messages(contexts: float) -> float:
    """Critical-path message count ``c`` as a function of ``p``.

    Section 3.3: an interaction between the asynchronous benchmark and
    the coherence protocol makes ``c`` grow with the number of contexts —
    15 % from one context to four.  We interpolate linearly and anchor
    the absolute level so that ``s(2) = p*g/c = 3.26`` exactly.
    """
    if not contexts >= 1:
        raise ParameterError(f"contexts must be >= 1, got {contexts!r}")
    anchored_at_two = 2.0 * MESSAGES_PER_TRANSACTION / _SENSITIVITY_TWO_CONTEXTS
    base = anchored_at_two / (1.0 + _CRITICAL_GROWTH_PER_CONTEXT)
    return base * (1.0 + _CRITICAL_GROWTH_PER_CONTEXT * (contexts - 1.0))


def fixed_overhead(contexts: float) -> float:
    """Calibrated fixed transaction overhead ``T_f(p)``, processor cycles.

    Scales with the number of contexts so the per-transaction
    *contribution* ``T_f / p`` stays at the ~1.2 us Figure 8 reports in
    all six validated configurations (see module docstring).
    """
    if not contexts >= 1:
        raise ParameterError(f"contexts must be >= 1, got {contexts!r}")
    return FIXED_OVERHEAD_CYCLES_PER_CONTEXT * contexts


def alewife_application(contexts: float = 1.0) -> ApplicationModel:
    """The synthetic application on a ``contexts``-way Sparcle."""
    return ApplicationModel(
        grain=GRAIN_CYCLES,
        contexts=contexts,
        switch_time=CONTEXT_SWITCH_CYCLES,
    )


def alewife_transaction(contexts: float = 1.0) -> TransactionModel:
    """LimitLESS-style coherence transactions, with the c(p) correction."""
    return TransactionModel(
        critical_messages=critical_messages(contexts),
        messages_per_transaction=MESSAGES_PER_TRANSACTION,
        fixed_overhead=fixed_overhead(contexts),
    )


def alewife_network(
    dimensions: int = MACHINE_DIMENSIONS,
    node_channel_contention: bool = True,
) -> TorusNetworkModel:
    """The Alewife mesh model (8-bit channels, 12-flit messages)."""
    return TorusNetworkModel(
        dimensions=dimensions,
        message_size=MESSAGE_FLITS,
        clamp_local=True,
        node_channel_contention=node_channel_contention,
    )


def alewife_system(
    contexts: float = 1.0,
    dimensions: int = MACHINE_DIMENSIONS,
    grain: float = None,
    fixed_overhead: float = None,
    node_channel_contention: bool = False,
) -> SystemModel:
    """The full calibrated system of Section 3 / Section 4.

    Parameters
    ----------
    contexts:
        Degree of multithreading ``p`` (the paper runs 1, 2, and 4).
    dimensions:
        Network dimensionality (the paper's machine is 2-D).
    grain, fixed_overhead:
        Override the calibrated ``T_r`` / ``T_f`` (processor cycles).
    node_channel_contention:
        Off by default — Section 4's modeled values are reproduced by the
        base network model (see module docstring).  The 64-node
        validation comparisons enable it via
        :func:`alewife_validation_system`.
    """
    application = alewife_application(contexts)
    if grain is not None:
        application = ApplicationModel(
            grain=grain,
            contexts=application.contexts,
            switch_time=application.switch_time,
        )
    transaction = alewife_transaction(contexts)
    if fixed_overhead is not None:
        transaction = TransactionModel(
            critical_messages=transaction.critical_messages,
            messages_per_transaction=transaction.messages_per_transaction,
            fixed_overhead=fixed_overhead,
        )
    return SystemModel(
        application=application,
        transaction=transaction,
        network=alewife_network(
            dimensions=dimensions,
            node_channel_contention=node_channel_contention,
        ),
        clocks=ALEWIFE_CLOCKS,
    )


def alewife_validation_system(
    contexts: float = 1.0,
    grain: float = None,
    fixed_overhead: float = None,
) -> SystemModel:
    """The 64-node validation configuration (Figures 3-5).

    Identical to :func:`alewife_system` but with the node-channel
    contention extension enabled, as the paper does for the Section 3
    comparisons against the detailed simulator, where it contributes the
    reported two-to-five network cycles of extra message latency.
    """
    return alewife_system(
        contexts=contexts,
        grain=grain,
        fixed_overhead=fixed_overhead,
        node_channel_contention=True,
    )

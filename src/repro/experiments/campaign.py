"""Parameter-grid campaigns over the analytical model.

A campaign evaluates the combined model over the cartesian product of
parameter axes — contexts, machine sizes, network slowdowns, dimensions,
grain scales — and collects flat records ready for tabulation or CSV
export.  It is the bulk-query layer the per-figure drivers are special
cases of: anything Figure 7 or Table 1 sweeps, a campaign can sweep
jointly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.analysis.tables import render_table
from repro.core.combined import solve_batch
from repro.errors import ParameterError
from repro.experiments.alewife import alewife_system
from repro.topology.distance import random_traffic_distance_for_size

__all__ = ["CampaignRecord", "Campaign", "run_campaign"]

#: Axes a campaign may sweep, with their SystemModel hooks.
AXES = ("contexts", "processors", "slowdown", "dimensions", "grain_scale")

DEFAULTS: Dict[str, Sequence] = {
    "contexts": (1,),
    "processors": (1000.0,),
    "slowdown": (1.0,),
    "dimensions": (2,),
    "grain_scale": (1.0,),
}


@dataclass(frozen=True)
class CampaignRecord:
    """One grid point's parameters and results."""

    contexts: float
    processors: float
    slowdown: float
    dimensions: int
    grain_scale: float
    random_distance: float
    gain: float
    ideal_rate: float
    random_rate: float

    def as_dict(self) -> Dict:
        return {
            "contexts": self.contexts,
            "processors": self.processors,
            "slowdown": self.slowdown,
            "dimensions": self.dimensions,
            "grain_scale": self.grain_scale,
            "random_distance": self.random_distance,
            "gain": self.gain,
            "ideal_rate": self.ideal_rate,
            "random_rate": self.random_rate,
        }


@dataclass
class Campaign:
    """Results of a grid sweep."""

    axes: Dict[str, Sequence]
    records: List[CampaignRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def where(self, **criteria) -> List[CampaignRecord]:
        """Records matching every given axis value exactly."""
        unknown = set(criteria) - set(AXES)
        if unknown:
            raise ParameterError(f"unknown axes: {sorted(unknown)}")
        selected = []
        for record in self.records:
            if all(
                getattr(record, axis) == value
                for axis, value in criteria.items()
            ):
                selected.append(record)
        return selected

    def column(self, name: str) -> List:
        """One field across all records, in sweep order."""
        return [getattr(record, name) for record in self.records]

    def render(self, max_rows: Optional[int] = 40) -> str:
        """Tabulate the records (truncated beyond ``max_rows``)."""
        headers = [
            "p", "N", "slowdown", "n", "grain x", "d random", "gain",
        ]
        rows = [
            (
                r.contexts,
                f"{r.processors:,.0f}",
                r.slowdown,
                r.dimensions,
                r.grain_scale,
                round(r.random_distance, 1),
                round(r.gain, 2),
            )
            for r in self.records
        ]
        truncated = ""
        if max_rows is not None and len(rows) > max_rows:
            truncated = f" (showing {max_rows} of {len(rows)} records)"
            rows = rows[:max_rows]
        return render_table(
            headers, rows, title=f"Campaign over {list(self.axes)}{truncated}"
        )


def run_campaign(**axes: Iterable) -> Campaign:
    """Sweep the calibrated Alewife system over the given axes.

    Example::

        campaign = run_campaign(contexts=[1, 2, 4],
                                processors=[1e3, 1e6],
                                slowdown=[1, 8])
        campaign.where(contexts=2, slowdown=8)

    Unswept axes use the Section 3 defaults.
    """
    unknown = set(axes) - set(AXES)
    if unknown:
        raise ParameterError(
            f"unknown axes: {sorted(unknown)}; known: {list(AXES)}"
        )
    resolved: Dict[str, Sequence] = {
        name: tuple(axes.get(name, DEFAULTS[name])) for name in AXES
    }
    for name, values in resolved.items():
        if not values:
            raise ParameterError(f"axis {name!r} has no values")

    campaign = Campaign(axes={k: v for k, v in resolved.items() if len(v) > 1 or k in axes})
    grid = list(
        itertools.product(*(resolved[name] for name in AXES))
    )

    # The whole grid is solved batched: each grid point contributes an
    # ideal lane (d = 1) and a random lane (Eq 17 distance for N), with
    # per-lane sensitivity (contexts) and intercept (slowdown, grain).
    # The network object only varies with the dimensions axis, so lanes
    # are grouped per dimensionality and each group solved in one call.
    groups: Dict[int, Dict[str, list]] = {}
    points = []
    for contexts, processors, slowdown, dimensions, grain_scale in grid:
        system = (
            alewife_system(contexts=contexts, dimensions=int(dimensions))
            .with_network_slowdown(float(slowdown))
        )
        if grain_scale != 1.0:
            system = system.with_grain_scaled(float(grain_scale))
        node = system.node
        random_distance = random_traffic_distance_for_size(
            float(processors), system.network.dimensions
        )
        group = groups.setdefault(
            int(dimensions),
            {
                "network": system.network,
                "node": node,
                "distances": [],
                "sensitivities": [],
                "intercepts": [],
            },
        )
        lane = len(group["distances"])
        group["distances"] += [1.0, random_distance]
        group["sensitivities"] += [node.sensitivity] * 2
        group["intercepts"] += [node.intercept] * 2
        points.append((int(dimensions), lane, random_distance))

    with obs.span(
        "campaign.solve",
        points=len(grid),
        groups=len(groups),
        lanes=sum(len(g["distances"]) for g in groups.values()),
    ):
        solved = {
            dims: solve_batch(
                group["node"],
                group["network"],
                group["distances"],
                sensitivity=np.array(group["sensitivities"]),
                intercept=np.array(group["intercepts"]),
            )
            for dims, group in groups.items()
        }

    for (contexts, processors, slowdown, dimensions, grain_scale), (
        dims,
        lane,
        random_distance,
    ) in zip(grid, points):
        batch = solved[dims]
        ideal_rate = float(batch.transaction_rate[lane])
        random_rate = float(batch.transaction_rate[lane + 1])
        campaign.records.append(
            CampaignRecord(
                contexts=contexts,
                processors=float(processors),
                slowdown=float(slowdown),
                dimensions=int(dimensions),
                grain_scale=float(grain_scale),
                random_distance=random_distance,
                gain=ideal_rate / random_rate,
                ideal_rate=ideal_rate,
                random_rate=random_rate,
            )
        )
    if obs.is_enabled():
        obs.REGISTRY.counter(
            "campaign.records", help="campaign grid points evaluated"
        ).inc(len(campaign.records))
    return campaign

"""Common result type for experiment drivers.

Every experiment driver returns an :class:`ExperimentResult`: rendered
tables for humans plus the raw data for tests and downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one reproduction experiment."""

    experiment: str
    title: str
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)
    #: Runner-attached diagnostics (solver counters, wall time).  Not
    #: part of :meth:`render` so reports stay identical regardless of
    #: how (or how parallel) the experiment ran.
    perf: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.extend(self.tables)
        if self.notes:
            bullet_lines = "\n".join(f"  - {note}" for note in self.notes)
            parts.append(f"Notes:\n{bullet_lines}")
        return "\n\n".join(parts)

    def render_perf(self) -> str:
        """One-line diagnostics summary for ``--verbose`` output."""
        if not self.perf:
            return f"[perf] {self.experiment}: no counters recorded"
        pieces = []
        wall = self.perf.get("wall_seconds")
        if wall is not None:
            pieces.append(f"wall {wall:.3f}s")
        for name in (
            "solve_calls",
            "cache_hits",
            "cache_misses",
            "batch_solves",
            "batch_points",
        ):
            value = self.perf.get(name)
            if value:
                pieces.append(f"{name} {value}")
        detail = ", ".join(pieces) if pieces else "all counters zero"
        return f"[perf] {self.experiment}: {detail}"

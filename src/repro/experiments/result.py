"""Common result type for experiment drivers.

Every experiment driver returns an :class:`ExperimentResult`: rendered
tables for humans plus the raw data for tests and downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ExperimentResult", "render_perf_line"]

#: Counter names rendered (in order) by :func:`render_perf_line`.
_PERF_COUNTER_ORDER = (
    "solve_calls",
    "cache_hits",
    "cache_misses",
    "batch_solves",
    "batch_points",
)


def render_perf_line(experiment: str, perf: Dict) -> str:
    """One-line diagnostics summary for ``--verbose`` output.

    Works for completed runs and for the partial counters a failed run
    leaves behind (``perf["failed"]`` truthy adds a failure marker, so
    partial counts are never mistaken for a full run's).
    """
    if not perf:
        return f"[perf] {experiment}: no counters recorded"
    pieces = []
    wall = perf.get("wall_seconds")
    if wall is not None:
        pieces.append(f"wall {wall:.3f}s")
    for name in _PERF_COUNTER_ORDER:
        value = perf.get(name)
        if value:
            pieces.append(f"{name} {value}")
    detail = ", ".join(pieces) if pieces else "all counters zero"
    if perf.get("failed"):
        return f"[perf] {experiment}: FAILED (partial counts) — {detail}"
    return f"[perf] {experiment}: {detail}"


@dataclass
class ExperimentResult:
    """Output of one reproduction experiment."""

    experiment: str
    title: str
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)
    #: Runner-attached diagnostics (solver counters, wall time).  Not
    #: part of :meth:`render` so reports stay identical regardless of
    #: how (or how parallel) the experiment ran.
    perf: Dict = field(default_factory=dict)
    #: Runner-attached observability payload (span records and the pid
    #: that collected them) when :mod:`repro.obs` is enabled; empty
    #: otherwise.  Like :attr:`perf`, never part of :meth:`render`.
    obs: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.extend(self.tables)
        if self.notes:
            bullet_lines = "\n".join(f"  - {note}" for note in self.notes)
            parts.append(f"Notes:\n{bullet_lines}")
        return "\n\n".join(parts)

    def render_perf(self) -> str:
        """One-line diagnostics summary for ``--verbose`` output."""
        return render_perf_line(self.experiment, self.perf)

"""Common result type for experiment drivers.

Every experiment driver returns an :class:`ExperimentResult`: rendered
tables for humans plus the raw data for tests and downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Output of one reproduction experiment."""

    experiment: str
    title: str
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report."""
        parts = [f"== {self.experiment}: {self.title} =="]
        parts.extend(self.tables)
        if self.notes:
            bullet_lines = "\n".join(f"  - {note}" for note in self.notes)
            parts.append(f"Notes:\n{bullet_lines}")
        return "\n\n".join(parts)

"""Per-figure/table experiment drivers and the calibrated Alewife system."""

from repro.experiments.alewife import (
    alewife_application,
    alewife_network,
    alewife_system,
    alewife_transaction,
    alewife_validation_system,
)
from repro.experiments.campaign import Campaign, CampaignRecord, run_campaign
from repro.experiments.result import ExperimentResult

__all__ = [
    "alewife_system",
    "alewife_validation_system",
    "alewife_application",
    "alewife_transaction",
    "alewife_network",
    "ExperimentResult",
    "Campaign",
    "CampaignRecord",
    "run_campaign",
]

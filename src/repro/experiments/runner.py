"""Experiment registry and batch runner.

Maps experiment identifiers (``figure-3`` .. ``figure-8``, ``table-1``,
and the ablations) to their drivers.  ``repro-locality run <id>`` and the
benchmarks both resolve experiments through this registry, so the set of
reproducible artifacts lives in exactly one place.  Compact aliases
(``fig3``, ``table1``) resolve to their canonical ids via
:func:`resolve_experiment_id`.

``run_all`` can fan experiments out over the persistent warm worker
pool (``repro-locality run --all --jobs N``; :mod:`repro.core.pool`) —
the same pool the replication sweep and multi-chain annealer share, so
a campaign pays worker start-up once.  Each experiment is pure —
drivers take only the ``quick`` flag and share no mutable state — so
per-process isolation changes nothing about the results, and the runner
reassembles them in registry order regardless of completion order.

With observability on (:mod:`repro.obs`), every experiment runs inside
an ``experiment`` span and ships its span records back on
``result.obs`` — including from pool workers, whose spans and solver
counters the parent merges so a ``--jobs N`` run yields one combined
trace and manifest equivalent to the serial run's.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs, perf
from repro.core.pool import FALLBACK_ERRORS, WorkerPool, get_pool, note_fallback
from repro.errors import ParameterError
from repro.experiments import (
    ablations,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    locality_scale,
    locality_search,
    organizations,
    scaling_sim,
    table1,
    ucl_nucl,
)
from repro.experiments.result import ExperimentResult
from repro.obs.metrics import LATENCY_BUCKETS_SECONDS

__all__ = [
    "REGISTRY",
    "TELEMETRY_RUNNERS",
    "experiment_ids",
    "resolve_experiment_id",
    "run_experiment",
    "run_all",
]

Runner = Callable[[bool], ExperimentResult]

REGISTRY: Dict[str, Runner] = {
    "figure-3": fig3.run,
    "figure-4": fig4.run,
    "figure-5": fig5.run,
    "figure-6": fig6.run,
    "figure-7": fig7.run,
    "figure-8": fig8.run,
    "table-1": table1.run,
    "ucl-vs-nucl": ucl_nucl.run,
    "locality-search": locality_search.run,
    "locality-scale": locality_scale.run,
    "organizations": organizations.run,
    "scaling-sim": scaling_sim.run,
    "ablation-feedback": ablations.run_feedback,
    "ablation-clamp": ablations.run_clamp,
    "ablation-node-channel": ablations.run_node_channel,
    "ablation-dimension": ablations.run_dimension,
    "ablation-buffering": ablations.run_buffering,
    "ablation-uniformity": ablations.run_uniformity,
}


#: Experiments whose drivers accept a ``telemetry`` keyword — fabric
#: instrumentation threaded through their simulator replications (see
#: :mod:`repro.sim.telemetry`).  ``repro-locality run --telemetry``
#: resolves against this set.
TELEMETRY_RUNNERS = frozenset({"scaling-sim"})


def experiment_ids() -> List[str]:
    """All known experiment identifiers, paper artifacts first."""
    return list(REGISTRY)


def _normalize(identifier: str) -> str:
    return (
        identifier.strip()
        .lower()
        .replace("figure", "fig")
        .replace("-", "")
        .replace("_", "")
    )


def resolve_experiment_id(identifier: str) -> str:
    """Map compact aliases (``fig3``, ``table1``) to canonical ids.

    Exact registry ids pass through unchanged; unknown identifiers are
    returned as-is so the caller's usual unknown-experiment error (or
    argparse ``choices`` check) still fires with the original spelling.
    """
    if identifier in REGISTRY:
        return identifier
    aliases = {_normalize(known): known for known in REGISTRY}
    return aliases.get(_normalize(identifier), identifier)


def run_experiment(
    identifier: str, quick: bool = False, telemetry: bool = False
) -> ExperimentResult:
    """Run one experiment by id, attaching perf diagnostics to the result.

    Counters are snapshotted before the driver and the delta is computed
    on *every* exit path, so a raising experiment still accounts for the
    solver work it did: the partial delta (with a ``failed`` marker and
    wall time) is attached to the exception as ``partial_perf`` for the
    CLI to report.  ``telemetry`` asks the driver to instrument its
    simulator replications with per-channel fabric telemetry; only the
    experiments in :data:`TELEMETRY_RUNNERS` support it.
    """
    identifier = resolve_experiment_id(identifier)
    runner = REGISTRY.get(identifier)
    if runner is None:
        known = ", ".join(REGISTRY)
        raise ParameterError(
            f"unknown experiment {identifier!r}; known: {known}"
        )
    if telemetry and identifier not in TELEMETRY_RUNNERS:
        supported = ", ".join(sorted(TELEMETRY_RUNNERS))
        raise ParameterError(
            f"experiment {identifier!r} does not support --telemetry; "
            f"supported: {supported}"
        )
    collecting = obs.is_enabled()
    mark = obs.trace_mark() if collecting else 0
    before = perf.snapshot()
    started = time.perf_counter()
    result: Optional[ExperimentResult] = None
    try:
        with obs.span("experiment", experiment=identifier, quick=bool(quick)):
            if telemetry:
                result = runner(quick, telemetry=True)
            else:
                result = runner(quick)
    except BaseException as exc:
        elapsed = time.perf_counter() - started
        exc.partial_perf = dict(
            perf.delta(before), wall_seconds=elapsed, failed=True
        )
        raise
    elapsed = time.perf_counter() - started
    result.perf = dict(perf.delta(before), wall_seconds=elapsed)
    if collecting:
        obs.REGISTRY.histogram(
            "experiment.wall_seconds",
            LATENCY_BUCKETS_SECONDS,
            help="per-experiment wall time",
        ).observe(elapsed)
        result.obs = {"pid": os.getpid(), "spans": obs.spans_since(mark)}
    return result


def _run_one(arguments) -> ExperimentResult:
    """Pool worker: run one experiment in an isolated process.

    Module-level so it pickles; takes a single tuple so it maps cleanly.
    ``collect_obs`` mirrors the parent's observability switch into the
    worker, so span records ride back on the result for merging.
    """
    identifier, quick, collect_obs = arguments
    if collect_obs:
        # Fork-started workers inherit the parent's trace buffer —
        # including its pid stamp and any spans recorded before the
        # fork; warm workers additionally carry spans from earlier
        # tasks.  Start from a fresh buffer so this worker's spans carry
        # its own pid and nothing is shipped back twice.  The solver
        # cache is cleared too: warm workers keep their caches across
        # tasks (that is the point of the pool), but an instrumented run
        # must record the same solver spans the serial path would, not
        # whatever a previous task happened to leave cached.
        from repro.core.combined import clear_solve_cache

        clear_solve_cache()
        obs.enable()
        obs.reset()
    elif obs.is_enabled():
        obs.disable()
        obs.reset()
    return run_experiment(identifier, quick)


def _pool_run_one(payload, task) -> ExperimentResult:
    """Warm-pool task adapter: experiments carry no broadcast payload."""
    return _run_one(task)


def _merge_worker_observability(results: Sequence[ExperimentResult]) -> None:
    """Fold pool workers' spans and counters into this process's state."""
    own_pid = os.getpid()
    obs.ingest_worker_payloads(result.obs for result in results)
    for result in results:
        if not result.obs or result.obs.get("pid") == own_pid:
            continue
        for name, value in result.perf.items():
            if name in perf.snapshot() and value:
                setattr(
                    perf.COUNTERS, name, getattr(perf.COUNTERS, name) + value
                )


def run_all(
    quick: bool = False,
    jobs: int = 1,
    experiments: Optional[Sequence[str]] = None,
    pool: Optional[WorkerPool] = None,
) -> List[ExperimentResult]:
    """Run every registered experiment (or the ``experiments`` subset).

    Results come back in registry order.  With ``jobs > 1`` the
    experiments run across the process-global warm worker pool, one
    experiment per task (one chunk per worker dispatch keeps the big
    experiments load-balanced); results are identical to a serial run
    (each driver depends only on its arguments), and when observability
    is on the workers' spans and counters are merged into the parent so
    traces and manifests cover the whole campaign.  Falls back to the
    serial path — recorded on the ``pool.fallback`` counter and warned —
    when the platform cannot start a pool.  Pass ``pool`` to use a
    specific pool instead of the global one.
    """
    if experiments is None:
        identifiers = experiment_ids()
    else:
        identifiers = [resolve_experiment_id(e) for e in experiments]
        unknown = [i for i in identifiers if i not in REGISTRY]
        if unknown:
            raise ParameterError(
                f"unknown experiments {unknown}; known: {experiment_ids()}"
            )
    if jobs > 1 or pool is not None:
        try:
            worker_pool = pool if pool is not None else get_pool(jobs)
            work = [
                (identifier, quick, obs.is_enabled())
                for identifier in identifiers
            ]
            # Experiments vary widely in cost; chunk_size=1 lets fast
            # ones drain while a slow one occupies its worker.
            results = worker_pool.map(_pool_run_one, work, chunk_size=1)
            if obs.is_enabled():
                _merge_worker_observability(results)
            return results
        except FALLBACK_ERRORS as error:
            note_fallback("experiments.run_all", error)
    return [run_experiment(identifier, quick) for identifier in identifiers]

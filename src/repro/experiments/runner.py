"""Experiment registry and batch runner.

Maps experiment identifiers (``figure-3`` .. ``figure-8``, ``table-1``,
and the ablations) to their drivers.  ``repro-locality run <id>`` and the
benchmarks both resolve experiments through this registry, so the set of
reproducible artifacts lives in exactly one place.

``run_all`` can fan experiments out over a process pool
(``repro-locality run --all --jobs N``).  Each experiment is pure —
drivers take only the ``quick`` flag and share no mutable state — so
per-process isolation changes nothing about the results, and the runner
reassembles them in registry order regardless of completion order.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

from repro import perf
from repro.errors import ParameterError
from repro.experiments import (
    ablations,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    organizations,
    scaling_sim,
    table1,
    ucl_nucl,
)
from repro.experiments.result import ExperimentResult

__all__ = ["REGISTRY", "experiment_ids", "run_experiment", "run_all"]

Runner = Callable[[bool], ExperimentResult]

REGISTRY: Dict[str, Runner] = {
    "figure-3": fig3.run,
    "figure-4": fig4.run,
    "figure-5": fig5.run,
    "figure-6": fig6.run,
    "figure-7": fig7.run,
    "figure-8": fig8.run,
    "table-1": table1.run,
    "ucl-vs-nucl": ucl_nucl.run,
    "organizations": organizations.run,
    "scaling-sim": scaling_sim.run,
    "ablation-feedback": ablations.run_feedback,
    "ablation-clamp": ablations.run_clamp,
    "ablation-node-channel": ablations.run_node_channel,
    "ablation-dimension": ablations.run_dimension,
    "ablation-buffering": ablations.run_buffering,
    "ablation-uniformity": ablations.run_uniformity,
}


def experiment_ids() -> List[str]:
    """All known experiment identifiers, paper artifacts first."""
    return list(REGISTRY)


def run_experiment(identifier: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id, attaching perf diagnostics to the result."""
    runner = REGISTRY.get(identifier)
    if runner is None:
        known = ", ".join(REGISTRY)
        raise ParameterError(
            f"unknown experiment {identifier!r}; known: {known}"
        )
    before = perf.snapshot()
    started = time.perf_counter()
    result = runner(quick)
    elapsed = time.perf_counter() - started
    result.perf = dict(perf.delta(before), wall_seconds=elapsed)
    return result


def _run_one(arguments) -> ExperimentResult:
    """Pool worker: run one experiment in a fresh process.

    Module-level so it pickles; takes a single tuple so it maps cleanly.
    """
    identifier, quick = arguments
    return run_experiment(identifier, quick)


def run_all(quick: bool = False, jobs: int = 1) -> List[ExperimentResult]:
    """Run every registered experiment, in registry order.

    With ``jobs > 1`` the experiments run across a
    ``ProcessPoolExecutor`` of that many workers; results are still
    returned in registry order, and are identical to a serial run (each
    driver depends only on its arguments).  Falls back to the serial
    path when ``jobs <= 1`` or the platform cannot start a pool.
    """
    identifiers = experiment_ids()
    if jobs > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                work = [(identifier, quick) for identifier in identifiers]
                return list(pool.map(_run_one, work))
        except (ImportError, NotImplementedError, OSError):
            pass  # no usable process pool on this platform; run serially
    return [run_experiment(identifier, quick) for identifier in identifiers]

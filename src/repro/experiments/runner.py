"""Experiment registry and batch runner.

Maps experiment identifiers (``figure-3`` .. ``figure-8``, ``table-1``,
and the ablations) to their drivers.  ``repro-locality run <id>`` and the
benchmarks both resolve experiments through this registry, so the set of
reproducible artifacts lives in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ParameterError
from repro.experiments import (
    ablations,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    organizations,
    scaling_sim,
    table1,
    ucl_nucl,
)
from repro.experiments.result import ExperimentResult

__all__ = ["REGISTRY", "experiment_ids", "run_experiment", "run_all"]

Runner = Callable[[bool], ExperimentResult]

REGISTRY: Dict[str, Runner] = {
    "figure-3": fig3.run,
    "figure-4": fig4.run,
    "figure-5": fig5.run,
    "figure-6": fig6.run,
    "figure-7": fig7.run,
    "figure-8": fig8.run,
    "table-1": table1.run,
    "ucl-vs-nucl": ucl_nucl.run,
    "organizations": organizations.run,
    "scaling-sim": scaling_sim.run,
    "ablation-feedback": ablations.run_feedback,
    "ablation-clamp": ablations.run_clamp,
    "ablation-node-channel": ablations.run_node_channel,
    "ablation-dimension": ablations.run_dimension,
    "ablation-buffering": ablations.run_buffering,
    "ablation-uniformity": ablations.run_uniformity,
}


def experiment_ids() -> List[str]:
    """All known experiment identifiers, paper artifacts first."""
    return list(REGISTRY)


def run_experiment(identifier: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    runner = REGISTRY.get(identifier)
    if runner is None:
        known = ", ".join(REGISTRY)
        raise ParameterError(
            f"unknown experiment {identifier!r}; known: {known}"
        )
    return runner(quick)


def run_all(quick: bool = False) -> List[ExperimentResult]:
    """Run every registered experiment in order."""
    return [runner(quick) for runner in REGISTRY.values()]

"""Command-line interface: ``repro-locality`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the reproducible experiments;
* ``run <id> [--quick]`` — run one experiment and print its report;
* ``run --all [--jobs N]`` — run every experiment, optionally across a
  process pool (reports are identical to a serial run);
* ``all [--quick] [--jobs N]`` — same as ``run --all``;
* ``diagnose <id>`` — run one experiment with solver convergence
  diagnostics on and report per-solve iteration counts, branch
  selection, and flagged (near-non-convergent or saturated) solves;
* ``anneal [--pattern NAME] [--chains R] [--jobs N] ...`` — multi-chain
  annealing search for a low-distance mapping of a communication
  pattern onto a torus;
* ``gain --processors N [--contexts P] [--slowdown F]`` — one-off
  expected-gain query against the calibrated Alewife system.

Experiment ids accept compact aliases: ``fig3`` == ``figure-3``,
``table1`` == ``table-1``.

``--verbose`` on ``run``/``all`` appends per-experiment solver counters
and wall time after each report — including partial counts (with a
``FAILED`` marker) when an experiment raises.  ``--trace DIR`` on
``run``/``all`` enables the observability layer and writes a Chrome
trace (``trace.json``, loadable in ``chrome://tracing`` / Perfetto), raw
span records (``trace.jsonl``), and a provenance manifest
(``manifest.json``) into ``DIR``.

A second console script, ``repro-sim`` (:func:`sim_main`), fronts the
cycle-level simulator directly:

* ``replicate`` — run one machine configuration under several root
  seeds (optionally across a process pool with ``--jobs``, and/or
  packed into lockstep batches with ``--batch``, which shares one
  engine pass across seeds with bit-identical per-seed results) and
  print mean / std / 95% CI for every measured metric; ``--json FILE``
  dumps
  the per-seed summaries and aggregates, ``--trace DIR`` writes the
  usual trace + manifest with the replication seeds recorded, and
  ``--telemetry`` instruments every replication's fabric
  (:mod:`repro.sim.telemetry`) and prints the merged per-link
  utilization, latency distribution, and tree-saturation verdict;
* ``probe`` — drive one fabric-level workload (uniform / saturated /
  hotspot50 / tree_saturation) under per-channel telemetry and print
  the model-vs-measured contention table, the saturation-onset report,
  and a link-load heatmap; ``--output DIR`` writes ``telemetry.jsonl``,
  ``heatmap.txt``, ``saturation.json``, and a Chrome trace whose
  counter tracks carry the per-epoch congestion series.

``repro-locality run <id> --telemetry`` asks experiments that replicate
on the simulator (currently ``scaling-sim``) to run instrumented and
append their model-vs-measured contention table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.experiments.alewife import alewife_system
from repro.experiments.result import render_perf_line
from repro.experiments.runner import (
    experiment_ids,
    resolve_experiment_id,
    run_all,
    run_experiment,
)

__all__ = ["main", "build_parser", "sim_main", "build_sim_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-locality argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-locality",
        description=(
            "Reproduction of Johnson (ISCA 1992): The Impact of "
            "Communication Locality on Large-Scale Multiprocessor "
            "Performance"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment", nargs="?", choices=experiment_ids(),
        type=resolve_experiment_id, metavar="EXPERIMENT",
        help="experiment id or alias, e.g. figure-3 / fig3 (omit with --all)",
    )
    run_parser.add_argument(
        "--all", action="store_true", dest="run_all",
        help="run every registered experiment",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="shorter simulation windows / coarser sweeps",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm pool workers for --all (default: 1, serial; workers "
        "persist across the campaign)",
    )
    run_parser.add_argument(
        "--verbose", action="store_true",
        help="print per-experiment perf counters and wall time",
    )
    run_parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="enable observability; write Chrome trace + manifest to DIR",
    )
    run_parser.add_argument(
        "--telemetry", action="store_true",
        help="instrument simulator replications with per-channel fabric "
        "telemetry (supported by scaling-sim)",
    )

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--quick", action="store_true")
    all_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm pool workers (default: 1, serial)",
    )
    all_parser.add_argument("--verbose", action="store_true")
    all_parser.add_argument(
        "--trace", metavar="DIR", default=None,
        help="enable observability; write Chrome trace + manifest to DIR",
    )

    diagnose_parser = subparsers.add_parser(
        "diagnose",
        help="run one experiment with solver convergence diagnostics",
    )
    diagnose_parser.add_argument(
        "experiment", choices=experiment_ids(),
        type=resolve_experiment_id, metavar="EXPERIMENT",
        help="experiment id or alias, e.g. figure-3 / fig3",
    )
    diagnose_parser.add_argument(
        "--quick", action="store_true",
        help="shorter simulation windows / coarser sweeps",
    )
    diagnose_parser.add_argument(
        "--threshold", type=float, default=0.95, metavar="RHO",
        help="flag operating points with utilization above RHO "
        "(default: 0.95)",
    )

    anneal_parser = subparsers.add_parser(
        "anneal",
        help="multi-chain annealing search for a low-distance mapping",
    )
    anneal_parser.add_argument(
        "--pattern", default="torus-neighbor", metavar="NAME",
        help="communication pattern: torus-neighbor, 9pt-stencil, ring, "
        "butterfly, star, all-to-all (default: torus-neighbor)",
    )
    anneal_parser.add_argument(
        "--radix", type=int, default=8, metavar="K",
        help="torus radix k (default: 8)",
    )
    anneal_parser.add_argument(
        "--dimensions", type=int, default=2, metavar="N",
        help="torus dimensions n (default: 2)",
    )
    anneal_parser.add_argument(
        "--chains", type=int, default=4, metavar="R",
        help="independent restart chains (default: 4)",
    )
    anneal_parser.add_argument(
        "--steps", type=int, default=5000, metavar="S",
        help="annealing steps per chain (default: 5000)",
    )
    anneal_parser.add_argument("--seed", type=int, default=0)
    anneal_parser.add_argument(
        "--temperature", type=float, default=2.0,
        help="initial temperature (default: 2.0)",
    )
    anneal_parser.add_argument(
        "--cooling", type=float, default=0.999,
        help="geometric cooling factor in (0, 1) (default: 0.999)",
    )
    anneal_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm pool workers for the chains (default: 1, batched "
        "lockstep in-process)",
    )

    gain_parser = subparsers.add_parser(
        "gain", help="expected locality gain for one machine configuration"
    )
    gain_parser.add_argument("--processors", type=float, required=True)
    gain_parser.add_argument("--contexts", type=float, default=1.0)
    gain_parser.add_argument(
        "--slowdown", type=float, default=1.0,
        help="network slowdown factor vs the base architecture",
    )

    subparsers.add_parser(
        "symbols", help="print the paper's Appendix A symbol -> API table"
    )

    report_parser = subparsers.add_parser(
        "report", help="write a full reproduction report (markdown)"
    )
    report_parser.add_argument(
        "--output", default="reproduction_report.md",
        help="output path (default: reproduction_report.md)",
    )
    report_parser.add_argument(
        "--full", action="store_true",
        help="full-length simulation windows (slower)",
    )
    return parser


def _command_list() -> int:
    for identifier in experiment_ids():
        print(identifier)
    return 0


def _command_run(
    identifier: str,
    quick: bool,
    verbose: bool = False,
    telemetry: bool = False,
) -> int:
    try:
        result = run_experiment(identifier, quick=quick, telemetry=telemetry)
    except Exception as exc:
        print(f"experiment {identifier} failed: {exc}", file=sys.stderr)
        if verbose:
            partial = getattr(exc, "partial_perf", None)
            if partial:
                print(render_perf_line(identifier, partial))
        return 1
    print(result.render())
    if verbose:
        print()
        print(result.render_perf())
    return 0


def _command_all(quick: bool, jobs: int = 1, verbose: bool = False) -> int:
    results = run_all(quick=quick, jobs=jobs)
    for result in results:
        print(result.render())
        print()
    if verbose:
        for result in results:
            print(result.render_perf())
    return 0


def _command_diagnose(identifier: str, quick: bool, threshold: float) -> int:
    from repro import perf
    from repro.obs.diagnostics import render_diagnosis

    obs.enable()
    before = perf.snapshot()
    try:
        run_experiment(identifier, quick=quick)
    except Exception as exc:
        # Still render whatever convergence records were collected; a
        # saturated/non-convergent solve raising is exactly the case the
        # diagnostics exist for.
        print(f"experiment {identifier} raised: {exc}", file=sys.stderr)
    print(
        render_diagnosis(
            obs.diagnostics(),
            identifier,
            utilization_threshold=threshold,
            perf_delta=perf.delta(before),
        )
    )
    return 0


def _command_anneal(args) -> int:
    from repro.experiments.locality_search import pattern_graph
    from repro.mapping.chains import anneal_chains
    from repro.mapping.strategies import random_mapping
    from repro.topology.torus import Torus

    from repro.errors import ReproError

    try:
        torus = Torus(radix=args.radix, dimensions=args.dimensions)
        graph = pattern_graph(args.pattern, args.radix, args.dimensions)
        start = random_mapping(torus.node_count, seed=args.seed)
        search = anneal_chains(
            graph,
            torus,
            start,
            chains=args.chains,
            steps=args.steps,
            seed=args.seed,
            initial_temperature=args.temperature,
            cooling=args.cooling,
            jobs=args.jobs,
        )
    except ReproError as exc:
        print(f"anneal failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"{args.pattern} on the {torus.node_count}-node "
        f"radix-{args.radix} {args.dimensions}-D torus: "
        f"{args.chains} chains x {args.steps} steps"
    )
    for index, result in enumerate(search.results):
        marker = " <- best" if index == search.best_index else ""
        print(
            f"chain {index} (seed {search.seeds[index]}): "
            f"{result.initial_distance:.3f} -> {result.best_distance:.3f} "
            f"hops ({result.accepted_moves}/{result.attempted_moves} "
            f"moves accepted){marker}"
        )
    best = search.best
    print(
        f"best: {best.best_distance:.3f} hops "
        f"(chain {search.best_index}, "
        f"{100 * (1 - best.best_distance / best.initial_distance):.1f}% "
        "below the random start)"
    )
    return 0


def _command_gain(processors: float, contexts: float, slowdown: float) -> int:
    system = alewife_system(contexts=contexts).with_network_slowdown(slowdown)
    result = system.expected_gain(processors)
    print(
        f"N = {processors:g}, p = {contexts:g}, "
        f"network slowdown = {slowdown:g}x"
    )
    print(f"random-mapping distance : {result.random_distance:.2f} hops")
    print(f"expected locality gain  : {result.gain:.2f}x")
    return 0


def _command_report(output: str, full: bool) -> int:
    from repro.analysis.report import write_report

    path = write_report(output, quick=not full)
    print(f"report written to {path}")
    return 0


def _write_trace_outputs(args, experiments: List[str]) -> None:
    """Write trace + manifest artifacts for a traced run."""
    paths = obs.write_outputs(
        args.trace,
        experiments=experiments,
        parameters={
            "experiments": experiments,
            "quick": bool(getattr(args, "quick", False)),
            "jobs": int(getattr(args, "jobs", 1)),
            "command": args.command,
        },
    )
    print(f"trace written to {paths['trace']}")
    print(f"spans written to {paths['spans']}")
    print(f"manifest written to {paths['manifest']}")


def build_sim_parser() -> argparse.ArgumentParser:
    """The repro-sim argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Cycle-level simulator front end (multi-seed replication)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    replicate = subparsers.add_parser(
        "replicate",
        help="run one machine configuration under several root seeds",
    )
    replicate.add_argument(
        "--radix", type=int, default=8, metavar="K",
        help="torus radix k (default: 8)",
    )
    replicate.add_argument(
        "--dimensions", type=int, default=2, metavar="N",
        help="torus dimensions n (default: 2)",
    )
    replicate.add_argument(
        "--contexts", type=int, default=2, metavar="P",
        help="hardware contexts per processor (default: 2)",
    )
    replicate.add_argument(
        "--switching", choices=("cut_through", "wormhole"),
        default="cut_through",
        help="switch architecture (default: cut_through)",
    )
    replicate.add_argument(
        "--mapping", choices=("identity", "random"), default="random",
        help="thread placement (default: random)",
    )
    replicate.add_argument(
        "--seeds", type=int, default=3, metavar="R",
        help="number of replications (default: 3)",
    )
    replicate.add_argument(
        "--root-seed", type=int, default=None, metavar="S",
        help="first replication seed (default: the config default, 1992)",
    )
    replicate.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="warm pool workers for the replications (default: 1, serial; "
        "the machine payload is broadcast to the pool once)",
    )
    replicate.add_argument(
        "--batch", type=int, default=1, metavar="R",
        help="seeds per lockstep batch (default: 1, one machine per "
        "seed; R seeds share one batched engine pass, bit-identical "
        "per-seed results, and each batch is one pool task under "
        "--jobs)",
    )
    replicate.add_argument(
        "--warmup", type=int, default=None, metavar="CYCLES",
        help="warmup window override, network cycles",
    )
    replicate.add_argument(
        "--measure", type=int, default=None, metavar="CYCLES",
        help="measurement window override, network cycles",
    )
    replicate.add_argument(
        "--json", metavar="FILE", default=None,
        help="write per-seed summaries and aggregates as JSON",
    )
    replicate.add_argument(
        "--trace", metavar="DIR", default=None,
        help="enable observability; write Chrome trace + manifest to DIR",
    )
    replicate.add_argument(
        "--telemetry", action="store_true",
        help="instrument every replication's fabric with per-channel "
        "telemetry and print the merged congestion summary",
    )
    replicate.add_argument(
        "--telemetry-epoch", type=int, default=256, metavar="L",
        help="telemetry sampling epoch, network cycles (default: 256)",
    )

    probe = subparsers.add_parser(
        "probe",
        help="drive one fabric workload under per-channel telemetry",
    )
    probe.add_argument(
        "--workload",
        choices=("uniform", "saturated", "hotspot50", "tree_saturation"),
        default="tree_saturation",
        help="injection pattern (default: tree_saturation)",
    )
    probe.add_argument(
        "--radix", type=int, default=8, metavar="K",
        help="torus radix k (default: 8)",
    )
    probe.add_argument(
        "--dimensions", type=int, default=2, metavar="N",
        help="torus dimensions n (default: 2)",
    )
    probe.add_argument(
        "--cycles", type=int, default=600, metavar="CYCLES",
        help="injection window, network cycles; the probe then ticks "
        "until the fabric drains (default: 600)",
    )
    probe.add_argument(
        "--epoch", type=int, default=64, metavar="L",
        help="telemetry sampling epoch, network cycles (default: 64)",
    )
    probe.add_argument(
        "--depth-threshold", type=int, default=8, metavar="D",
        help="queue depth at which a channel counts as saturated "
        "(default: 8)",
    )
    probe.add_argument(
        "--fabric", choices=("kernel", "reference"), default="kernel",
        help="fabric implementation to instrument (default: kernel)",
    )
    probe.add_argument("--seed", type=int, default=1992)
    probe.add_argument(
        "--output", metavar="DIR", default=None,
        help="write telemetry.jsonl, heatmap.txt, saturation.json, and a "
        "Chrome trace with per-epoch counter tracks to DIR",
    )
    return parser


def _command_replicate(args) -> int:
    import json

    from repro.errors import ReproError
    from repro.mapping.strategies import identity_mapping, random_mapping
    from repro.sim.config import SimulationConfig
    from repro.sim.replicate import default_seeds, run_replications
    from repro.sim.telemetry import TelemetryConfig
    from repro.topology.graphs import torus_neighbor_graph
    from repro.workload.synthetic import build_programs

    try:
        config = SimulationConfig(
            radix=args.radix,
            dimensions=args.dimensions,
            contexts=args.contexts,
            switching=args.switching,
        )
        if args.root_seed is not None:
            config = config.with_seed(args.root_seed)
        graph = torus_neighbor_graph(args.radix, args.dimensions)
        programs = build_programs(
            graph, args.contexts, config.compute_cycles, config.compute_jitter
        )
        if args.mapping == "identity":
            mapping = identity_mapping(config.node_count)
        else:
            mapping = random_mapping(config.node_count, seed=config.seed)
        seeds = default_seeds(config.seed, args.seeds)
        telemetry = (
            TelemetryConfig(epoch_cycles=args.telemetry_epoch)
            if args.telemetry
            else None
        )
        result = run_replications(
            config,
            mapping,
            programs,
            seeds,
            jobs=args.jobs,
            warmup=args.warmup,
            measure=args.measure,
            telemetry=telemetry,
            batch=args.batch,
        )
    except ReproError as exc:
        print(f"replicate failed: {exc}", file=sys.stderr)
        return 1

    print(
        f"{config.node_count}-node radix-{config.radix} "
        f"{config.dimensions}-D torus ({config.switching}), "
        f"{args.contexts} contexts, {args.mapping} mapping: "
        f"{len(seeds)} seeds {list(seeds)}, jobs={args.jobs}, "
        f"batch={args.batch}"
    )
    width = max(len(name) for name in result.aggregates)
    for name, aggregate in result.aggregates.items():
        print(
            f"{name:<{width}}  {aggregate.mean:12.4f} "
            f"± {aggregate.ci95:.4f} (std {aggregate.std:.4f}, "
            f"n={aggregate.n})"
        )

    merged_telemetry = result.merged_telemetry() if args.telemetry else None
    if merged_telemetry is not None:
        from repro.sim.telemetry import TelemetrySummary, detect_saturation

        summary = TelemetrySummary(merged_telemetry)
        link_rho = list(summary.link_utilization().values())
        mean_rho = sum(link_rho) / len(link_rho) if link_rho else 0.0
        peak_rho = max(link_rho, default=0.0)
        print()
        print(
            f"telemetry ({summary.label}): {summary.delivered} worms, "
            f"{summary.epochs} epochs of {summary.epoch_cycles} cycles"
        )
        print(
            f"  link rho mean {mean_rho:.4f}, peak {peak_rho:.4f} "
            f"(hot factor {peak_rho / mean_rho if mean_rho else 0.0:.1f}x)"
        )
        mean_latency = summary.latency_mean()
        if mean_latency is not None:
            print(
                f"  worm latency mean {mean_latency:.1f}, "
                f"p50 <= {summary.latency_quantile(0.5):g}, "
                f"p95 <= {summary.latency_quantile(0.95):g} cycles"
            )
        report = detect_saturation(summary)
        if report.saturated:
            print(
                f"  tree saturation onset: cycle {report.onset_cycle} "
                f"(epoch {report.onset_epoch}), peak extent "
                f"{report.peak_extent} channels"
            )
        else:
            print(f"  {report.render()}")

    if args.json:
        payload = {
            "config": {
                "radix": config.radix,
                "dimensions": config.dimensions,
                "contexts": args.contexts,
                "switching": config.switching,
                "mapping": args.mapping,
                "warmup": args.warmup,
                "measure": args.measure,
            },
            "rng": result.rng,
            "seeds": list(result.seeds),
            "summaries": [s.as_dict() for s in result.summaries],
            "aggregates": {
                name: {
                    "mean": a.mean,
                    "std": a.std,
                    "ci95": a.ci95,
                    "n": a.n,
                    "values": list(a.values),
                }
                for name, a in result.aggregates.items()
            },
        }
        if merged_telemetry is not None:
            payload["telemetry"] = merged_telemetry
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"summaries written to {args.json}")

    if args.trace:
        if merged_telemetry is not None:
            from repro.sim.telemetry import emit_trace_counters

            emit_trace_counters(merged_telemetry)
        paths = obs.write_outputs(
            args.trace,
            experiments=["replicate"],
            parameters={
                "command": "replicate",
                "radix": config.radix,
                "dimensions": config.dimensions,
                "contexts": args.contexts,
                "switching": config.switching,
                "mapping": args.mapping,
                "jobs": args.jobs,
                "batch": args.batch,
                "telemetry": (
                    telemetry.as_dict() if telemetry is not None else None
                ),
            },
            rng_seeds=result.rng,
        )
        print(f"trace written to {paths['trace']}")
        print(f"manifest written to {paths['manifest']}")
    return 0


def _command_probe(args) -> int:
    import json
    import os

    from repro.analysis.compare import ContentionComparison, contention_row
    from repro.analysis.linkmap import (
        link_utilization_from_telemetry,
        render_link_heatmap,
    )
    from repro.core.network import TorusNetworkModel
    from repro.errors import ReproError
    from repro.sim.telemetry import (
        TelemetryConfig,
        emit_trace_counters,
        run_probe,
        write_telemetry_jsonl,
    )
    from repro.topology.torus import Torus

    try:
        config = TelemetryConfig(
            epoch_cycles=args.epoch, depth_threshold=args.depth_threshold
        )
        result = run_probe(
            args.workload,
            radix=args.radix,
            dimensions=args.dimensions,
            cycles=args.cycles,
            telemetry=config,
            fabric=args.fabric,
            seed=args.seed,
        )
    except ReproError as exc:
        print(f"probe failed: {exc}", file=sys.stderr)
        return 1

    summary = result.summary
    nodes = args.radix**args.dimensions
    print(
        f"{args.workload} probe on the {nodes}-node radix-{args.radix} "
        f"{args.dimensions}-D torus ({args.fabric} fabric): "
        f"{result.injected} worms injected over {result.scheduled_cycles} "
        f"cycles, {result.delivered} delivered, drained at cycle "
        f"{result.total_cycles} ({summary.epochs} epochs of "
        f"{args.epoch} cycles)"
    )
    if result.message_rate and result.mean_hops and result.mean_flits:
        # Model-vs-measured contention at the probe's *measured*
        # operating point (delivered rate, mean hops, mean flits).
        network = TorusNetworkModel(
            dimensions=args.dimensions, message_size=result.mean_flits
        )
        comparison = ContentionComparison(
            rows=[
                contention_row(
                    args.workload,
                    network,
                    summary,
                    result.message_rate,
                    result.mean_hops,
                )
            ]
        )
        print()
        print(comparison.render())
    print()
    print(result.saturation.render())
    heatmap = None
    if args.dimensions <= 2:
        torus = Torus(radix=args.radix, dimensions=args.dimensions)
        heatmap = render_link_heatmap(
            link_utilization_from_telemetry(summary, torus), torus
        )
        print()
        print(heatmap)

    if args.output:
        os.makedirs(args.output, exist_ok=True)
        jsonl_path = write_telemetry_jsonl(
            result.snapshot, os.path.join(args.output, "telemetry.jsonl")
        )
        print()
        print(f"telemetry written to {jsonl_path}")
        saturation_path = os.path.join(args.output, "saturation.json")
        with open(saturation_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": args.workload,
                    "radix": args.radix,
                    "dimensions": args.dimensions,
                    "fabric": args.fabric,
                    "injected": result.injected,
                    "delivered": result.delivered,
                    "total_cycles": result.total_cycles,
                    "saturation": result.saturation.as_dict(),
                },
                handle,
                indent=2,
            )
        print(f"saturation report written to {saturation_path}")
        if heatmap is not None:
            heatmap_path = os.path.join(args.output, "heatmap.txt")
            with open(heatmap_path, "w", encoding="utf-8") as handle:
                handle.write(heatmap + "\n")
            print(f"heatmap written to {heatmap_path}")
        # Fold the per-epoch congestion series into a Chrome trace whose
        # counter tracks sit beside the manifest.
        obs.enable()
        emit_trace_counters(result.snapshot)
        paths = obs.write_outputs(
            args.output,
            experiments=[f"probe:{args.workload}"],
            parameters={
                "command": "probe",
                "workload": args.workload,
                "radix": args.radix,
                "dimensions": args.dimensions,
                "cycles": args.cycles,
                "fabric": args.fabric,
                "seed": args.seed,
                "telemetry": config.as_dict(),
            },
            rng_seeds={"seed": args.seed},
        )
        print(f"trace written to {paths['trace']}")
        print(f"manifest written to {paths['manifest']}")
    return 0


def sim_main(argv: Optional[List[str]] = None) -> int:
    """``repro-sim`` entry point; returns a process exit code."""
    parser = build_sim_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", None):
        obs.enable()
    if args.command == "replicate":
        return _command_replicate(args)
    if args.command == "probe":
        return _command_probe(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", None):
        obs.enable()
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        if args.run_all:
            if args.telemetry:
                parser.error("--telemetry applies to a single experiment")
            code = _command_all(
                args.quick, jobs=args.jobs, verbose=args.verbose
            )
            if args.trace:
                _write_trace_outputs(args, experiment_ids())
            return code
        if args.experiment is None:
            parser.error("run requires an experiment id or --all")
        code = _command_run(
            args.experiment, args.quick, verbose=args.verbose,
            telemetry=args.telemetry,
        )
        if args.trace:
            _write_trace_outputs(args, [args.experiment])
        return code
    if args.command == "all":
        code = _command_all(args.quick, jobs=args.jobs, verbose=args.verbose)
        if args.trace:
            _write_trace_outputs(args, experiment_ids())
        return code
    if args.command == "diagnose":
        return _command_diagnose(args.experiment, args.quick, args.threshold)
    if args.command == "anneal":
        return _command_anneal(args)
    if args.command == "gain":
        return _command_gain(args.processors, args.contexts, args.slowdown)
    if args.command == "report":
        return _command_report(args.output, args.full)
    if args.command == "symbols":
        from repro.nomenclature import describe

        print(describe())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

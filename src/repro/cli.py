"""Command-line interface: ``repro-locality`` / ``python -m repro.cli``.

Subcommands:

* ``list`` — show the reproducible experiments;
* ``run <id> [--quick]`` — run one experiment and print its report;
* ``all [--quick]`` — run every experiment;
* ``gain --processors N [--contexts P] [--slowdown F]`` — one-off
  expected-gain query against the calibrated Alewife system.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.alewife import alewife_system
from repro.experiments.runner import experiment_ids, run_all, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-locality argument parser (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-locality",
        description=(
            "Reproduction of Johnson (ISCA 1992): The Impact of "
            "Communication Locality on Large-Scale Multiprocessor "
            "Performance"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=experiment_ids())
    run_parser.add_argument(
        "--quick", action="store_true",
        help="shorter simulation windows / coarser sweeps",
    )

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument("--quick", action="store_true")

    gain_parser = subparsers.add_parser(
        "gain", help="expected locality gain for one machine configuration"
    )
    gain_parser.add_argument("--processors", type=float, required=True)
    gain_parser.add_argument("--contexts", type=float, default=1.0)
    gain_parser.add_argument(
        "--slowdown", type=float, default=1.0,
        help="network slowdown factor vs the base architecture",
    )

    subparsers.add_parser(
        "symbols", help="print the paper's Appendix A symbol -> API table"
    )

    report_parser = subparsers.add_parser(
        "report", help="write a full reproduction report (markdown)"
    )
    report_parser.add_argument(
        "--output", default="reproduction_report.md",
        help="output path (default: reproduction_report.md)",
    )
    report_parser.add_argument(
        "--full", action="store_true",
        help="full-length simulation windows (slower)",
    )
    return parser


def _command_list() -> int:
    for identifier in experiment_ids():
        print(identifier)
    return 0


def _command_run(identifier: str, quick: bool) -> int:
    result = run_experiment(identifier, quick=quick)
    print(result.render())
    return 0


def _command_all(quick: bool) -> int:
    for result in run_all(quick=quick):
        print(result.render())
        print()
    return 0


def _command_gain(processors: float, contexts: float, slowdown: float) -> int:
    system = alewife_system(contexts=contexts).with_network_slowdown(slowdown)
    result = system.expected_gain(processors)
    print(
        f"N = {processors:g}, p = {contexts:g}, "
        f"network slowdown = {slowdown:g}x"
    )
    print(f"random-mapping distance : {result.random_distance:.2f} hops")
    print(f"expected locality gain  : {result.gain:.2f}x")
    return 0


def _command_report(output: str, full: bool) -> int:
    from repro.analysis.report import write_report

    path = write_report(output, quick=not full)
    print(f"report written to {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.quick)
    if args.command == "all":
        return _command_all(args.quick)
    if args.command == "gain":
        return _command_gain(args.processors, args.contexts, args.slowdown)
    if args.command == "report":
        return _command_report(args.output, args.full)
    if args.command == "symbols":
        from repro.nomenclature import describe

        print(describe())
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

"""Structured result export: CSV and JSON.

Campaign records, validation reports, and experiment data frequently end
up in external plotting or statistics tools; these writers keep the
serialization logic out of the experiment drivers.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Sequence

from repro.errors import ParameterError

__all__ = ["rows_to_csv", "records_to_csv", "data_to_json"]


def rows_to_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Write header + rows as CSV; returns the path."""
    if not headers:
        raise ParameterError("rows_to_csv needs at least one header")
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ParameterError(
                    f"row has {len(row)} cells for {len(headers)} headers"
                )
            writer.writerow(row)
    return path


def records_to_csv(path: str, records: Sequence) -> str:
    """Write objects exposing ``as_dict()`` (e.g. CampaignRecord) as CSV.

    Columns come from the first record's dict, in its key order; every
    record must produce the same keys.
    """
    if not records:
        raise ParameterError("records_to_csv needs at least one record")
    dicts: List[Dict] = [record.as_dict() for record in records]
    headers = list(dicts[0])
    for index, entry in enumerate(dicts):
        if list(entry) != headers:
            raise ParameterError(
                f"record {index} has keys {list(entry)}; expected {headers}"
            )
    return rows_to_csv(
        path, headers, ([entry[key] for key in headers] for entry in dicts)
    )


def data_to_json(path: str, data: Dict, indent: int = 2) -> str:
    """Write a result's ``data`` dict as JSON; returns the path.

    Non-serializable values (model objects) are stringified rather than
    rejected, so experiment ``data`` payloads can be dumped wholesale.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=indent, default=str)
        handle.write("\n")
    return path

"""Model-vs-simulation validation (the Section 3.3 experiments).

The paper validates the combined model by simulating the synthetic
application on a 64-node machine under nine thread-to-processor mappings
(average communication distances from 1 to just over 6 hops) with one,
two, and four hardware contexts, then comparing measured per-node message
rates (Figure 4) and message latencies (Figure 5) against the model
solved at the same distances.

:func:`run_validation` reproduces that pipeline end to end:

1. build the mapping suite and simulate each mapping;
2. fit the measured application message curve (slope = measured ``s``);
3. solve the combined model (with the node-channel extension, as the
   paper does for Section 3) at each mapping's distance;
4. report per-point and aggregate prediction errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.fitting import MessageCurveFit, fit_message_curve
from repro.core.combined import OperatingPoint, solve
from repro.core.network import TorusNetworkModel
from repro.errors import ParameterError
from repro.mapping.families import NamedMapping, paper_mapping_suite
from repro.sim.config import SimulationConfig
from repro.sim.machine import Machine
from repro.sim.stats import MeasurementSummary
from repro.topology.graphs import torus_neighbor_graph
from repro.topology.torus import Torus
from repro.workload.synthetic import build_programs

__all__ = [
    "SimulatedPoint",
    "ValidationRow",
    "ValidationReport",
    "simulate_mapping_suite",
    "run_validation",
]


@dataclass(frozen=True)
class SimulatedPoint:
    """One simulation run: a mapping and its measured summary."""

    name: str
    distance: float
    summary: MeasurementSummary


@dataclass(frozen=True)
class ValidationRow:
    """Model-vs-simulation comparison at one communication distance."""

    name: str
    distance: float
    simulated: MeasurementSummary
    predicted: OperatingPoint

    @property
    def rate_error(self) -> float:
        """Relative message-rate prediction error (signed)."""
        return (
            self.predicted.message_rate - self.simulated.message_rate
        ) / self.simulated.message_rate

    @property
    def latency_error_cycles(self) -> float:
        """Message-latency prediction error in network cycles (signed)."""
        return (
            self.predicted.message_latency - self.simulated.mean_message_latency
        )


@dataclass(frozen=True)
class ValidationReport:
    """All rows for one context count, plus the fitted curve."""

    contexts: int
    curve: MessageCurveFit
    message_size: float
    rows: List[ValidationRow]

    @property
    def max_rate_error(self) -> float:
        return max(abs(r.rate_error) for r in self.rows)

    @property
    def mean_rate_error(self) -> float:
        return sum(abs(r.rate_error) for r in self.rows) / len(self.rows)

    @property
    def max_latency_error_cycles(self) -> float:
        return max(abs(r.latency_error_cycles) for r in self.rows)


def simulate_mapping_suite(
    config: SimulationConfig,
    mappings: Optional[Sequence[NamedMapping]] = None,
) -> List[SimulatedPoint]:
    """Simulate the synthetic application under each mapping."""
    torus = Torus(radix=config.radix, dimensions=config.dimensions)
    if mappings is None:
        mappings = paper_mapping_suite(torus)
    graph = torus_neighbor_graph(config.radix, config.dimensions)
    points = []
    for named in mappings:
        programs = build_programs(
            graph, config.contexts, config.compute_cycles, config.compute_jitter
        )
        machine = Machine(config, named.mapping, programs)
        summary = machine.run()
        points.append(
            SimulatedPoint(
                name=named.name, distance=named.distance, summary=summary
            )
        )
    return points


def run_validation(
    config: SimulationConfig,
    mappings: Optional[Sequence[NamedMapping]] = None,
    network: Optional[TorusNetworkModel] = None,
) -> ValidationReport:
    """Full Section 3.3 pipeline for one context count."""
    points = simulate_mapping_suite(config, mappings)
    if len(points) < 2:
        raise ParameterError("validation needs at least two mappings")
    curve = fit_message_curve(
        [
            (p.summary.mean_message_interval, p.summary.mean_message_latency)
            for p in points
        ],
        contexts=config.contexts,
    )
    message_size = sum(
        p.summary.mean_message_flits for p in points
    ) / len(points)
    second_moment = sum(
        p.summary.mean_message_flits_squared for p in points
    ) / len(points)
    mean_g = sum(
        p.summary.messages_per_transaction for p in points
    ) / len(points)
    if network is None:
        network = TorusNetworkModel(
            dimensions=config.dimensions,
            message_size=message_size,
            node_channel_contention=True,
            # The protocol's sizes are bimodal (control vs data); feeding
            # the measured second moment makes the node-channel term
            # M/G/1 rather than mean-size M/D/1.
            message_size_second_moment=max(second_moment, message_size**2),
        )
    node = curve.to_node_model(messages_per_transaction=mean_g)
    rows = [
        ValidationRow(
            name=p.name,
            distance=p.distance,
            simulated=p.summary,
            predicted=solve(node, network, p.distance),
        )
        for p in points
    ]
    return ValidationReport(
        contexts=config.contexts,
        curve=curve,
        message_size=message_size,
        rows=rows,
    )

"""Side-by-side comparison of system configurations.

The paper's Section 2.6 closes with exactly this operation: "the
performance obtained with two different machine configurations can be
compared by computing the ratio of the aggregate performance obtained in
each case."  :func:`compare_systems` does it across a range of
communication distances and renders the ratio table.

:func:`compare_model_to_replications` performs the other comparison the
reproduction needs: analytical predictions against *replicated*
simulator measurements (:mod:`repro.sim.replicate`), where each
simulated point carries a 95% confidence half-width instead of being a
bare number — so "the model matches" becomes a statement about the
interval, not about one seed.

:func:`contention_row` / :class:`ContentionComparison` close the last
gap: the model's *contention term* itself.  Eq 10's channel utilization
``rho = r_m * B * k_d / 2`` is an average over all network channels; the
fabric telemetry (:mod:`repro.sim.telemetry`) measures the actual busy
fraction of every physical link, so the model's single rho can be tabled
against the measured mean *and* peak — the first empirical check of the
contention inputs rather than the latency outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.tables import render_table
from repro.core.network import TorusNetworkModel
from repro.core.system import SystemModel
from repro.errors import ParameterError, SaturationError
from repro.sim.replicate import ReplicationResult
from repro.sim.telemetry import TelemetrySummary

__all__ = [
    "ComparisonRow",
    "SystemComparison",
    "compare_systems",
    "ModelSimRow",
    "ModelSimComparison",
    "compare_model_to_replications",
    "ContentionRow",
    "ContentionComparison",
    "contention_row",
]


@dataclass(frozen=True)
class ComparisonRow:
    """Both systems' operating points at one distance."""

    distance: float
    baseline_rate: float
    candidate_rate: float
    baseline_latency: float
    candidate_latency: float

    @property
    def speedup(self) -> float:
        """Candidate over baseline transaction rate (both per *processor*
        cycle, so differing clock domains compare fairly)."""
        return self.candidate_rate / self.baseline_rate


@dataclass(frozen=True)
class SystemComparison:
    """A distance sweep comparing two systems."""

    baseline_label: str
    candidate_label: str
    rows: List[ComparisonRow]

    @property
    def speedups(self) -> List[float]:
        return [row.speedup for row in self.rows]

    def render(self) -> str:
        """Tabulate rates (per processor kilocycle) and the speedup."""
        table_rows = [
            (
                round(row.distance, 2),
                round(row.baseline_rate * 1000, 3),
                round(row.candidate_rate * 1000, 3),
                f"{row.speedup:.2f}x",
            )
            for row in self.rows
        ]
        return render_table(
            [
                "d (hops)",
                f"{self.baseline_label} r_t",
                f"{self.candidate_label} r_t",
                "speedup",
            ],
            table_rows,
            title=(
                f"{self.candidate_label} vs {self.baseline_label} "
                "(transactions per processor kilocycle)"
            ),
        )


def compare_systems(
    baseline: SystemModel,
    candidate: SystemModel,
    distances: Sequence[float],
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> SystemComparison:
    """Solve both systems across ``distances`` and compare.

    Rates are normalized to each system's *processor* clock so machines
    with different network speeds compare on delivered work, not on
    network-cycle bookkeeping.
    """
    if not distances:
        raise ParameterError("compare_systems needs at least one distance")
    rows = []
    for distance in distances:
        base_point = baseline.operating_point(float(distance))
        cand_point = candidate.operating_point(float(distance))
        rows.append(
            ComparisonRow(
                distance=float(distance),
                baseline_rate=base_point.transaction_rate_processor(
                    baseline.clocks
                ),
                candidate_rate=cand_point.transaction_rate_processor(
                    candidate.clocks
                ),
                baseline_latency=base_point.message_latency,
                candidate_latency=cand_point.message_latency,
            )
        )
    return SystemComparison(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        rows=rows,
    )


@dataclass(frozen=True)
class ModelSimRow:
    """One distance point: the model value against the replicated sim."""

    distance: float
    model: float
    sim_mean: float
    sim_std: float
    sim_ci95: float
    n: int

    @property
    def error(self) -> float:
        """Model minus simulated mean (signed)."""
        return self.model - self.sim_mean

    @property
    def relative_error(self) -> float:
        return self.error / self.sim_mean if self.sim_mean else 0.0

    @property
    def within_ci(self) -> bool:
        """Whether the model value lands inside the sim's 95% interval."""
        return abs(self.error) <= self.sim_ci95


@dataclass(frozen=True)
class ModelSimComparison:
    """A distance sweep of model predictions vs replicated measurements."""

    metric: str
    rows: List[ModelSimRow]

    @property
    def max_relative_error(self) -> float:
        return max(abs(row.relative_error) for row in self.rows)

    def render(self) -> str:
        table_rows = [
            (
                round(row.distance, 2),
                round(row.sim_mean, 2),
                f"±{row.sim_ci95:.2f}",
                round(row.model, 2),
                f"{100 * row.relative_error:+.1f}%",
                "yes" if row.within_ci else "no",
            )
            for row in self.rows
        ]
        n = self.rows[0].n if self.rows else 0
        return render_table(
            [
                "d (hops)",
                f"{self.metric} sim",
                "95% CI",
                f"{self.metric} model",
                "error",
                "in CI",
            ],
            table_rows,
            title=f"Model vs simulation, {self.metric} ({n} seeds per point)",
        )


def compare_model_to_replications(
    metric: str,
    distances: Sequence[float],
    model_values: Sequence[float],
    replications: Sequence[ReplicationResult],
) -> ModelSimComparison:
    """Line up model predictions with replicated simulator runs.

    ``replications[i]`` is the :func:`~repro.sim.replicate.run_replications`
    result measured at ``distances[i]``; ``model_values[i]`` is the
    model's prediction for the same point.  ``metric`` names any
    :class:`~repro.sim.stats.MeasurementSummary` field (for example
    ``mean_message_latency``).
    """
    if not distances:
        raise ParameterError(
            "compare_model_to_replications needs at least one point"
        )
    if not (len(distances) == len(model_values) == len(replications)):
        raise ParameterError(
            "distances, model_values, and replications must align: got "
            f"{len(distances)}/{len(model_values)}/{len(replications)}"
        )
    rows = []
    for distance, model_value, result in zip(
        distances, model_values, replications
    ):
        aggregate = result.aggregates.get(metric)
        if aggregate is None:
            known = ", ".join(result.aggregates)
            raise ParameterError(
                f"metric {metric!r} not measured by the replications; "
                f"known: {known}"
            )
        rows.append(
            ModelSimRow(
                distance=float(distance),
                model=float(model_value),
                sim_mean=aggregate.mean,
                sim_std=aggregate.std,
                sim_ci95=aggregate.ci95,
                n=aggregate.n,
            )
        )
    return ModelSimComparison(metric=metric, rows=rows)


# ----------------------------------------------------------------------
# Model-vs-measured contention (per-channel telemetry).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ContentionRow:
    """One config: the model's contention inputs vs measured telemetry.

    ``model_rho`` is Eq 10 evaluated at the *measured* message rate and
    distance; ``measured_rho_mean`` / ``measured_rho_peak`` come from
    the telemetry's per-link busy counters.  Latencies compare the
    model's ``T_m`` (Eq 11) against the telemetry latency histogram's
    mean; the model side is ``None`` when the operating point sits past
    the model's saturation rate.
    """

    label: str
    message_rate: float
    distance: float
    model_rho: float
    measured_rho_mean: float
    measured_rho_peak: float
    model_latency: Optional[float]
    measured_latency: Optional[float]
    messages: int

    @property
    def rho_error(self) -> float:
        """Model minus measured mean rho (signed)."""
        return self.model_rho - self.measured_rho_mean

    @property
    def rho_relative_error(self) -> float:
        if not self.measured_rho_mean:
            return 0.0
        return self.rho_error / self.measured_rho_mean

    @property
    def hot_factor(self) -> float:
        """Peak over mean link utilization — 1.0 under perfect balance."""
        if not self.measured_rho_mean:
            return 0.0
        return self.measured_rho_peak / self.measured_rho_mean


@dataclass(frozen=True)
class ContentionComparison:
    """Model-vs-measured contention across machine configurations."""

    rows: List[ContentionRow]

    @property
    def max_rho_relative_error(self) -> float:
        return max(abs(row.rho_relative_error) for row in self.rows)

    def render(self) -> str:
        table_rows = [
            (
                row.label,
                round(row.measured_rho_mean, 4),
                round(row.measured_rho_peak, 4),
                round(row.model_rho, 4),
                f"{100 * row.rho_relative_error:+.1f}%",
                (
                    round(row.measured_latency, 1)
                    if row.measured_latency is not None
                    else "-"
                ),
                (
                    round(row.model_latency, 1)
                    if row.model_latency is not None
                    else "saturated"
                ),
            )
            for row in self.rows
        ]
        return render_table(
            [
                "config",
                "rho meas",
                "rho peak",
                "rho model",
                "rho err",
                "T_m meas",
                "T_m model",
            ],
            table_rows,
            title=(
                "Model vs measured contention "
                "(per-link telemetry, Eq 10/11 at measured r_m, d)"
            ),
        )


def contention_row(
    label: str,
    network: TorusNetworkModel,
    telemetry: Union[Dict, TelemetrySummary],
    message_rate: float,
    distance: float,
) -> ContentionRow:
    """Build one model-vs-measured contention row.

    ``telemetry`` is a snapshot dict (or wrapped summary) from
    :mod:`repro.sim.telemetry`; ``message_rate`` and ``distance`` are
    the *measured* traffic parameters (messages per node per network
    cycle, mean hops) the model is evaluated at — so the comparison
    isolates the contention equations from workload-prediction error.
    """
    summary = (
        telemetry
        if isinstance(telemetry, TelemetrySummary)
        else TelemetrySummary(telemetry)
    )
    link_rho = list(summary.link_utilization().values())
    if not link_rho:
        raise ParameterError(
            f"telemetry for {label!r} carries no physical links"
        )
    model_rho = network.channel_utilization(message_rate, distance)
    try:
        model_latency: Optional[float] = network.message_latency(
            message_rate, distance
        )
    except SaturationError:
        model_latency = None
    return ContentionRow(
        label=label,
        message_rate=float(message_rate),
        distance=float(distance),
        model_rho=model_rho,
        measured_rho_mean=sum(link_rho) / len(link_rho),
        measured_rho_peak=max(link_rho),
        model_latency=model_latency,
        measured_latency=summary.latency_mean(),
        messages=summary.delivered,
    )

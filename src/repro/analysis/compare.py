"""Side-by-side comparison of system configurations.

The paper's Section 2.6 closes with exactly this operation: "the
performance obtained with two different machine configurations can be
compared by computing the ratio of the aggregate performance obtained in
each case."  :func:`compare_systems` does it across a range of
communication distances and renders the ratio table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.tables import render_table
from repro.core.system import SystemModel
from repro.errors import ParameterError

__all__ = ["ComparisonRow", "SystemComparison", "compare_systems"]


@dataclass(frozen=True)
class ComparisonRow:
    """Both systems' operating points at one distance."""

    distance: float
    baseline_rate: float
    candidate_rate: float
    baseline_latency: float
    candidate_latency: float

    @property
    def speedup(self) -> float:
        """Candidate over baseline transaction rate (both per *processor*
        cycle, so differing clock domains compare fairly)."""
        return self.candidate_rate / self.baseline_rate


@dataclass(frozen=True)
class SystemComparison:
    """A distance sweep comparing two systems."""

    baseline_label: str
    candidate_label: str
    rows: List[ComparisonRow]

    @property
    def speedups(self) -> List[float]:
        return [row.speedup for row in self.rows]

    def render(self) -> str:
        """Tabulate rates (per processor kilocycle) and the speedup."""
        table_rows = [
            (
                round(row.distance, 2),
                round(row.baseline_rate * 1000, 3),
                round(row.candidate_rate * 1000, 3),
                f"{row.speedup:.2f}x",
            )
            for row in self.rows
        ]
        return render_table(
            [
                "d (hops)",
                f"{self.baseline_label} r_t",
                f"{self.candidate_label} r_t",
                "speedup",
            ],
            table_rows,
            title=(
                f"{self.candidate_label} vs {self.baseline_label} "
                "(transactions per processor kilocycle)"
            ),
        )


def compare_systems(
    baseline: SystemModel,
    candidate: SystemModel,
    distances: Sequence[float],
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> SystemComparison:
    """Solve both systems across ``distances`` and compare.

    Rates are normalized to each system's *processor* clock so machines
    with different network speeds compare on delivered work, not on
    network-cycle bookkeeping.
    """
    if not distances:
        raise ParameterError("compare_systems needs at least one distance")
    rows = []
    for distance in distances:
        base_point = baseline.operating_point(float(distance))
        cand_point = candidate.operating_point(float(distance))
        rows.append(
            ComparisonRow(
                distance=float(distance),
                baseline_rate=base_point.transaction_rate_processor(
                    baseline.clocks
                ),
                candidate_rate=cand_point.transaction_rate_processor(
                    candidate.clocks
                ),
                baseline_latency=base_point.message_latency,
                candidate_latency=cand_point.message_latency,
            )
        )
    return SystemComparison(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        rows=rows,
    )

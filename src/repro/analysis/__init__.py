"""Measurement analysis: curve fitting, validation, table rendering."""

from repro.analysis.fitting import (
    LineFit,
    MessageCurveFit,
    fit_line,
    fit_message_curve,
)
from repro.analysis.compare import (
    ComparisonRow,
    ModelSimComparison,
    ModelSimRow,
    SystemComparison,
    compare_model_to_replications,
    compare_systems,
)
from repro.analysis.export import data_to_json, records_to_csv, rows_to_csv
from repro.analysis.linkmap import (
    LinkUtilization,
    link_utilization,
    render_link_heatmap,
)
from repro.analysis.plot import line_plot, sparkline
from repro.analysis.profile import (
    LocalityProfile,
    ProfileEntry,
    locality_profile,
)
from repro.analysis.report import generate_report, write_report
from repro.analysis.tables import format_number, render_series, render_table
from repro.analysis.validation import (
    SimulatedPoint,
    ValidationReport,
    ValidationRow,
    run_validation,
    simulate_mapping_suite,
)

__all__ = [
    "LineFit",
    "MessageCurveFit",
    "fit_line",
    "fit_message_curve",
    "SimulatedPoint",
    "ValidationRow",
    "ValidationReport",
    "simulate_mapping_suite",
    "run_validation",
    "render_table",
    "render_series",
    "format_number",
    "LocalityProfile",
    "ProfileEntry",
    "locality_profile",
    "generate_report",
    "write_report",
    "line_plot",
    "sparkline",
    "LinkUtilization",
    "link_utilization",
    "render_link_heatmap",
    "rows_to_csv",
    "records_to_csv",
    "data_to_json",
    "ComparisonRow",
    "SystemComparison",
    "compare_systems",
    "compare_model_to_replications",
    "ModelSimRow",
    "ModelSimComparison",
]

"""Per-link utilization maps from simulation runs.

The analytical model sees one number — average channel utilization; the
simulator knows every link's actual traffic.  These helpers expose that
distribution: summary statistics (max/mean ratio — the hot-link factor
that explains permutation-traffic model error) and an ASCII heatmap per
dimension/direction for eyeballing where the load sits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.errors import ParameterError
from repro.sim.telemetry import TelemetrySummary
from repro.topology.torus import Torus

__all__ = [
    "LinkUtilization",
    "link_utilization",
    "link_utilization_from_telemetry",
    "render_link_heatmap",
]

_SHADES = " .:-=+*#%@"

LinkKey = Tuple[int, int, int]  # (node, dimension, step)


@dataclass(frozen=True)
class LinkUtilization:
    """Distribution of per-link utilizations over one window."""

    per_link: Dict[LinkKey, float]
    window_cycles: int

    @property
    def mean(self) -> float:
        if not self.per_link:
            return 0.0
        return sum(self.per_link.values()) / len(self.per_link)

    @property
    def peak(self) -> float:
        return max(self.per_link.values(), default=0.0)

    @property
    def hot_factor(self) -> float:
        """Peak over mean — 1.0 for perfectly uniform traffic."""
        mean = self.mean
        return self.peak / mean if mean > 0 else 0.0

    def hottest(self, count: int = 5) -> List[Tuple[LinkKey, float]]:
        """The ``count`` busiest links."""
        ranked = sorted(
            self.per_link.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:count]


def link_utilization(
    link_flits: Dict[LinkKey, int],
    torus: Torus,
    window_cycles: int,
    baseline_flits: Dict[LinkKey, int] = None,
) -> LinkUtilization:
    """Per-link utilization for every physical link (unused links = 0).

    ``baseline_flits`` subtracts a pre-window snapshot (the fabric's
    counters are cumulative).
    """
    if window_cycles <= 0:
        raise ParameterError(
            f"window_cycles must be positive, got {window_cycles!r}"
        )
    baseline = baseline_flits or {}
    per_link: Dict[LinkKey, float] = {}
    for node in torus.nodes():
        for dim in range(torus.dimensions):
            for step in (1, -1):
                key = (node, dim, step)
                flits = link_flits.get(key, 0) - baseline.get(key, 0)
                per_link[key] = flits / window_cycles
    return LinkUtilization(per_link=per_link, window_cycles=window_cycles)


def link_utilization_from_telemetry(
    telemetry: Union[Dict, TelemetrySummary],
    torus: Torus,
) -> LinkUtilization:
    """Per-link utilization from a fabric telemetry snapshot.

    The telemetry's per-channel busy counters already carry virtual
    channels summed per physical link, so this is a re-keying onto the
    torus's full link set (links the window never used show as 0) —
    after which the heatmap/hot-factor machinery applies unchanged.
    """
    summary = (
        telemetry
        if isinstance(telemetry, TelemetrySummary)
        else TelemetrySummary(telemetry)
    )
    window = summary.total_cycles
    if window <= 0:
        raise ParameterError("telemetry window is empty; nothing to map")
    measured = summary.link_utilization()
    per_link: Dict[LinkKey, float] = {}
    for node in torus.nodes():
        for dim in range(torus.dimensions):
            for step in (1, -1):
                key = (node, dim, step)
                per_link[key] = measured.get(key, 0.0)
    if len(measured) != len(per_link):
        raise ParameterError(
            f"telemetry covers {len(measured)} links but the torus has "
            f"{len(per_link)}; geometry mismatch"
        )
    return LinkUtilization(per_link=per_link, window_cycles=window)


def render_link_heatmap(
    utilization: LinkUtilization, torus: Torus
) -> str:
    """ASCII heatmaps, one grid per (dimension, direction).

    Each cell shades the utilization of the link *leaving* that node in
    the given direction, scaled to the window's peak.  Works for 1-D and
    2-D tori (higher dimensions: use :meth:`LinkUtilization.hottest`).
    """
    if torus.dimensions > 2:
        raise ParameterError(
            "heatmaps render 1-D and 2-D tori; inspect hottest() for "
            f"{torus.dimensions}-D machines"
        )
    peak = utilization.peak
    steps = len(_SHADES) - 1

    def shade(value: float) -> str:
        if peak <= 0:
            return _SHADES[0]
        return _SHADES[round(value / peak * steps)]

    direction_names = {(0, 1): "+x", (0, -1): "-x", (1, 1): "+y", (1, -1): "-y"}
    blocks: List[str] = [
        f"link utilization (peak {peak:.3f}, mean {utilization.mean:.3f}, "
        f"hot factor {utilization.hot_factor:.1f}x)"
    ]
    rows = torus.radix if torus.dimensions == 2 else 1
    for dim in range(torus.dimensions):
        for step in (1, -1):
            name = direction_names.get((dim, step), f"dim{dim}{step:+d}")
            lines = [f"[{name}]"]
            for row in range(rows):
                cells = []
                for col in range(torus.radix):
                    if torus.dimensions == 2:
                        node = torus.node_at((col, row))
                    else:
                        node = col
                    cells.append(shade(utilization.per_link[(node, dim, step)]))
                lines.append("".join(cells))
            blocks.append("\n".join(lines))
    return "\n\n".join(blocks)

"""Locality profiles: mapping quality -> predicted end performance.

Glue between the mapping toolkit and the analytical model: given an
application's communication graph, a machine, and a set of candidate
thread-to-processor mappings, compute each mapping's average
communication distance and the combined model's predicted operating
point, normalized against the best candidate.  This is the API form of
the question a locality-aware scheduler asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.combined import OperatingPoint
from repro.core.system import SystemModel
from repro.errors import ParameterError
from repro.mapping.base import Mapping
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["ProfileEntry", "LocalityProfile", "locality_profile"]

#: Collocated-communication floor: the model needs a positive distance,
#: and sub-hop averages are in the clamped regime anyway.
_MIN_MODEL_DISTANCE = 1e-3


@dataclass(frozen=True)
class ProfileEntry:
    """One candidate mapping's locality and predicted performance."""

    name: str
    mapping: Mapping
    distance: float
    point: OperatingPoint

    @property
    def transaction_rate(self) -> float:
        return self.point.transaction_rate


@dataclass(frozen=True)
class LocalityProfile:
    """All candidates, sorted best (highest rate) first."""

    entries: List[ProfileEntry]

    @property
    def best(self) -> ProfileEntry:
        return self.entries[0]

    @property
    def worst(self) -> ProfileEntry:
        return self.entries[-1]

    @property
    def spread(self) -> float:
        """Best-to-worst transaction-rate ratio (>= 1)."""
        return self.best.transaction_rate / self.worst.transaction_rate

    def relative_rate(self, name: str) -> float:
        """A candidate's rate as a fraction of the best candidate's."""
        for entry in self.entries:
            if entry.name == name:
                return entry.transaction_rate / self.best.transaction_rate
        raise KeyError(f"no candidate named {name!r}")


def locality_profile(
    system: SystemModel,
    graph: CommunicationGraph,
    torus: Torus,
    candidates: Sequence[Tuple[str, Mapping]],
) -> LocalityProfile:
    """Profile candidate mappings of ``graph`` on ``torus`` under ``system``.

    The torus dimensionality must match the system's network model
    (the model's ``k_d = d/n`` conversion depends on it).
    """
    if not candidates:
        raise ParameterError("locality_profile needs at least one candidate")
    if torus.dimensions != system.network.dimensions:
        raise ParameterError(
            f"torus has {torus.dimensions} dimensions but the system's "
            f"network model has {system.network.dimensions}"
        )
    entries = []
    for name, mapping in candidates:
        distance = average_distance(graph, mapping, torus)
        point = system.operating_point(max(distance, _MIN_MODEL_DISTANCE))
        entries.append(
            ProfileEntry(
                name=name, mapping=mapping, distance=distance, point=point
            )
        )
    entries.sort(key=lambda e: e.transaction_rate, reverse=True)
    return LocalityProfile(entries=entries)

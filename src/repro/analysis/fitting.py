"""Least-squares fitting of measured application message curves.

Section 3.3 extracts the application model from simulation by fitting the
measured ``(t_m, T_m)`` points: the slope is the application's *measured*
latency sensitivity ``s`` and the (negated) intercept its message-curve
constant ``(T_r + T_f) / c`` in network cycles.  The same fits quantify
the paper's observation that measured slopes grow slightly less than
proportionally to the context count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.node import NodeModel
from repro.errors import ParameterError

__all__ = ["LineFit", "fit_line", "MessageCurveFit", "fit_message_curve"]


@dataclass(frozen=True)
class LineFit:
    """Ordinary least squares fit of ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_line(x: Sequence[float], y: Sequence[float]) -> LineFit:
    """Least-squares line through the given points (needs >= 2)."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ParameterError("x and y must be equal-length 1-D sequences")
    if xs.size < 2:
        raise ParameterError(f"need at least 2 points to fit, got {xs.size}")
    if np.ptp(xs) == 0:
        raise ParameterError("x values are all identical; slope undefined")
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    total = float(np.sum((ys - ys.mean()) ** 2))
    residual = float(np.sum((ys - predicted) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LineFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


@dataclass(frozen=True)
class MessageCurveFit:
    """A fitted application message curve (Eq 9, measured form)."""

    fit: LineFit
    contexts: float

    @property
    def sensitivity(self) -> float:
        """Measured latency sensitivity ``s`` (the slope)."""
        return self.fit.slope

    @property
    def curve_intercept(self) -> float:
        """Measured ``(T_r + T_f)/c`` in network cycles (``-intercept``)."""
        return -self.fit.intercept

    def to_node_model(self, messages_per_transaction: float = 1.0) -> NodeModel:
        """Build the node model this fit implies.

        A slightly negative measured intercept (statistical noise around
        a near-zero constant) is clamped to zero, since the node model
        requires a non-negative curve constant.
        """
        return NodeModel(
            sensitivity=self.sensitivity,
            intercept=max(0.0, self.curve_intercept),
            messages_per_transaction=messages_per_transaction,
        )


def fit_message_curve(
    points: Sequence[Tuple[float, float]], contexts: float = 1.0
) -> MessageCurveFit:
    """Fit measured ``(t_m, T_m)`` pairs into a message curve."""
    if len(points) < 2:
        raise ParameterError(
            f"need at least 2 (t_m, T_m) points, got {len(points)}"
        )
    x = [p[0] for p in points]
    y = [p[1] for p in points]
    return MessageCurveFit(fit=fit_line(x, y), contexts=contexts)

"""Plain-text rendering of result tables and series.

Benchmarks and experiment drivers print the same rows and series the
paper's tables and figures report; this module keeps the formatting in
one place so every surface (CLI, benchmarks, examples) renders results
identically.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_number", "render_series"]


def format_number(value, precision: int = 3) -> str:
    """Human-friendly numeric formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Monospace table with a header rule, right-aligned numeric cells."""
    materialized: List[List[str]] = [
        [format_number(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Iterable[Sequence[float]],
    title: str = "",
) -> str:
    """Two-column series rendering (a textual 'figure')."""
    return render_table([x_label, y_label], points, title=title)

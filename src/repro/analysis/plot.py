"""Terminal plotting: render figure-style series as ASCII charts.

The paper's artifacts are figures; these helpers let the CLI and
examples *show* them, not just tabulate them.  No plotting dependency —
plain character grids, with optional log axes (Figures 6 and 7 are
log-log plots).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ParameterError

__all__ = ["sparkline", "line_plot", "stacked_bars"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "*+ox#@%&"


def sparkline(values: Sequence[float]) -> str:
    """One-line trend view of a numeric series."""
    if not values:
        raise ParameterError("sparkline needs at least one value")
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    steps = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[round((value - low) / span * steps)] for value in values
    )


def _transform(values: Sequence[float], log: bool, axis: str) -> List[float]:
    if not log:
        return [float(v) for v in values]
    if any(v <= 0 for v in values):
        raise ParameterError(f"log {axis}-axis requires positive values")
    return [math.log10(v) for v in values]


def _format_tick(value: float, log: bool) -> str:
    real = 10**value if log else value
    if real == 0:
        return "0"
    magnitude = abs(real)
    if magnitude >= 1e5 or magnitude < 1e-2:
        return f"{real:.0e}"
    if magnitude >= 100:
        return f"{real:,.0f}"
    return f"{real:.3g}"


def line_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_log: bool = False,
    y_log: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter one or more series over a shared x axis.

    Each series gets a distinct marker (shown in the legend).  Axis
    ranges cover all series; log axes render decade-true positions.
    """
    if not x:
        raise ParameterError("line_plot needs at least one x value")
    if not series:
        raise ParameterError("line_plot needs at least one series")
    if width < 16 or height < 4:
        raise ParameterError("plot area must be at least 16x4")
    for label, values in series.items():
        if len(values) != len(x):
            raise ParameterError(
                f"series {label!r} has {len(values)} points for "
                f"{len(x)} x values"
            )

    xs = _transform(x, x_log, "x")
    all_y = [v for values in series.values() for v in values]
    ys_flat = _transform(all_y, y_log, "y")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys_flat), max(ys_flat)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        values_t = _transform(values, y_log, "y")
        for x_value, y_value in zip(xs, values_t):
            column = round((x_value - x_low) / x_span * (width - 1))
            row = round((y_value - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    y_top = _format_tick(y_high, y_log)
    y_bottom = _format_tick(y_low, y_log)
    margin = max(len(y_top), len(y_bottom), len(y_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label.rjust(margin))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_top.rjust(margin)
        elif row_index == height - 1:
            prefix = y_bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_left = _format_tick(x_low, x_log)
    x_right = _format_tick(x_high, x_log)
    axis_line = (
        " " * (margin + 1)
        + x_left
        + x_label.center(width - len(x_left) - len(x_right))
        + x_right
    )
    lines.append(axis_line)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def stacked_bars(
    bars: "Dict[str, Dict[str, float]]",
    width: int = 56,
    title: str = "",
) -> str:
    """Horizontal stacked bars (Figure 8's presentation).

    ``bars`` maps a bar label to its ordered components
    (``{bar: {component: value}}``); every bar shares one scale, and each
    component renders with a distinct fill character keyed in the legend.
    """
    if not bars:
        raise ParameterError("stacked_bars needs at least one bar")
    if width < 10:
        raise ParameterError("bar width must be at least 10")
    component_names: List[str] = []
    for components in bars.values():
        for name in components:
            if name not in component_names:
                component_names.append(name)
    if not component_names:
        raise ParameterError("bars need at least one component")
    fills = {
        name: _MARKERS[index % len(_MARKERS)]
        for index, name in enumerate(component_names)
    }
    scale = max(sum(components.values()) for components in bars.values())
    if scale <= 0:
        raise ParameterError("bar totals must be positive")
    label_width = max(len(label) for label in bars)

    lines: List[str] = []
    if title:
        lines.append(title)
    for label, components in bars.items():
        total = sum(components.values())
        cells: List[str] = []
        for name in component_names:
            value = components.get(name, 0.0)
            count = round(value / scale * width)
            cells.append(fills[name] * count)
        bar_text = "".join(cells)
        lines.append(
            f"{label.rjust(label_width)} |{bar_text}  {total:.1f}"
        )
    legend = "   ".join(f"{fills[name]} {name}" for name in component_names)
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)

"""Paper nomenclature (Appendix A) mapped to this library's API.

Each entry ties one of the paper's symbols to where it lives in
:mod:`repro`, so readers can move between the paper's equations and the
code without guessing.  :func:`describe` renders the table;
tests/test_nomenclature.py verifies every referenced attribute exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import render_table

__all__ = ["Symbol", "SYMBOLS", "describe"]


@dataclass(frozen=True)
class Symbol:
    """One Appendix A symbol and its API home."""

    symbol: str
    meaning: str
    api: str
    units: str


SYMBOLS: List[Symbol] = [
    Symbol("n", "mesh network dimension",
           "repro.core.TorusNetworkModel.dimensions", "-"),
    Symbol("k", "mesh network radix (side length)",
           "repro.topology.Torus.radix", "-"),
    Symbol("N", "total number of processors",
           "repro.topology.Torus.node_count", "-"),
    Symbol("T_r", "thread run length between transactions",
           "repro.core.ApplicationModel.grain", "processor cycles"),
    Symbol("s", "latency sensitivity (message-curve slope)",
           "repro.core.NodeModel.sensitivity", "-"),
    Symbol("d", "average communication distance",
           "repro.mapping.average_distance", "hops"),
    Symbol("p", "degree of hardware multithreading",
           "repro.core.ApplicationModel.contexts", "-"),
    Symbol("T_s", "context switch time",
           "repro.core.ApplicationModel.switch_time", "processor cycles"),
    Symbol("c", "messages on a transaction's critical path",
           "repro.core.TransactionModel.critical_messages", "-"),
    Symbol("g", "average messages per transaction",
           "repro.core.TransactionModel.messages_per_transaction", "-"),
    Symbol("T_f", "fixed component of transaction latency",
           "repro.core.TransactionModel.fixed_overhead", "processor cycles"),
    Symbol("T_t", "average transaction latency",
           "repro.core.OperatingPoint.transaction_latency", "network cycles"),
    Symbol("t_t", "average inter-transaction issue time",
           "repro.core.OperatingPoint.issue_time", "network cycles"),
    Symbol("r_t", "average transaction issue rate",
           "repro.core.OperatingPoint.transaction_rate",
           "1 / network cycle"),
    Symbol("T_m", "average message latency",
           "repro.core.OperatingPoint.message_latency", "network cycles"),
    Symbol("t_m", "average inter-message injection time",
           "repro.core.OperatingPoint.message_time", "network cycles"),
    Symbol("r_m", "average message injection rate",
           "repro.core.OperatingPoint.message_rate", "1 / network cycle"),
    Symbol("B", "average message size",
           "repro.core.TorusNetworkModel.message_size", "flits"),
    Symbol("k_d", "average per-dimension message distance",
           "repro.core.TorusNetworkModel.per_dimension_distance", "hops"),
    Symbol("rho", "network channel utilization",
           "repro.core.OperatingPoint.utilization", "-"),
    Symbol("T_h", "average per-hop message latency",
           "repro.core.OperatingPoint.per_hop_latency", "network cycles"),
]


def describe() -> str:
    """Appendix A as a rendered table."""
    return render_table(
        ["symbol", "meaning", "API", "units"],
        [(s.symbol, s.meaning, s.api, s.units) for s in SYMBOLS],
        title="Paper nomenclature (Appendix A) -> repro API",
    )

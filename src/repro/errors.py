"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model or simulator parameter is out of its valid domain.

    Raised, for example, for a non-positive computation grain, a latency
    sensitivity of zero, or a torus radix smaller than one.
    """


class SaturationError(ReproError):
    """The network cannot sustain the requested operating point.

    Raised by the combined-model solver when no physically meaningful
    operating point exists: the application's message demand exceeds the
    bisection-limited capacity of the network even at infinite latency
    (which cannot happen with a finite latency sensitivity, but can with
    an open-loop injection rate), or when an open-loop evaluation is
    requested beyond the saturation injection rate.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge.

    Carries the final residual so callers can decide whether the partial
    answer is still useful for diagnostics.
    """

    def __init__(self, message: str, residual: float = float("nan")):
        super().__init__(message)
        self.residual = residual


class TopologyError(ReproError, ValueError):
    """A topology operation received inconsistent coordinates or nodes."""


class MappingError(ReproError, ValueError):
    """A thread-to-processor mapping is malformed.

    For example: not a bijection when one is required, or sized
    inconsistently with the communication graph or the target topology.
    """


class SimulationError(ReproError):
    """The discrete simulator reached an inconsistent internal state.

    This always indicates a bug in the simulator or a configuration that
    violates a documented invariant (e.g. a coherence message addressed
    to a node outside the machine).
    """


class ProtocolError(SimulationError):
    """The cache-coherence protocol observed an illegal transition."""


class PoolError(ReproError):
    """The persistent worker pool failed as *infrastructure*.

    Raised for pool-level problems — a start method that cannot spawn
    processes, dispatch to a closed pool, a nested pool requested inside
    a pool worker.  Distinct from exceptions a *task function* raises,
    which propagate to the caller unchanged; callers that can run the
    work serially catch :data:`repro.core.pool.FALLBACK_ERRORS` (which
    includes this class) and fall back.
    """


class WorkerCrashError(PoolError):
    """A pool worker process died mid-task (signal, ``os._exit``, OOM).

    The pool replaces the dead worker and stays usable; only the tasks
    that were in flight on the crashed worker fail with this error.
    """

"""Multi-chain (restart) annealing over a shared distance table.

Annealing is cheap insurance against bad luck: one chain can freeze in a
poor basin, but the best of ``R`` independently seeded chains rarely
does.  :func:`anneal_chains` runs ``R`` restart chains of
:func:`repro.mapping.anneal.anneal_mapping` — same graph, torus, initial
mapping, and schedule, chain ``i`` seeded ``seed + i`` — and returns all
of them plus the winner.

Two execution strategies, identical results:

* **batched** (default, ``jobs=1``) — all chains advance in lockstep and
  each step's swap deltas are priced for every chain at once with 2-D
  gathers over the shared distance table and a zero-padded adjacency
  matrix (:meth:`repro.mapping.engine.SwapEngine.padded_adjacency`).
  Per-chain random streams are private, so lockstep interleaving cannot
  perturb them: chain ``i`` is bit-identical to a standalone
  ``anneal_mapping(..., seed=seed + i)`` run.
* **process fan-out** (``jobs > 1``) — chains are distributed over the
  persistent warm worker pool (:mod:`repro.core.pool`), the same pool
  the replication sweep and the experiment campaign runner share; the
  ``(graph, torus, initial)`` payload — and, on spawn platforms, the
  dense torus distance table through shared memory — is broadcast once,
  and each task carries only its chain seed and schedule.  Falls back to
  the batched path (loudly: ``pool.fallback`` counter plus a
  :class:`~repro.core.pool.PoolFallbackWarning`) if no pool can start.

Either way the chain results — and therefore the selected winner — are
deterministic functions of ``(seed, chains)`` alone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.core.pool import FALLBACK_ERRORS, WorkerPool, get_pool, note_fallback
from repro.errors import MappingError
from repro.mapping.anneal import AnnealResult, _check_schedule
from repro.mapping.base import Mapping
from repro.mapping.engine import SwapEngine, check_sizes
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["MultiChainResult", "anneal_chains"]


@dataclass(frozen=True)
class MultiChainResult:
    """All restart chains of one multi-chain annealing run.

    ``results[i]`` is chain ``i``'s :class:`AnnealResult` (seeded
    ``seeds[i]``); ``best_index`` selects the lowest best-distance chain,
    ties resolved toward the lowest index, so selection is deterministic.
    """

    results: Tuple[AnnealResult, ...]
    seeds: Tuple[int, ...]
    best_index: int

    @property
    def best(self) -> AnnealResult:
        """The winning chain's result."""
        return self.results[self.best_index]

    @property
    def chains(self) -> int:
        return len(self.results)

    @property
    def distances(self) -> Tuple[float, ...]:
        """Best distance per chain, in chain order."""
        return tuple(result.best_distance for result in self.results)


def _select_best(results: Tuple[AnnealResult, ...]) -> int:
    best_index = 0
    for index, result in enumerate(results):
        if result.best_distance < results[best_index].best_distance:
            best_index = index
    return best_index


def _chain_worker(arguments) -> AnnealResult:
    """One standalone chain (module-level so it pickles)."""
    from repro.mapping.anneal import anneal_mapping

    graph, torus, initial, steps, seed, temperature, cooling = arguments
    return anneal_mapping(
        graph,
        torus,
        initial,
        steps=steps,
        seed=seed,
        initial_temperature=temperature,
        cooling=cooling,
    )


def _pool_chain_worker(payload, task) -> AnnealResult:
    """Warm-pool task: one chain against the broadcast problem.

    ``payload`` holds the immutable problem — and, on spawn pools, the
    parent's dense distance table (a shared-memory view), which is
    installed in the module cache so the chain skips the O(N^2) rebuild.
    """
    graph, torus, initial, table = payload
    if table is not None:
        from repro.topology.torus import seed_distance_table

        seed_distance_table(torus.radix, torus.dimensions, table)
    seed, steps, temperature, cooling = task
    return _chain_worker(
        (graph, torus, initial, steps, seed, temperature, cooling)
    )


def _anneal_chains_batched(
    engine: SwapEngine,
    initial: Mapping,
    chains: int,
    steps: int,
    seeds: Tuple[int, ...],
    initial_temperature: float,
    cooling: float,
) -> Tuple[AnnealResult, ...]:
    """Lockstep chains with batched 2-D delta gathers."""
    threads = engine.graph.threads
    generators = [random.Random(seed) for seed in seeds]
    position = np.tile(
        np.array(initial.assignment, dtype=np.intp), (chains, 1)
    )
    start_sum = engine.weighted_hop_sum(position[0])
    current_sum = [start_sum] * chains
    best_sum = [start_sum] * chains
    best_position = [position[i].copy() for i in range(chains)]
    accepted = [0] * chains
    attempted = [0] * chains

    padded_nbr, padded_weight = engine.padded_adjacency()
    temperature = initial_temperature
    chain_ids = np.empty(chains, dtype=np.intp)
    a_ids = np.empty(chains, dtype=np.intp)
    b_ids = np.empty(chains, dtype=np.intp)

    for _ in range(steps):
        temperature *= cooling
        active = 0
        for chain, generator in enumerate(generators):
            thread_a = generator.randrange(threads)
            thread_b = generator.randrange(threads)
            if thread_a == thread_b:
                continue
            attempted[chain] += 1
            chain_ids[active] = chain
            a_ids[active] = thread_a
            b_ids[active] = thread_b
            active += 1
        if not active:
            continue
        rows = chain_ids[:active]
        a_arr = a_ids[:active]
        b_arr = b_ids[:active]

        nbr_a = padded_nbr[a_arr]
        nbr_b = padded_nbr[b_arr]
        weight_a = padded_weight[a_arr] * (nbr_a != b_arr[:, None])
        weight_b = padded_weight[b_arr] * (nbr_b != a_arr[:, None])
        pos_na = position[rows[:, None], nbr_a]
        pos_nb = position[rows[:, None], nbr_b]
        here_a = position[rows, a_arr][:, None]
        here_b = position[rows, b_arr][:, None]
        gain_a = engine.distances_2d(here_b, pos_na).astype(
            np.int64
        ) - engine.distances_2d(here_a, pos_na)
        gain_b = engine.distances_2d(here_a, pos_nb).astype(
            np.int64
        ) - engine.distances_2d(here_b, pos_nb)
        deltas = (weight_a * gain_a).sum(axis=1) + (weight_b * gain_b).sum(axis=1)

        draw_probability = temperature > 1e-12
        for lane in range(active):
            chain = rows[lane]
            delta = deltas[lane]
            generator = generators[chain]
            accept = delta < 0 or (
                draw_probability
                and generator.random() < math.exp(-delta / temperature)
            )
            if not accept:
                continue
            accepted[chain] += 1
            current_sum[chain] += delta
            thread_a = a_arr[lane]
            thread_b = b_arr[lane]
            position[chain, thread_a], position[chain, thread_b] = (
                position[chain, thread_b],
                position[chain, thread_a],
            )
            if current_sum[chain] < best_sum[chain]:
                best_sum[chain] = current_sum[chain]
                best_position[chain] = position[chain].copy()

    initial_distance = average_distance(
        engine.graph, initial, engine.torus
    )
    results = []
    for chain in range(chains):
        mapping = Mapping(
            assignment=tuple(int(p) for p in best_position[chain]),
            processors=initial.processors,
        )
        distance = float(best_sum[chain]) / engine.total_weight
        results.append(
            AnnealResult(
                mapping=mapping,
                distance=distance,
                initial_distance=initial_distance,
                best_distance=distance,
                accepted_moves=accepted[chain],
                attempted_moves=attempted[chain],
                skipped_moves=steps - attempted[chain],
            )
        )
    return tuple(results)


def anneal_chains(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    chains: int = 4,
    steps: int = 5000,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.999,
    jobs: int = 1,
    pool: Optional[WorkerPool] = None,
) -> MultiChainResult:
    """Run ``chains`` independent annealing restarts and keep them all.

    Chain ``i`` is seeded ``seed + i`` and is bit-identical to a
    standalone ``anneal_mapping(..., seed=seed + i)`` call; results do
    not depend on ``jobs`` or on pool reuse.  With ``jobs > 1`` chains
    fan out over the process-global warm worker pool (one chain per
    task, problem broadcast once); otherwise all chains advance in
    lockstep with their swap deltas priced in one batched gather per
    step over the shared distance table.  Pass ``pool`` to use a
    specific pool instead of the global one.
    """
    check_sizes(graph, torus, initial, steps)
    _check_schedule(initial_temperature, cooling)
    if chains < 1:
        raise MappingError(f"chains must be >= 1, got {chains!r}")
    if jobs < 1:
        raise MappingError(f"jobs must be >= 1, got {jobs!r}")
    if graph.total_weight == 0.0:
        raise MappingError("communication graph has no edges")

    seeds = tuple(seed + index for index in range(chains))
    results: Optional[Tuple[AnnealResult, ...]] = None
    with obs.span(
        "mapping.anneal_chains",
        chains=chains,
        steps=steps,
        threads=graph.threads,
        seed=seed,
        jobs=jobs,
    ):
        if jobs > 1 or pool is not None:
            try:
                worker_pool = pool if pool is not None else get_pool(jobs)
                # On spawn pools ship the dense distance table along (it
                # rides shared memory, one copy machine-wide); fork
                # workers inherit the parent's table cache for free.
                table = (
                    torus.distance_table()
                    if worker_pool.uses_shared_memory
                    else None
                )
                worker_pool.broadcast(
                    "mapping.chains", (graph, torus, initial, table)
                )
                tasks = [
                    (s, steps, initial_temperature, cooling) for s in seeds
                ]
                results = tuple(
                    worker_pool.map(
                        _pool_chain_worker, tasks, key="mapping.chains"
                    )
                )
            except FALLBACK_ERRORS as error:
                note_fallback("mapping.chains", error)
                results = None  # no usable pool; fall through to batched
        if results is None:
            engine = SwapEngine(graph, torus)
            results = _anneal_chains_batched(
                engine,
                initial,
                chains,
                steps,
                seeds,
                initial_temperature,
                cooling,
            )

    if obs.is_enabled():
        obs.REGISTRY.counter(
            "anneal.chains", help="annealing restart chains run"
        ).inc(chains)
        obs.REGISTRY.counter(
            "anneal.attempted_moves", help="annealing swap attempts"
        ).inc(sum(result.attempted_moves for result in results))
        obs.REGISTRY.counter(
            "anneal.accepted_moves", help="annealing swaps accepted"
        ).inc(sum(result.accepted_moves for result in results))

    return MultiChainResult(
        results=results,
        seeds=seeds,
        best_index=_select_best(results),
    )

"""Loop-based reference implementations of the locality kernels.

The vectorized locality engine (distance-table gathers in
:mod:`repro.mapping.evaluate`, the array-backed swap optimizers in
:mod:`repro.mapping.anneal` and :mod:`repro.mapping.optimize`) promises
*bit-identical* results to the original per-edge Python loops for any
graph with integer edge weights — which covers every built-in
communication graph.  This module keeps those original loops alive as
the executable specification: the property tests pin the vectorized
kernels against them seed for seed, and ``benchmarks/bench_mapping.py``
measures the speedup against them.

Nothing here is exported through the package API and nothing in the
library calls it on a hot path; it exists so the parity contract is
checked against real code rather than against a remembered behavior.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.mapping.anneal import AnnealResult
from repro.mapping.base import Mapping
from repro.mapping.optimize import OptimizationResult
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = [
    "reference_average_distance",
    "reference_distance_histogram",
    "reference_anneal_mapping",
    "reference_optimize_mapping",
]


def reference_average_distance(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> float:
    """Per-edge loop over ``torus.distance`` — the original ``d`` kernel."""
    total = 0.0
    weight_sum = 0.0
    for src, dst, weight in graph.edges():
        hops = torus.distance(mapping.processor_of(src), mapping.processor_of(dst))
        total += weight * hops
        weight_sum += weight
    return total / weight_sum


def reference_distance_histogram(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> Dict[int, float]:
    """Per-edge loop building the weight-at-distance histogram."""
    histogram: Dict[int, float] = {}
    for src, dst, weight in graph.edges():
        hops = torus.distance(mapping.processor_of(src), mapping.processor_of(dst))
        histogram[hops] = histogram.get(hops, 0.0) + weight
    return histogram


def _adjacency(graph: CommunicationGraph) -> List[List[Tuple[int, float]]]:
    adjacency: List[List[Tuple[int, float]]] = [[] for _ in range(graph.threads)]
    for src, dst, weight in graph.edges():
        adjacency[src].append((dst, weight))
        adjacency[dst].append((src, weight))
    return adjacency


def reference_anneal_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 5000,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.999,
) -> AnnealResult:
    """The original annealer: ``torus.distance`` per neighbor per swap.

    Draw order, cooling schedule (one decay per drawn step, including
    skipped same-thread draws), and accept rule match
    :func:`repro.mapping.anneal.anneal_mapping` exactly; move counting
    follows the fixed semantics (``attempted_moves`` counts real
    attempts, ``skipped_moves`` the discarded same-thread draws).
    """
    adjacency = _adjacency(graph)
    total_weight = graph.total_weight
    assignment = list(initial.assignment)
    generator = random.Random(seed)

    def local_cost(thread: int, other: int) -> float:
        here = assignment[thread]
        cost = 0.0
        for neighbor, weight in adjacency[thread]:
            if neighbor == other:
                continue
            cost += weight * torus.distance(here, assignment[neighbor])
        return cost

    current_sum = 0.0
    for src, dst, weight in graph.edges():
        current_sum += weight * torus.distance(assignment[src], assignment[dst])
    best_sum = current_sum
    best_assignment = tuple(assignment)

    temperature = initial_temperature
    accepted = 0
    attempted = 0
    threads = graph.threads
    for _ in range(steps):
        temperature *= cooling
        thread_a = generator.randrange(threads)
        thread_b = generator.randrange(threads)
        if thread_a == thread_b:
            continue
        attempted += 1
        before = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        assignment[thread_a], assignment[thread_b] = (
            assignment[thread_b],
            assignment[thread_a],
        )
        after = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        delta = after - before
        accept = delta < 0 or (
            temperature > 1e-12
            and generator.random() < math.exp(-delta / temperature)
        )
        if accept:
            accepted += 1
            current_sum += delta
            if current_sum < best_sum:
                best_sum = current_sum
                best_assignment = tuple(assignment)
        else:
            assignment[thread_a], assignment[thread_b] = (
                assignment[thread_b],
                assignment[thread_a],
            )

    final = Mapping(assignment=best_assignment, processors=initial.processors)
    return AnnealResult(
        mapping=final,
        distance=best_sum / total_weight,
        initial_distance=reference_average_distance(graph, initial, torus),
        best_distance=best_sum / total_weight,
        accepted_moves=accepted,
        attempted_moves=attempted,
        skipped_moves=steps - attempted,
    )


def reference_optimize_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
    maximize: bool = False,
) -> OptimizationResult:
    """The original hill climber, loop-based like the annealer above."""
    adjacency = _adjacency(graph)
    total_weight = graph.total_weight
    assignment = list(initial.assignment)
    generator = random.Random(seed)

    def local_cost(thread: int, other: int) -> float:
        here = assignment[thread]
        cost = 0.0
        for neighbor, weight in adjacency[thread]:
            if neighbor == other:
                continue
            cost += weight * torus.distance(here, assignment[neighbor])
        return cost

    current_sum = 0.0
    for src, dst, weight in graph.edges():
        current_sum += weight * torus.distance(assignment[src], assignment[dst])

    accepted = 0
    threads = graph.threads
    for _ in range(steps):
        thread_a = generator.randrange(threads)
        thread_b = generator.randrange(threads)
        if thread_a == thread_b:
            continue
        before = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        assignment[thread_a], assignment[thread_b] = (
            assignment[thread_b],
            assignment[thread_a],
        )
        after = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        delta = after - before
        improved = delta > 0 if maximize else delta < 0
        if improved:
            accepted += 1
            current_sum += delta
        else:
            assignment[thread_a], assignment[thread_b] = (
                assignment[thread_b],
                assignment[thread_a],
            )

    final = Mapping(assignment=tuple(assignment), processors=initial.processors)
    return OptimizationResult(
        mapping=final,
        distance=current_sum / total_weight,
        initial_distance=reference_average_distance(graph, initial, torus),
        accepted_swaps=accepted,
        attempted_swaps=steps,
    )

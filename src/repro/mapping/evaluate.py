"""Evaluating mappings: the operational locality metric.

The paper reduces all communication-pattern information to one number —
the **average communication distance** ``d`` in network hops (Section
2.1's "operational definition of physical locality").  This module
computes that number exactly for a (communication graph, mapping,
topology) triple, along with the distance distribution for finer-grained
diagnostics.

The kernels are vectorized: edge endpoints come from the graph's array
views (:meth:`CommunicationGraph.edge_arrays`), hop counts are a single
gather from the torus distance table (:meth:`Torus.distance_table`), and
the histogram is one weighted ``np.bincount``.  Tori above the distance
table's memory guard use the delta-compressed backend (per-dimension
ring rows, O(n * k) memory), which computes the same hop counts without
the quadratic table.  All built-in
communication graphs carry integer edge weights, for which the array
reductions are exact — results equal the per-edge loop bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus, distance_backend

__all__ = ["average_distance", "distance_histogram", "MappingEvaluation", "evaluate"]


def _check_compatible(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> None:
    if mapping.threads != graph.threads:
        raise MappingError(
            f"mapping covers {mapping.threads} threads but the graph has "
            f"{graph.threads}"
        )
    if mapping.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {mapping.processors} processors but the torus "
            f"has {torus.node_count} nodes"
        )


def edge_hop_counts(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> np.ndarray:
    """Network hops of every edge under ``mapping``, in edge order.

    One gather through :func:`repro.topology.torus.distance_backend` —
    the same accessor the swap engine uses, so the memory-guard decision
    (dense table, delta-compressed rows, or digit walk) is made in
    exactly one place.
    """
    src, dst, _ = graph.edge_arrays()
    position = np.asarray(mapping.assignment, dtype=np.intp)
    return distance_backend(torus).pairwise(position[src], position[dst])


def average_distance(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> float:
    """Weighted mean network hops per message — the model's ``d``.

    Collocated communicating threads contribute distance 0 (their
    "messages" never enter the network); the paper's bijective mappings
    never produce that case for its neighbor graph.
    """
    _check_compatible(graph, mapping, torus)
    _, _, weight = graph.edge_arrays()
    weight_sum = float(weight.sum())
    if weight_sum == 0.0:
        raise MappingError("communication graph has no edges")
    hops = edge_hop_counts(graph, mapping, torus)
    return float(weight @ hops) / weight_sum


def distance_histogram(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> Dict[int, float]:
    """Total edge weight at each hop distance."""
    _check_compatible(graph, mapping, torus)
    _, _, weight = graph.edge_arrays()
    hops = edge_hop_counts(graph, mapping, torus)
    totals = np.bincount(hops, weights=weight)
    occupied = np.bincount(hops, minlength=totals.size)
    return {
        int(distance): float(totals[distance])
        for distance in np.nonzero(occupied)[0]
    }


@dataclass(frozen=True)
class MappingEvaluation:
    """Summary statistics of one mapping of one graph onto one torus."""

    average: float
    maximum: int
    minimum: int
    per_dimension: float
    histogram: Dict[int, float]


def evaluate(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> MappingEvaluation:
    """Full distance statistics for a mapping.

    ``per_dimension`` is the model's ``k_d = d / n`` (Eq 13) for this
    mapping, ready to feed the network model.
    """
    histogram = distance_histogram(graph, mapping, torus)
    weight_sum = sum(histogram.values())
    average = sum(hops * weight for hops, weight in histogram.items()) / weight_sum
    return MappingEvaluation(
        average=average,
        maximum=max(histogram),
        minimum=min(histogram),
        per_dimension=average / torus.dimensions,
        histogram=histogram,
    )

"""Evaluating mappings: the operational locality metric.

The paper reduces all communication-pattern information to one number —
the **average communication distance** ``d`` in network hops (Section
2.1's "operational definition of physical locality").  This module
computes that number exactly for a (communication graph, mapping,
topology) triple, along with the distance distribution for finer-grained
diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["average_distance", "distance_histogram", "MappingEvaluation", "evaluate"]


def _check_compatible(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> None:
    if mapping.threads != graph.threads:
        raise MappingError(
            f"mapping covers {mapping.threads} threads but the graph has "
            f"{graph.threads}"
        )
    if mapping.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {mapping.processors} processors but the torus "
            f"has {torus.node_count} nodes"
        )


def average_distance(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> float:
    """Weighted mean network hops per message — the model's ``d``.

    Collocated communicating threads contribute distance 0 (their
    "messages" never enter the network); the paper's bijective mappings
    never produce that case for its neighbor graph.
    """
    _check_compatible(graph, mapping, torus)
    total = 0.0
    weight_sum = 0.0
    for src, dst, weight in graph.edges():
        hops = torus.distance(mapping.processor_of(src), mapping.processor_of(dst))
        total += weight * hops
        weight_sum += weight
    if weight_sum == 0.0:
        raise MappingError("communication graph has no edges")
    return total / weight_sum


def distance_histogram(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> Dict[int, float]:
    """Total edge weight at each hop distance."""
    _check_compatible(graph, mapping, torus)
    histogram: Dict[int, float] = {}
    for src, dst, weight in graph.edges():
        hops = torus.distance(mapping.processor_of(src), mapping.processor_of(dst))
        histogram[hops] = histogram.get(hops, 0.0) + weight
    return histogram


@dataclass(frozen=True)
class MappingEvaluation:
    """Summary statistics of one mapping of one graph onto one torus."""

    average: float
    maximum: int
    minimum: int
    per_dimension: float
    histogram: Dict[int, float]


def evaluate(
    graph: CommunicationGraph, mapping: Mapping, torus: Torus
) -> MappingEvaluation:
    """Full distance statistics for a mapping.

    ``per_dimension`` is the model's ``k_d = d / n`` (Eq 13) for this
    mapping, ready to feed the network model.
    """
    histogram = distance_histogram(graph, mapping, torus)
    weight_sum = sum(histogram.values())
    average = sum(hops * weight for hops, weight in histogram.items()) / weight_sum
    return MappingEvaluation(
        average=average,
        maximum=max(histogram),
        minimum=min(histogram),
        per_dimension=average / torus.dimensions,
        histogram=histogram,
    )

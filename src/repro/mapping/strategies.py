"""Concrete mapping strategies.

Deterministic constructions covering the spectrum from ideal (identity:
every application-graph edge is one network hop for the paper's
torus-neighbor workload) through structured scramblings (stride, linear
coordinate scaling, bit reversal) to seeded-random placements, which is
the paper's stand-in for "physical locality ignored".
"""

from __future__ import annotations

import math
import random
from typing import Sequence

import numpy as np

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.torus import Torus


def _mapping_from_coords(torus: Torus, coords: np.ndarray) -> Mapping:
    """Mapping whose thread ``i`` lands on the node at ``coords[:, i]``.

    The inverse of :meth:`Torus.coordinate_array`: node ids are rebuilt
    as base-``k`` digits (dimension 0 least significant), vectorized.
    """
    nodes = np.zeros(coords.shape[1], dtype=np.int64)
    for dim in reversed(range(torus.dimensions)):
        nodes = nodes * torus.radix + coords[dim]
    return Mapping(
        assignment=tuple(int(node) for node in nodes),
        processors=torus.node_count,
    )

__all__ = [
    "identity_mapping",
    "random_mapping",
    "stride_mapping",
    "dimension_scale_mapping",
    "transpose_mapping",
    "bit_reversal_mapping",
    "shear_mapping",
    "block_collocation_mapping",
    "snake_mapping",
    "gray_code_mapping",
    "rotation_mapping",
]


def identity_mapping(processors: int) -> Mapping:
    """Thread ``i`` on processor ``i`` — the paper's ideal mapping."""
    return Mapping(assignment=tuple(range(processors)), processors=processors)


def random_mapping(processors: int, seed: int) -> Mapping:
    """A seeded uniform random bijection — "physical locality ignored"."""
    generator = random.Random(seed)
    assignment = list(range(processors))
    generator.shuffle(assignment)
    return Mapping(assignment=tuple(assignment), processors=processors)


def stride_mapping(processors: int, stride: int) -> Mapping:
    """Thread ``i`` on processor ``(stride * i) mod P``.

    Requires ``gcd(stride, P) == 1`` so the result is a bijection.
    Strides near 1 keep neighbors close; strides near ``P/2`` scatter
    them across the machine.
    """
    if math.gcd(stride, processors) != 1:
        raise MappingError(
            f"stride {stride} shares a factor with {processors}; "
            "the mapping would not be a bijection"
        )
    return Mapping(
        assignment=tuple((stride * i) % processors for i in range(processors)),
        processors=processors,
    )


def dimension_scale_mapping(torus: Torus, multipliers: Sequence[int]) -> Mapping:
    """Scale each coordinate: ``x_j -> (m_j * x_j) mod k``.

    Each ``m_j`` must be coprime to the radix.  For the torus-neighbor
    workload this stretches dimension ``j``'s edges to
    ``min(m_j, k - m_j)`` hops, giving precise control over per-dimension
    communication distance.
    """
    if len(multipliers) != torus.dimensions:
        raise MappingError(
            f"expected {torus.dimensions} multipliers, got {len(multipliers)}"
        )
    for multiplier in multipliers:
        if math.gcd(multiplier, torus.radix) != 1:
            raise MappingError(
                f"multiplier {multiplier} shares a factor with radix "
                f"{torus.radix}; the mapping would not be a bijection"
            )
    coords = torus.coordinate_array()
    factors = np.asarray(multipliers, dtype=np.int64)[:, None]
    return _mapping_from_coords(torus, (factors * coords) % torus.radix)


def transpose_mapping(torus: Torus) -> Mapping:
    """Reverse the coordinate order: ``(x0, .., xn-1) -> (xn-1, .., x0)``.

    An automorphism of the torus, so for topology-shaped workloads it
    preserves single-hop communication — useful as a "different but still
    ideal" mapping in tests.
    """
    return _mapping_from_coords(torus, torus.coordinate_array()[::-1])


def bit_reversal_mapping(torus: Torus) -> Mapping:
    """Reverse the bits of every coordinate (radix must be a power of 2).

    The classic FFT-style scrambling: adjacent coordinates land far
    apart, yielding a mid-range average communication distance.
    """
    radix = torus.radix
    bits = radix.bit_length() - 1
    if 2**bits != radix:
        raise MappingError(
            f"bit reversal needs a power-of-two radix, got {radix}"
        )

    def reverse(value: int) -> int:
        result = 0
        for _ in range(bits):
            result = (result << 1) | (value & 1)
            value >>= 1
        return result

    lookup = np.array([reverse(value) for value in range(radix)], dtype=np.int64)
    return _mapping_from_coords(torus, lookup[torus.coordinate_array()])


def shear_mapping(torus: Torus, factor: int = 1) -> Mapping:
    """Shear the first coordinate by the second: ``x0 -> x0 + factor*x1``.

    A unimodular (hence bijective) transform available for ``n >= 2``;
    stretches one dimension's edges while leaving the other's intact,
    producing fractional average distances between the scaled extremes.
    """
    if torus.dimensions < 2:
        raise MappingError("shear_mapping needs at least two dimensions")
    coords = np.array(torus.coordinate_array(), dtype=np.int64)
    coords[0] = (coords[0] + factor * coords[1]) % torus.radix
    return _mapping_from_coords(torus, coords)


def block_collocation_mapping(threads: int, processors: int) -> Mapping:
    """Contiguous blocks of threads share a processor (UCL-style locality).

    With ``threads = b * processors`` this places threads
    ``b*j .. b*j + b - 1`` on processor ``j`` — collocating consecutive
    (presumably communicating) threads, the only locality lever UCL
    machines have (Section 1.1).
    """
    if threads < processors or threads % processors != 0:
        raise MappingError(
            f"block collocation needs threads to be a positive multiple "
            f"of processors, got {threads} threads on {processors}"
        )
    block = threads // processors
    return Mapping(
        assignment=tuple(i // block for i in range(threads)),
        processors=processors,
    )


def snake_mapping(torus: Torus) -> Mapping:
    """Boustrophedon order: linear thread order snakes through rows.

    Thread ``i`` (in linear order) lands on row ``i // k``; odd rows run
    right-to-left.  Consecutive threads are always adjacent, so linear
    communication chains (rings, pipelines) stay at one hop except at
    the wraparound — the classic embedding of a line into a mesh.
    Defined for 2-D tori.
    """
    if torus.dimensions != 2:
        raise MappingError(
            f"snake_mapping is 2-D only, got {torus.dimensions} dimensions"
        )
    radix = torus.radix
    assignment = []
    for thread in range(torus.node_count):
        row, offset = divmod(thread, radix)
        column = offset if row % 2 == 0 else radix - 1 - offset
        assignment.append(torus.node_at((column, row)))
    return Mapping(assignment=tuple(assignment), processors=torus.node_count)


def gray_code_mapping(torus: Torus) -> Mapping:
    """Reflected-Gray-code order along each coordinate (power-of-2 radix).

    Adjacent linear indices map to coordinates differing in exactly one
    ring position per dimension digit, keeping sequential neighbors
    close — the standard trick for embedding rings into binary tori.
    """
    radix = torus.radix
    bits = radix.bit_length() - 1
    if 2**bits != radix:
        raise MappingError(
            f"gray_code_mapping needs a power-of-two radix, got {radix}"
        )

    coords = np.asarray(torus.coordinate_array(), dtype=np.int64)
    return _mapping_from_coords(torus, coords ^ (coords >> 1))


def rotation_mapping(torus: Torus, offsets: Sequence[int]) -> Mapping:
    """Translate every thread by a fixed coordinate offset (torus shift).

    A torus automorphism: preserves all pairwise distances exactly, so
    for any workload it performs identically to the identity mapping —
    useful for verifying that measurements are translation-invariant.
    """
    if len(offsets) != torus.dimensions:
        raise MappingError(
            f"expected {torus.dimensions} offsets, got {len(offsets)}"
        )
    coords = torus.coordinate_array()
    shifts = np.asarray(offsets, dtype=np.int64)[:, None]
    return _mapping_from_coords(torus, (coords + shifts) % torus.radix)

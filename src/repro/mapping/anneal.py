"""Simulated-annealing mapping optimization.

The hill climber in :mod:`repro.mapping.optimize` stops at the first
local optimum; annealing escapes shallow ones by accepting worsening
swaps with probability ``exp(-delta / T)`` under a geometric cooling
schedule.  Deterministic for a given seed, like everything else in the
mapping package.

Swap deltas are priced by the vectorized :class:`repro.mapping.engine.SwapEngine`
(distance-table gathers over precomputed per-thread adjacency arrays)
instead of per-neighbor ``torus.distance`` calls; for integer edge
weights — every built-in graph — accept/reject decisions, the best
assignment, and all counters are bit-identical to the loop-based
reference implementation (:mod:`repro.mapping.reference`), which the
property tests enforce seed for seed.

Cooling semantics: the temperature decays once per *drawn* step, so the
schedule always spans exactly ``steps`` decays — including on draws
where both threads coincide and no swap is attempted.  Those skipped
draws are reported separately (``skipped_moves``) and excluded from
``attempted_moves``, which counts real swap attempts only.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.mapping.engine import SwapEngine, check_sizes
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["AnnealResult", "anneal_mapping"]


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of an annealing run.

    ``attempted_moves`` counts real swap attempts; draws that picked the
    same thread twice are tallied in ``skipped_moves`` instead (the two
    always sum to the requested ``steps``).  Temperature decays on every
    drawn step, skipped or not — see the module docstring.
    """

    mapping: Mapping
    distance: float
    initial_distance: float
    best_distance: float
    accepted_moves: int
    attempted_moves: int
    skipped_moves: int = 0


def _check_schedule(initial_temperature: float, cooling: float) -> None:
    if not 0.0 < cooling < 1.0:
        raise MappingError(f"cooling must lie in (0, 1), got {cooling!r}")
    if not initial_temperature > 0:
        raise MappingError(
            f"initial_temperature must be positive, got {initial_temperature!r}"
        )


def anneal_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 5000,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.999,
) -> AnnealResult:
    """Anneal pairwise swaps to minimize average communication distance.

    Parameters
    ----------
    initial_temperature:
        Starting temperature in units of *weighted hop-sum* delta; around
        the magnitude of a typical single-swap delta works well.
    cooling:
        Geometric decay applied per drawn step; must lie in (0, 1).

    Returns the best mapping encountered (not merely the final state).
    """
    check_sizes(graph, torus, initial, steps)
    _check_schedule(initial_temperature, cooling)
    if graph.total_weight == 0.0:
        raise MappingError("communication graph has no edges")

    engine = SwapEngine(graph, torus)
    position = np.array(initial.assignment, dtype=np.intp)
    generator = random.Random(seed)

    current_sum = engine.weighted_hop_sum(position)
    best_sum = current_sum
    best_position = position.copy()

    temperature = initial_temperature
    accepted = 0
    attempted = 0
    threads = graph.threads
    with obs.span(
        "mapping.anneal", steps=steps, threads=threads, seed=seed
    ):
        for _ in range(steps):
            temperature *= cooling
            thread_a = generator.randrange(threads)
            thread_b = generator.randrange(threads)
            if thread_a == thread_b:
                continue
            attempted += 1
            delta = engine.swap_delta(position, thread_a, thread_b)
            accept = delta < 0 or (
                temperature > 1e-12
                and generator.random() < math.exp(-delta / temperature)
            )
            if accept:
                accepted += 1
                current_sum += delta
                position[thread_a], position[thread_b] = (
                    position[thread_b],
                    position[thread_a],
                )
                if current_sum < best_sum:
                    best_sum = current_sum
                    best_position = position.copy()

    if obs.is_enabled():
        obs.REGISTRY.counter(
            "anneal.attempted_moves", help="annealing swap attempts"
        ).inc(attempted)
        obs.REGISTRY.counter(
            "anneal.skipped_moves", help="same-thread draws discarded"
        ).inc(steps - attempted)
        obs.REGISTRY.counter(
            "anneal.accepted_moves", help="annealing swaps accepted"
        ).inc(accepted)

    final = Mapping(
        assignment=tuple(int(p) for p in best_position),
        processors=initial.processors,
    )
    return AnnealResult(
        mapping=final,
        distance=float(best_sum) / engine.total_weight,
        initial_distance=average_distance(graph, initial, torus),
        best_distance=float(best_sum) / engine.total_weight,
        accepted_moves=accepted,
        attempted_moves=attempted,
        skipped_moves=steps - attempted,
    )

"""Simulated-annealing mapping optimization.

The hill climber in :mod:`repro.mapping.optimize` stops at the first
local optimum; annealing escapes shallow ones by accepting worsening
swaps with probability ``exp(-delta / T)`` under a geometric cooling
schedule.  Deterministic for a given seed, like everything else in the
mapping package.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro import obs
from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["AnnealResult", "anneal_mapping"]


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of an annealing run."""

    mapping: Mapping
    distance: float
    initial_distance: float
    best_distance: float
    accepted_moves: int
    attempted_moves: int


def anneal_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 5000,
    seed: int = 0,
    initial_temperature: float = 2.0,
    cooling: float = 0.999,
) -> AnnealResult:
    """Anneal pairwise swaps to minimize average communication distance.

    Parameters
    ----------
    initial_temperature:
        Starting temperature in units of *weighted hop-sum* delta; around
        the magnitude of a typical single-swap delta works well.
    cooling:
        Geometric decay applied per attempted move; must lie in (0, 1).

    Returns the best mapping encountered (not merely the final state).
    """
    initial.require_bijective()
    if initial.threads != graph.threads:
        raise MappingError(
            f"mapping covers {initial.threads} threads but graph has "
            f"{graph.threads}"
        )
    if initial.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {initial.processors} processors but torus "
            f"has {torus.node_count} nodes"
        )
    if steps < 0:
        raise MappingError(f"steps must be >= 0, got {steps!r}")
    if not 0.0 < cooling < 1.0:
        raise MappingError(f"cooling must lie in (0, 1), got {cooling!r}")
    if not initial_temperature > 0:
        raise MappingError(
            f"initial_temperature must be positive, got {initial_temperature!r}"
        )

    adjacency = [[] for _ in range(graph.threads)]
    for src, dst, weight in graph.edges():
        adjacency[src].append((dst, weight))
        adjacency[dst].append((src, weight))
    total_weight = graph.total_weight
    assignment = list(initial.assignment)
    generator = random.Random(seed)

    def local_cost(thread: int, other: int) -> float:
        here = assignment[thread]
        cost = 0.0
        for neighbor, weight in adjacency[thread]:
            if neighbor == other:
                continue
            cost += weight * torus.distance(here, assignment[neighbor])
        return cost

    current_sum = 0.0
    for src, dst, weight in graph.edges():
        current_sum += weight * torus.distance(assignment[src], assignment[dst])
    best_sum = current_sum
    best_assignment = tuple(assignment)

    temperature = initial_temperature
    accepted = 0
    threads = graph.threads
    with obs.span(
        "mapping.anneal", steps=steps, threads=threads, seed=seed
    ):
        for _ in range(steps):
            temperature *= cooling
            thread_a = generator.randrange(threads)
            thread_b = generator.randrange(threads)
            if thread_a == thread_b:
                continue
            before = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
            assignment[thread_a], assignment[thread_b] = (
                assignment[thread_b],
                assignment[thread_a],
            )
            after = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
            delta = after - before
            accept = delta < 0 or (
                temperature > 1e-12
                and generator.random() < math.exp(-delta / temperature)
            )
            if accept:
                accepted += 1
                current_sum += delta
                if current_sum < best_sum:
                    best_sum = current_sum
                    best_assignment = tuple(assignment)
            else:
                assignment[thread_a], assignment[thread_b] = (
                    assignment[thread_b],
                    assignment[thread_a],
                )

    if obs.is_enabled():
        obs.REGISTRY.counter(
            "anneal.attempted_moves", help="annealing swap attempts"
        ).inc(steps)
        obs.REGISTRY.counter(
            "anneal.accepted_moves", help="annealing swaps accepted"
        ).inc(accepted)

    final = Mapping(assignment=best_assignment, processors=initial.processors)
    return AnnealResult(
        mapping=final,
        distance=best_sum / total_weight,
        initial_distance=average_distance(graph, initial, torus),
        best_distance=best_sum / total_weight,
        accepted_moves=accepted,
        attempted_moves=steps,
    )

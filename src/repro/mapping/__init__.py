"""Thread-to-processor mappings: construction, evaluation, optimization."""

from repro.mapping.anneal import AnnealResult, anneal_mapping
from repro.mapping.base import Mapping
from repro.mapping.chains import MultiChainResult, anneal_chains
from repro.mapping.engine import SwapEngine
from repro.mapping.evaluate import (
    MappingEvaluation,
    average_distance,
    distance_histogram,
    evaluate,
)
from repro.mapping.families import NamedMapping, paper_mapping_suite
from repro.mapping.partition import recursive_bisection_mapping
from repro.mapping.optimize import (
    OptimizationResult,
    maximize_distance,
    minimize_distance,
    optimize_mapping,
)
from repro.mapping.strategies import (
    bit_reversal_mapping,
    block_collocation_mapping,
    dimension_scale_mapping,
    identity_mapping,
    random_mapping,
    shear_mapping,
    stride_mapping,
    transpose_mapping,
)

__all__ = [
    "Mapping",
    "MappingEvaluation",
    "average_distance",
    "distance_histogram",
    "evaluate",
    "NamedMapping",
    "paper_mapping_suite",
    "OptimizationResult",
    "optimize_mapping",
    "minimize_distance",
    "maximize_distance",
    "AnnealResult",
    "anneal_mapping",
    "MultiChainResult",
    "anneal_chains",
    "SwapEngine",
    "recursive_bisection_mapping",
    "identity_mapping",
    "random_mapping",
    "stride_mapping",
    "dimension_scale_mapping",
    "transpose_mapping",
    "bit_reversal_mapping",
    "shear_mapping",
    "block_collocation_mapping",
]

"""The validation suite of mappings (Section 3.2).

The paper's nine thread-to-processor mappings of the 64-thread synthetic
application sweep the average communication distance "from one to just
over six network hops" on the radix-8 2-D torus.  :func:`paper_mapping_suite`
reconstructs such a suite for any torus shaped like the application's
communication graph: deterministic structured mappings at the low end,
seeded random mappings near the Eq 17 expectation, and a hill-climbed
adversarial mapping at the high end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mapping.base import Mapping
from repro.mapping.evaluate import average_distance
from repro.mapping.optimize import maximize_distance
from repro.mapping.strategies import (
    bit_reversal_mapping,
    dimension_scale_mapping,
    identity_mapping,
    random_mapping,
    shear_mapping,
)
from repro.topology.graphs import CommunicationGraph, torus_neighbor_graph
from repro.topology.torus import Torus

__all__ = ["NamedMapping", "paper_mapping_suite"]


@dataclass(frozen=True)
class NamedMapping:
    """A mapping with a label and its achieved average distance."""

    name: str
    mapping: Mapping
    distance: float


def _scale_multipliers(torus: Torus, stretch: int) -> List[int]:
    """Coordinate multipliers of ``stretch`` in every dimension."""
    return [stretch] * torus.dimensions


def paper_mapping_suite(
    torus: Torus,
    graph: CommunicationGraph = None,
    adversarial_steps: int = 4000,
    seed: int = 1992,
) -> List[NamedMapping]:
    """A Section 3.2-style suite of mappings with distances ~1 to 6+.

    Built for the torus-neighbor workload by default (``graph`` may
    override).  The returned list is sorted by achieved average distance
    and always starts at the ideal single-hop mapping.  Entries whose
    construction does not apply to the given torus (e.g. bit reversal on
    a non-power-of-two radix) are silently omitted, so the suite size can
    vary slightly with machine shape — the paper's 64-node radix-8 torus
    yields nine entries.
    """
    if graph is None:
        graph = torus_neighbor_graph(torus.radix, torus.dimensions)

    # Warm the shared distance table once up front: every candidate's
    # average_distance and the adversarial hill-climb below are gathers
    # against it (suite construction used to be dominated by per-edge
    # torus.distance calls).  A torus above the memory guard returns
    # None here and the same calls fall back to on-the-fly distances.
    torus.distance_table()

    candidates: List[NamedMapping] = []

    def add(name: str, mapping: Mapping) -> None:
        distance = average_distance(graph, mapping, torus)
        candidates.append(NamedMapping(name=name, mapping=mapping, distance=distance))

    add("ideal", identity_mapping(torus.node_count))
    add("shear", shear_mapping(torus, factor=1))
    add("shear-2", shear_mapping(torus, factor=2))
    if torus.radix >= 7:
        add("shear-3", shear_mapping(torus, factor=3))

    for stretch in (3, max(3, torus.radix // 2 - 1)):
        try:
            add(
                f"scale-{stretch}",
                dimension_scale_mapping(torus, _scale_multipliers(torus, stretch)),
            )
        except Exception:
            continue

    try:
        add("bit-reverse", bit_reversal_mapping(torus))
    except Exception:
        pass

    add("random-a", random_mapping(torus.node_count, seed))
    add("random-b", random_mapping(torus.node_count, seed + 1))
    add("random-c", random_mapping(torus.node_count, seed + 4))

    adversarial = maximize_distance(
        graph,
        torus,
        random_mapping(torus.node_count, seed + 2),
        steps=adversarial_steps,
        seed=seed + 3,
    )
    candidates.append(
        NamedMapping(
            name="adversarial", mapping=adversarial.mapping, distance=adversarial.distance
        )
    )

    # Deduplicate by achieved distance (scale variants can coincide on
    # small tori) and sort low-to-high as the paper's figures present them.
    unique: List[NamedMapping] = []
    seen = set()
    for named in sorted(candidates, key=lambda nm: nm.distance):
        key = round(named.distance, 6)
        if key in seen and named.name != "ideal":
            continue
        seen.add(key)
        unique.append(named)
    return unique

"""Array-backed swap-pricing engine shared by the mapping optimizers.

The hill climber, the annealer, and the multi-chain annealer all iterate
the same move: *swap the processors of two threads and price the change
in weighted hop-sum*.  This module precomputes everything that pricing
needs once per (graph, torus) pair —

* the torus distance backend (:func:`repro.topology.torus.distance_backend`:
  the dense table at small N, the delta-compressed ring-row engine
  above the memory guard, the digit walk beyond that),
* CSR-style per-thread incident adjacency
  (:meth:`CommunicationGraph.incident_csr`), sliced on demand so no
  per-thread python structures are materialized even at 10**6 threads,
  and
* a zero-padded ``(threads, max_degree)`` adjacency matrix for pricing
  many chains' swaps in one batched gather.

A swap's delta is then two vectorized gathers per endpoint: neighbor
positions -> distance rows, dotted with edge weights.  Edges *between*
the two swapped threads are invariant under the swap (both endpoints
move) and are masked out, mirroring the loop implementation's
``neighbor == other`` skip.  For integer edge weights every reduction
here is exact, so deltas — and therefore accept/reject decisions — are
bit-identical to the per-edge loops in :mod:`repro.mapping.reference`,
whichever distance backend is active.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus, distance_backend

__all__ = ["SwapEngine"]


def check_sizes(
    graph: CommunicationGraph, torus: Torus, initial: Mapping, steps: int
) -> None:
    """The optimizers' shared argument validation."""
    initial.require_bijective()
    if initial.threads != graph.threads:
        raise MappingError(
            f"mapping covers {initial.threads} threads but graph has "
            f"{graph.threads}"
        )
    if initial.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {initial.processors} processors but torus "
            f"has {torus.node_count} nodes"
        )
    if steps < 0:
        raise MappingError(f"steps must be >= 0, got {steps!r}")


class SwapEngine:
    """Precomputed locality arrays for pricing pairwise-swap moves."""

    def __init__(self, graph: CommunicationGraph, torus: Torus):
        self.graph = graph
        self.torus = torus
        self.backend = distance_backend(torus)
        self.table = self.backend.table
        self.total_weight = graph.total_weight
        self._indptr, self._neighbors, self._weights = graph.incident_csr()
        self._padded: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Adjacency access (CSR slices, zero-copy views).
    # ------------------------------------------------------------------

    def incident(self, thread: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbors, weights)`` of the edges touching ``thread``."""
        start = self._indptr[thread]
        end = self._indptr[thread + 1]
        return self._neighbors[start:end], self._weights[start:end]

    # ------------------------------------------------------------------
    # Distance access (dense gather, delta gather, or digit walk).
    # ------------------------------------------------------------------

    def distances(self, processor: int, others: np.ndarray) -> np.ndarray:
        """Hops from one processor to an array of processors."""
        return self.backend.pairwise(processor, others)

    def distances_2d(self, processors: np.ndarray, others: np.ndarray) -> np.ndarray:
        """Hops between broadcastable arrays of processors (chain batch)."""
        return self.backend.pairwise(processors, others)

    # ------------------------------------------------------------------
    # Whole-mapping and per-swap costs.
    # ------------------------------------------------------------------

    def weighted_hop_sum(self, position: np.ndarray) -> float:
        """Total weighted hops of a mapping (the optimizers' objective)."""
        src, dst, weight = self.graph.edge_arrays()
        hops = self.backend.pairwise(position[src], position[dst])
        return float(weight @ hops)

    def swap_delta(self, position: np.ndarray, thread_a: int, thread_b: int) -> float:
        """Change in weighted hop-sum if the two threads swap processors.

        Two gathers per endpoint (its neighbors' positions against its
        old and new processor); edges between the pair are masked out as
        swap-invariant.  ``position`` is not modified.  For integer
        weights the grouping ``w @ (after - before)`` is exact, so the
        result matches the loop reference bit for bit.
        """
        here_a = position[thread_a]
        here_b = position[thread_b]
        nbr_a, weight_a = self.incident(thread_a)
        nbr_b, weight_b = self.incident(thread_b)
        if thread_b in nbr_a:
            weight_a = weight_a * (nbr_a != thread_b)
            weight_b = weight_b * (nbr_b != thread_a)
        pos_a = position[nbr_a]
        pos_b = position[nbr_b]
        pairwise = self.backend.pairwise
        gain_a = pairwise(here_b, pos_a).astype(np.int64) - pairwise(here_a, pos_a)
        gain_b = pairwise(here_a, pos_b).astype(np.int64) - pairwise(here_b, pos_b)
        return weight_a @ gain_a + weight_b @ gain_b

    # ------------------------------------------------------------------
    # Padded adjacency for batched multi-chain pricing.
    # ------------------------------------------------------------------

    def padded_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(threads, max_degree)`` neighbor/weight matrices, zero-padded.

        Padding entries have weight 0 and neighbor id 0, so they gather a
        valid (ignored) distance and contribute exactly ``0.0`` to every
        dot product — keeping batched sums equal to the unpadded ones for
        integer weights.  Built by one vectorized scatter from the CSR
        arrays.
        """
        if self._padded is None:
            threads = self.graph.threads
            indptr = self._indptr
            degrees = np.diff(indptr)
            max_degree = int(degrees.max()) if degrees.size else 0
            nbr = np.zeros((threads, max(max_degree, 1)), dtype=np.intp)
            wgt = np.zeros((threads, max(max_degree, 1)), dtype=np.float64)
            if self._neighbors.size:
                rows = np.repeat(np.arange(threads, dtype=np.intp), degrees)
                cols = np.arange(self._neighbors.size, dtype=np.intp) - np.repeat(
                    indptr[:-1], degrees
                )
                nbr[rows, cols] = self._neighbors
                wgt[rows, cols] = self._weights
            nbr.setflags(write=False)
            wgt.setflags(write=False)
            self._padded = (nbr, wgt)
        return self._padded

"""Array-backed swap-pricing engine shared by the mapping optimizers.

The hill climber, the annealer, and the multi-chain annealer all iterate
the same move: *swap the processors of two threads and price the change
in weighted hop-sum*.  This module precomputes everything that pricing
needs once per (graph, torus) pair —

* the torus distance table (or the on-the-fly fallback above the memory
  guard, see :meth:`Torus.distance_table`),
* CSR-style per-thread incident adjacency split into per-thread arrays
  (:meth:`CommunicationGraph.incident_csr`),
* per-thread neighbor sets for the cheap "are these two threads
  adjacent?" test, and
* a zero-padded ``(threads, max_degree)`` adjacency matrix for pricing
  many chains' swaps in one batched gather.

A swap's delta is then two vectorized gathers per endpoint: neighbor
positions -> table rows, dotted with edge weights.  Edges *between* the
two swapped threads are invariant under the swap (both endpoints move)
and are masked out, mirroring the loop implementation's ``neighbor ==
other`` skip.  For integer edge weights every reduction here is exact,
so deltas — and therefore accept/reject decisions — are bit-identical
to the per-edge loops in :mod:`repro.mapping.reference`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["SwapEngine"]


def check_sizes(
    graph: CommunicationGraph, torus: Torus, initial: Mapping, steps: int
) -> None:
    """The optimizers' shared argument validation."""
    initial.require_bijective()
    if initial.threads != graph.threads:
        raise MappingError(
            f"mapping covers {initial.threads} threads but graph has "
            f"{graph.threads}"
        )
    if initial.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {initial.processors} processors but torus "
            f"has {torus.node_count} nodes"
        )
    if steps < 0:
        raise MappingError(f"steps must be >= 0, got {steps!r}")


class SwapEngine:
    """Precomputed locality arrays for pricing pairwise-swap moves."""

    def __init__(self, graph: CommunicationGraph, torus: Torus):
        self.graph = graph
        self.torus = torus
        self.table = torus.distance_table()
        self.total_weight = graph.total_weight
        indptr, neighbors, weights = graph.incident_csr()
        self.neighbors: List[np.ndarray] = [
            neighbors[indptr[t] : indptr[t + 1]] for t in range(graph.threads)
        ]
        self.weights: List[np.ndarray] = [
            weights[indptr[t] : indptr[t + 1]] for t in range(graph.threads)
        ]
        self.neighbor_sets = [frozenset(row.tolist()) for row in self.neighbors]
        self._padded: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Distance access (table gather or memory-guard fallback).
    # ------------------------------------------------------------------

    def distances(self, processor: int, others: np.ndarray) -> np.ndarray:
        """Hops from one processor to an array of processors."""
        if self.table is not None:
            return self.table[processor, others]
        return self.torus.pairwise_distance(processor, others)

    def distances_2d(self, processors: np.ndarray, others: np.ndarray) -> np.ndarray:
        """Hops between broadcastable arrays of processors (chain batch)."""
        if self.table is not None:
            return self.table[processors, others]
        return self.torus.pairwise_distance(processors, others)

    # ------------------------------------------------------------------
    # Whole-mapping and per-swap costs.
    # ------------------------------------------------------------------

    def weighted_hop_sum(self, position: np.ndarray) -> float:
        """Total weighted hops of a mapping (the optimizers' objective)."""
        src, dst, weight = self.graph.edge_arrays()
        if self.table is not None:
            hops = self.table[position[src], position[dst]]
        else:
            hops = self.torus.pairwise_distance(position[src], position[dst])
        return float(weight @ hops)

    def swap_delta(self, position: np.ndarray, thread_a: int, thread_b: int) -> float:
        """Change in weighted hop-sum if the two threads swap processors.

        Two gathers per endpoint (its neighbors' positions against its
        old and new processor); edges between the pair are masked out as
        swap-invariant.  ``position`` is not modified.  For integer
        weights the grouping ``w @ (after - before)`` is exact, so the
        result matches the loop reference bit for bit.
        """
        here_a = position[thread_a]
        here_b = position[thread_b]
        nbr_a = self.neighbors[thread_a]
        nbr_b = self.neighbors[thread_b]
        weight_a = self.weights[thread_a]
        weight_b = self.weights[thread_b]
        if thread_b in self.neighbor_sets[thread_a]:
            weight_a = weight_a * (nbr_a != thread_b)
            weight_b = weight_b * (nbr_b != thread_a)
        pos_a = position[nbr_a]
        pos_b = position[nbr_b]
        table = self.table
        if table is not None:
            row_a = table[here_a]
            row_b = table[here_b]
            gain_a = row_b[pos_a].astype(np.int64) - row_a[pos_a]
            gain_b = row_a[pos_b].astype(np.int64) - row_b[pos_b]
        else:
            gain_a = self.torus.pairwise_distance(
                here_b, pos_a
            ) - self.torus.pairwise_distance(here_a, pos_a)
            gain_b = self.torus.pairwise_distance(
                here_a, pos_b
            ) - self.torus.pairwise_distance(here_b, pos_b)
        return weight_a @ gain_a + weight_b @ gain_b

    # ------------------------------------------------------------------
    # Padded adjacency for batched multi-chain pricing.
    # ------------------------------------------------------------------

    def padded_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(threads, max_degree)`` neighbor/weight matrices, zero-padded.

        Padding entries have weight 0 and neighbor id 0, so they gather a
        valid (ignored) distance and contribute exactly ``0.0`` to every
        dot product — keeping batched sums equal to the unpadded ones for
        integer weights.
        """
        if self._padded is None:
            threads = self.graph.threads
            max_degree = max(
                (row.size for row in self.neighbors), default=0
            )
            nbr = np.zeros((threads, max(max_degree, 1)), dtype=np.intp)
            wgt = np.zeros((threads, max(max_degree, 1)), dtype=np.float64)
            for thread in range(threads):
                row = self.neighbors[thread]
                nbr[thread, : row.size] = row
                wgt[thread, : row.size] = self.weights[thread]
            nbr.setflags(write=False)
            wgt.setflags(write=False)
            self._padded = (nbr, wgt)
        return self._padded

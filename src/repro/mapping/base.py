"""Thread-to-processor mapping abstraction.

A :class:`Mapping` assigns each application thread to a processor.  The
paper's experiments (Section 3.2) use nine different bijective mappings of
the 64-thread synthetic application onto the 64-node machine to sweep the
average communication distance from one hop to just over six; the general
abstraction also admits many-to-one mappings (collocation — the only form
of physical-locality exploitation available to UCL architectures,
Section 1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import MappingError

__all__ = ["Mapping"]


@dataclass(frozen=True)
class Mapping:
    """An assignment of threads ``0..T-1`` to processors ``0..P-1``.

    Parameters
    ----------
    assignment:
        ``assignment[thread]`` is the processor the thread runs on.
    processors:
        Number of processors ``P``; every entry must lie in ``0..P-1``.
    """

    assignment: Tuple[int, ...]
    processors: int

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise MappingError(
                f"processors must be >= 1, got {self.processors!r}"
            )
        if not self.assignment:
            raise MappingError("assignment must map at least one thread")
        for thread, processor in enumerate(self.assignment):
            if not 0 <= processor < self.processors:
                raise MappingError(
                    f"thread {thread} mapped to processor {processor!r}, "
                    f"outside 0..{self.processors - 1}"
                )

    @classmethod
    def from_sequence(
        cls, assignment: Sequence[int], processors: int
    ) -> "Mapping":
        """Build from any integer sequence."""
        return cls(assignment=tuple(int(p) for p in assignment), processors=processors)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def threads(self) -> int:
        """Number of threads mapped."""
        return len(self.assignment)

    def processor_of(self, thread: int) -> int:
        """Processor hosting ``thread``."""
        if not 0 <= thread < self.threads:
            raise MappingError(f"thread {thread!r} outside 0..{self.threads - 1}")
        return self.assignment[thread]

    def threads_on(self, processor: int) -> List[int]:
        """Threads collocated on ``processor`` (possibly empty)."""
        if not 0 <= processor < self.processors:
            raise MappingError(
                f"processor {processor!r} outside 0..{self.processors - 1}"
            )
        return [t for t, p in enumerate(self.assignment) if p == processor]

    def load(self) -> Dict[int, int]:
        """Thread count per occupied processor."""
        counts: Dict[int, int] = {}
        for processor in self.assignment:
            counts[processor] = counts.get(processor, 0) + 1
        return counts

    @property
    def is_bijective(self) -> bool:
        """One thread per processor, all processors used."""
        return (
            self.threads == self.processors
            and len(set(self.assignment)) == self.processors
        )

    def require_bijective(self) -> "Mapping":
        """Raise :class:`MappingError` unless bijective; returns self."""
        if not self.is_bijective:
            raise MappingError(
                f"mapping of {self.threads} threads onto {self.processors} "
                "processors is not a bijection"
            )
        return self

    # ------------------------------------------------------------------
    # Transformation.
    # ------------------------------------------------------------------

    def compose(self, permutation: "Mapping") -> "Mapping":
        """Apply a processor permutation after this mapping.

        ``permutation`` must be a bijection on this mapping's processor
        set; the result maps each thread to
        ``permutation.processor_of(self.processor_of(thread))``.
        """
        permutation.require_bijective()
        if permutation.threads != self.processors:
            raise MappingError(
                f"permutation acts on {permutation.threads} processors, "
                f"mapping targets {self.processors}"
            )
        return Mapping(
            assignment=tuple(
                permutation.processor_of(p) for p in self.assignment
            ),
            processors=self.processors,
        )

    def swapped(self, thread_a: int, thread_b: int) -> "Mapping":
        """Copy with two threads' processors exchanged (optimizer move)."""
        if thread_a == thread_b:
            return self
        assignment = list(self.assignment)
        assignment[thread_a], assignment[thread_b] = (
            assignment[thread_b],
            assignment[thread_a],
        )
        return Mapping(assignment=tuple(assignment), processors=self.processors)

    def items(self) -> Iterator[Tuple[int, int]]:
        """(thread, processor) pairs."""
        return iter(enumerate(self.assignment))

"""Partitioning-based mapping: recursive bisection placement.

The classic locality-aware placement algorithm: recursively bisect the
communication graph (minimizing cut weight) while recursively bisecting
the machine (along its longest dimension), assigning graph halves to
machine halves.  Communicating threads end up in the same sub-machine at
every level, which bounds their final distance.

Graph bisection uses networkx's Kernighan–Lin heuristic when networkx is
available (it is an *optional* dependency — the rest of the package never
imports it); a deterministic weight-greedy fallback is used otherwise, so
the function always works, just with a weaker cut.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["recursive_bisection_mapping"]


def _split_nodes_by_longest_dimension(
    torus: Torus, nodes: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Halve a set of machine nodes along its widest coordinate span."""
    coords = {node: torus.coordinates(node) for node in nodes}
    spans = []
    for dim in range(torus.dimensions):
        values = sorted({c[dim] for c in coords.values()})
        spans.append((len(values), dim))
    _, dim = max(spans)
    ordered = sorted(nodes, key=lambda n: (coords[n][dim], n))
    half = len(ordered) // 2
    return ordered[:half], ordered[half:]


def _greedy_bisect(
    threads: Sequence[int], weights: Dict[Tuple[int, int], float]
) -> Tuple[List[int], List[int]]:
    """Deterministic fallback bisection: heaviest-edge pairing.

    Repeatedly assigns the thread with the strongest connection to an
    existing side to that side (capacity permitting).  Not as good as
    Kernighan-Lin, but dependency-free and stable.
    """
    thread_list = sorted(threads)
    half = len(thread_list) // 2
    side_a: List[int] = [thread_list[0]]
    side_b: List[int] = []
    remaining = set(thread_list[1:])

    def affinity(thread: int, side: List[int]) -> float:
        return sum(
            weights.get((thread, member), 0.0)
            + weights.get((member, thread), 0.0)
            for member in side
        )

    while remaining:
        best = max(
            sorted(remaining),
            key=lambda t: affinity(t, side_a) - affinity(t, side_b),
        )
        remaining.discard(best)
        if len(side_a) < half:
            side_a.append(best)
        else:
            side_b.append(best)
    return side_a, side_b


def _kl_bisect(
    threads: Sequence[int], weights: Dict[Tuple[int, int], float]
) -> Tuple[List[int], List[int]]:
    """Kernighan-Lin bisection via networkx (optional dependency)."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(threads)
    for (src, dst), weight in weights.items():
        if src in graph and dst in graph:
            existing = graph.get_edge_data(src, dst, default={"weight": 0.0})
            graph.add_edge(src, dst, weight=existing["weight"] + weight)
    part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="weight", seed=0
    )
    return sorted(part_a), sorted(part_b)


def recursive_bisection_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    use_networkx: bool = True,
) -> Mapping:
    """Locality-aware placement by recursive graph/machine bisection.

    Requires exactly one thread per machine node (the bijective setting
    of the paper's experiments).  Set ``use_networkx=False`` to force the
    dependency-free greedy bisection.
    """
    if graph.threads != torus.node_count:
        raise MappingError(
            f"graph has {graph.threads} threads but the torus has "
            f"{torus.node_count} nodes"
        )

    bisect = _greedy_bisect
    if use_networkx:
        try:
            import networkx  # noqa: F401

            bisect = _kl_bisect
        except ImportError:
            bisect = _greedy_bisect

    assignment = [0] * graph.threads

    def place(threads: Sequence[int], nodes: Sequence[int]) -> None:
        if len(threads) != len(nodes):
            raise MappingError("internal: thread/node split size mismatch")
        if len(threads) == 1:
            assignment[threads[0]] = nodes[0]
            return
        sub_weights = {
            (src, dst): weight
            for src, dst, weight in graph.edges()
            if src in thread_set and dst in thread_set
        }
        thread_a, thread_b = bisect(threads, sub_weights)
        node_a, node_b = _split_nodes_by_longest_dimension(torus, nodes)
        if len(thread_a) != len(node_a):
            # Balance drift from the bisector: move extras across.
            combined = list(thread_a) + list(thread_b)
            thread_a = combined[: len(node_a)]
            thread_b = combined[len(node_a):]
        thread_set_a, thread_set_b = set(thread_a), set(thread_b)
        place_with_set(thread_a, node_a, thread_set_a)
        place_with_set(thread_b, node_b, thread_set_b)

    def place_with_set(
        threads: Sequence[int], nodes: Sequence[int], subset: set
    ) -> None:
        nonlocal thread_set
        previous = thread_set
        thread_set = subset
        try:
            place(threads, nodes)
        finally:
            thread_set = previous

    thread_set = set(range(graph.threads))
    place(list(range(graph.threads)), list(torus.nodes()))
    return Mapping(assignment=tuple(assignment), processors=torus.node_count)

"""Local-search mapping optimization.

Good thread placement is itself an optimization problem; the paper sweeps
its validation experiments across mappings ranging from ideal (one hop)
to adversarial (over six hops average on a 64-node machine).  This module
provides a seeded hill climber over pairwise swaps that can push a
mapping's average communication distance in either direction:

* ``minimize`` — approximate the "good mapping" a locality-aware runtime
  would compute for an arbitrary communication graph;
* ``maximize`` — construct the high-distance mappings the validation
  suite needs (the paper's worst mappings average just over six hops).

The climber is deterministic given its seed: swap candidates come from a
:class:`random.Random` stream and a swap is kept only if it strictly
improves the objective, so results are reproducible across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import MappingError
from repro.mapping.base import Mapping
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["OptimizationResult", "optimize_mapping", "minimize_distance", "maximize_distance"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a hill-climbing run."""

    mapping: Mapping
    distance: float
    initial_distance: float
    accepted_swaps: int
    attempted_swaps: int


def _edge_weight_table(graph: CommunicationGraph):
    """Per-thread adjacency for fast incremental distance deltas."""
    adjacency = [[] for _ in range(graph.threads)]
    for src, dst, weight in graph.edges():
        adjacency[src].append((dst, weight))
        adjacency[dst].append((src, weight))
    return adjacency


def optimize_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
    maximize: bool = False,
) -> OptimizationResult:
    """Hill-climb pairwise swaps on ``initial`` for ``steps`` attempts.

    Only strict improvements are kept; the objective is the weighted
    average communication distance, minimized by default.  Works on
    bijective mappings (swapping is only well-defined there).
    """
    initial.require_bijective()
    if initial.threads != graph.threads:
        raise MappingError(
            f"mapping covers {initial.threads} threads but graph has "
            f"{graph.threads}"
        )
    if initial.processors != torus.node_count:
        raise MappingError(
            f"mapping targets {initial.processors} processors but torus has "
            f"{torus.node_count} nodes"
        )
    if steps < 0:
        raise MappingError(f"steps must be >= 0, got {steps!r}")

    adjacency = _edge_weight_table(graph)
    total_weight = graph.total_weight
    assignment = list(initial.assignment)
    generator = random.Random(seed)

    def local_cost(thread: int, other: int) -> float:
        """Weighted hops of edges incident to ``thread``, skipping ``other``.

        Edges between the two swapped threads are invariant under the
        swap (both endpoints move), so they are excluded from the delta.
        """
        here = assignment[thread]
        cost = 0.0
        for neighbor, weight in adjacency[thread]:
            if neighbor == other:
                continue
            cost += weight * torus.distance(here, assignment[neighbor])
        return cost

    current_sum = 0.0
    for src, dst, weight in graph.edges():
        current_sum += weight * torus.distance(assignment[src], assignment[dst])

    accepted = 0
    threads = graph.threads
    for _ in range(steps):
        thread_a = generator.randrange(threads)
        thread_b = generator.randrange(threads)
        if thread_a == thread_b:
            continue
        before = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        assignment[thread_a], assignment[thread_b] = (
            assignment[thread_b],
            assignment[thread_a],
        )
        after = local_cost(thread_a, thread_b) + local_cost(thread_b, thread_a)
        delta = after - before
        improved = delta > 0 if maximize else delta < 0
        if improved:
            accepted += 1
            current_sum += delta
        else:
            assignment[thread_a], assignment[thread_b] = (
                assignment[thread_b],
                assignment[thread_a],
            )

    final = Mapping(assignment=tuple(assignment), processors=initial.processors)
    return OptimizationResult(
        mapping=final,
        distance=current_sum / total_weight,
        initial_distance=average_distance(graph, initial, torus),
        accepted_swaps=accepted,
        attempted_swaps=steps,
    )


def minimize_distance(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
) -> OptimizationResult:
    """Hill-climb toward a locality-exploiting mapping."""
    return optimize_mapping(graph, torus, initial, steps=steps, seed=seed, maximize=False)


def maximize_distance(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
) -> OptimizationResult:
    """Hill-climb toward an adversarial, locality-destroying mapping."""
    return optimize_mapping(graph, torus, initial, steps=steps, seed=seed, maximize=True)

"""Local-search mapping optimization.

Good thread placement is itself an optimization problem; the paper sweeps
its validation experiments across mappings ranging from ideal (one hop)
to adversarial (over six hops average on a 64-node machine).  This module
provides a seeded hill climber over pairwise swaps that can push a
mapping's average communication distance in either direction:

* ``minimize`` — approximate the "good mapping" a locality-aware runtime
  would compute for an arbitrary communication graph;
* ``maximize`` — construct the high-distance mappings the validation
  suite needs (the paper's worst mappings average just over six hops).

The climber is deterministic given its seed: swap candidates come from a
:class:`random.Random` stream and a swap is kept only if it strictly
improves the objective, so results are reproducible across runs.  Swap
deltas are priced by the vectorized :class:`repro.mapping.engine.SwapEngine`
(distance-table gathers over precomputed per-thread adjacency arrays);
for integer edge weights the accepted swaps and final mapping are
bit-identical to the loop-based reference in
:mod:`repro.mapping.reference`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.mapping.base import Mapping
from repro.mapping.engine import SwapEngine, check_sizes
from repro.mapping.evaluate import average_distance
from repro.topology.graphs import CommunicationGraph
from repro.topology.torus import Torus

__all__ = ["OptimizationResult", "optimize_mapping", "minimize_distance", "maximize_distance"]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a hill-climbing run."""

    mapping: Mapping
    distance: float
    initial_distance: float
    accepted_swaps: int
    attempted_swaps: int


def optimize_mapping(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
    maximize: bool = False,
) -> OptimizationResult:
    """Hill-climb pairwise swaps on ``initial`` for ``steps`` attempts.

    Only strict improvements are kept; the objective is the weighted
    average communication distance, minimized by default.  Works on
    bijective mappings (swapping is only well-defined there).
    """
    check_sizes(graph, torus, initial, steps)

    engine = SwapEngine(graph, torus)
    position = np.array(initial.assignment, dtype=np.intp)
    generator = random.Random(seed)
    current_sum = engine.weighted_hop_sum(position)

    accepted = 0
    threads = graph.threads
    for _ in range(steps):
        thread_a = generator.randrange(threads)
        thread_b = generator.randrange(threads)
        if thread_a == thread_b:
            continue
        delta = engine.swap_delta(position, thread_a, thread_b)
        improved = delta > 0 if maximize else delta < 0
        if improved:
            accepted += 1
            current_sum += delta
            position[thread_a], position[thread_b] = (
                position[thread_b],
                position[thread_a],
            )

    final = Mapping(
        assignment=tuple(int(p) for p in position),
        processors=initial.processors,
    )
    return OptimizationResult(
        mapping=final,
        distance=float(current_sum) / engine.total_weight,
        initial_distance=average_distance(graph, initial, torus),
        accepted_swaps=accepted,
        attempted_swaps=steps,
    )


def minimize_distance(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
) -> OptimizationResult:
    """Hill-climb toward a locality-exploiting mapping."""
    return optimize_mapping(graph, torus, initial, steps=steps, seed=seed, maximize=False)


def maximize_distance(
    graph: CommunicationGraph,
    torus: Torus,
    initial: Mapping,
    steps: int = 2000,
    seed: int = 0,
) -> OptimizationResult:
    """Hill-climb toward an adversarial, locality-destroying mapping."""
    return optimize_mapping(graph, torus, initial, steps=steps, seed=seed, maximize=True)

"""Property-based tests for the analytical modeling framework."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.application import ApplicationModel
from repro.core.breakdown import decompose
from repro.core.combined import solve, solve_quadratic
from repro.core.limits import limiting_per_hop_latency
from repro.core.network import TorusNetworkModel
from repro.core.node import NodeModel
from repro.core.transaction import TransactionModel
from repro.units import ClockDomain

grains = st.floats(min_value=1.0, max_value=500.0)
contexts = st.floats(min_value=1.0, max_value=8.0)
switch_times = st.floats(min_value=0.0, max_value=30.0)
latencies = st.floats(min_value=0.0, max_value=5000.0)
sensitivities = st.floats(min_value=0.1, max_value=20.0)
intercepts = st.floats(min_value=0.0, max_value=500.0)
distances = st.floats(min_value=0.1, max_value=300.0)
flit_sizes = st.floats(min_value=1.0, max_value=64.0)
dims = st.integers(min_value=1, max_value=4)
speedups = st.floats(min_value=0.1, max_value=8.0)


class TestApplicationModelProperties:
    @given(grains, contexts, switch_times, latencies)
    def test_curve_inversion_roundtrip(self, grain, p, switch, latency):
        model = ApplicationModel(grain=grain, contexts=p, switch_time=switch)
        assert math.isclose(
            model.transaction_latency(model.issue_time(latency)),
            latency,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )

    @given(grains, contexts, switch_times, latencies, latencies)
    def test_issue_time_monotone_in_latency(self, grain, p, switch, a, b):
        model = ApplicationModel(grain=grain, contexts=p, switch_time=switch)
        low, high = sorted((a, b))
        assert model.issue_time(low) <= model.issue_time(high) + 1e-9

    @given(grains, contexts, switch_times, latencies)
    def test_floor_never_below_plain_curve_at_high_latency(
        self, grain, p, switch, latency
    ):
        model = ApplicationModel(grain=grain, contexts=p, switch_time=switch)
        floored = model.issue_time_with_floor(latency)
        assert floored >= model.issue_time(latency) - 1e-9
        assert floored >= model.min_issue_time - 1e-9

    @given(grains, contexts, switch_times)
    def test_masking_threshold_boundary_consistency(self, grain, p, switch):
        model = ApplicationModel(grain=grain, contexts=p, switch_time=switch)
        threshold = model.masking_threshold
        assert model.masks_latency(threshold)
        assert not model.masks_latency(threshold + 1e-6)


class TestNodeModelProperties:
    @given(grains, contexts, st.floats(min_value=0.5, max_value=8.0),
           st.floats(min_value=0.5, max_value=8.0),
           st.floats(min_value=0.0, max_value=200.0), speedups)
    def test_composition_matches_manual_eq9(
        self, grain, p, c, g, fixed, speedup
    ):
        application = ApplicationModel(grain=grain, contexts=p)
        transaction = TransactionModel(
            critical_messages=c, messages_per_transaction=g,
            fixed_overhead=fixed,
        )
        clocks = ClockDomain(network_speedup=speedup)
        node = NodeModel.from_components(application, transaction, clocks)
        assert math.isclose(node.sensitivity, p * g / c, rel_tol=1e-12)
        assert math.isclose(
            node.intercept, (grain + fixed) * speedup / c, rel_tol=1e-12
        )

    @given(sensitivities, intercepts, st.floats(min_value=1.0, max_value=1e4))
    def test_message_curve_roundtrip(self, s, k, t_m):
        node = NodeModel(sensitivity=s, intercept=k)
        latency = node.message_latency(t_m)
        assert math.isclose(node.message_time(latency), t_m, rel_tol=1e-9)


class TestNetworkModelProperties:
    @given(flit_sizes, dims, distances,
           st.floats(min_value=0.0, max_value=0.95))
    def test_per_hop_latency_at_least_one(self, flits, n, d, load):
        network = TorusNetworkModel(dimensions=n, message_size=flits)
        rate = load * network.max_rate(d)
        assert network.per_hop_latency(rate, d) >= 1.0

    @given(flit_sizes, dims, distances,
           st.floats(min_value=0.0, max_value=0.9),
           st.floats(min_value=0.0, max_value=0.9))
    def test_latency_monotone_in_rate(self, flits, n, d, load_a, load_b):
        network = TorusNetworkModel(dimensions=n, message_size=flits)
        cap = network.max_rate(d)
        low, high = sorted((load_a * cap, load_b * cap))
        assert network.message_latency(low, d) <= network.message_latency(
            high, d
        ) + 1e-9

    @given(flit_sizes, dims, distances)
    def test_zero_load_latency_structure(self, flits, n, d):
        network = TorusNetworkModel(dimensions=n, message_size=flits)
        assert math.isclose(
            network.message_latency(0.0, d), d + flits, rel_tol=1e-12
        )


class TestCombinedModelProperties:
    @settings(max_examples=60)
    @given(sensitivities, intercepts, flit_sizes, dims, distances)
    def test_fixed_point_on_both_curves(self, s, k, flits, n, d):
        node = NodeModel(sensitivity=s, intercept=k)
        network = TorusNetworkModel(dimensions=n, message_size=flits)
        point = solve(node, network, d)
        node_side = node.message_latency_at_rate(point.message_rate)
        network_side = network.message_latency(point.message_rate, d)
        assert math.isclose(node_side, network_side, rel_tol=1e-6, abs_tol=1e-6)
        assert 0.0 <= point.utilization < 1.0

    @settings(max_examples=60)
    @given(sensitivities, intercepts, flit_sizes, dims,
           st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=1.01, max_value=5.0))
    def test_feedback_backoff_monotone(self, s, k, flits, n, d, stretch):
        node = NodeModel(sensitivity=s, intercept=k)
        network = TorusNetworkModel(dimensions=n, message_size=flits)
        near = solve(node, network, d)
        far = solve(node, network, d * stretch)
        assert far.message_rate <= near.message_rate + 1e-12
        assert far.message_latency >= near.message_latency - 1e-9

    @settings(max_examples=60)
    @given(sensitivities, intercepts, flit_sizes, dims,
           st.floats(min_value=2.0, max_value=300.0))
    def test_quadratic_agrees_with_bisection(self, s, k, flits, n, d):
        # Base model only (the closed form's domain).
        node = NodeModel(sensitivity=s, intercept=k)
        network = TorusNetworkModel(
            dimensions=n, message_size=flits,
            clamp_local=False, node_channel_contention=False,
        )
        # Keep the quadratic non-degenerate: at k_d -> 1+ the contention
        # geometry vanishes and the operating point degenerates to a
        # saturation-pinned corner where the two solvers legitimately
        # disagree about representability.
        assume(d / n > 1.1)
        numeric = solve(node, network, d)
        closed = solve_quadratic(node, network, d)
        assert math.isclose(
            numeric.message_rate, closed.message_rate, rel_tol=1e-7
        )

    @settings(max_examples=40)
    @given(sensitivities, flit_sizes, dims)
    def test_per_hop_latency_respects_eq16_limit(self, s, flits, n):
        # Eq 16 is a limit, not a uniform bound: in the contention-bound
        # regime T_h approaches s*B/(2n) from above with an excess that
        # vanishes like 1/d.  Check convergence at a very large distance.
        assume(s * flits / (2.0 * n) > 1.5)
        node = NodeModel(sensitivity=s, intercept=10.0)
        network = TorusNetworkModel(
            dimensions=n, message_size=flits, node_channel_contention=False
        )
        limit = limiting_per_hop_latency(s, flits, n)
        point = solve(node, network, 1e5 * n)
        assert abs(point.per_hop_latency - limit) / limit < 0.02


class TestBreakdownProperties:
    @settings(max_examples=60)
    @given(grains, contexts, st.floats(min_value=0.0, max_value=200.0),
           distances, speedups)
    def test_components_sum_to_issue_time(
        self, grain, p, fixed, d, speedup
    ):
        application = ApplicationModel(grain=grain, contexts=p)
        transaction = TransactionModel(
            critical_messages=2.0, messages_per_transaction=3.2,
            fixed_overhead=fixed,
        )
        network = TorusNetworkModel(dimensions=2, message_size=12.0)
        clocks = ClockDomain(network_speedup=speedup)
        node = NodeModel.from_components(application, transaction, clocks)
        point = solve(node, network, d)
        breakdown = decompose(point, application, transaction, network, clocks)
        assert math.isclose(
            breakdown.total,
            point.issue_time_processor(clocks),
            rel_tol=1e-9,
        )
        assert breakdown.variable_message >= 0
        assert breakdown.node_channel >= 0
